//! Perf-trajectory runner: executes the `vm/interp-throughput` and
//! `sim/retire-*` benches in quick mode and emits `BENCH_interp.json`,
//! then times the full `platform × workload` roofline sweep at 1/2/4
//! worker threads and emits `BENCH_sweep.json` — so future PRs have
//! checked-in baselines to compare against.
//!
//! ```text
//! bench_trajectory [--out PATH] [--sweep-out PATH] [--jobs N] [--full]
//!                  [--no-fuse] [--no-regalloc] [--check]
//! ```
//!
//! `--full` uses the normal (longer) measurement budget; default is
//! quick mode (~40 ms per bench, a scaled-down sweep matrix). `--jobs`
//! caps the largest worker count the sweep-scaling section measures
//! (default: 4, the trajectory baseline; thread counts beyond the
//! host's cores are still measured and simply won't scale). `--no-fuse`
//! and `--no-regalloc` are the bisection escape hatches: the decoded
//! configurations running the escaped pass are not measured (and its
//! guards don't apply), leaving the remaining decoded flavour plus
//! `reference`/`seed`.
//!
//! `--check` is the CI gate: it runs only the guard-relevant rows
//! (`threaded`, `decoded`, `decoded-noregalloc`, `seed`) on the short
//! workloads, enforces the perf guards (`speedup_vs_seed ≥ 2`
//! everywhere; on spin `≥ 3.5` for the threaded headline and `≥ 3` for
//! decoded) and the regalloc copy-reduction guard (≥ 80% of dynamic
//! `Copy` traffic elided on spin/call-tree), prints ONE machine-
//! readable JSON line to stdout, and exits 0/1. Human detail goes to
//! stderr; no files are written.
//!
//! The interp JSON reports MIR ops/sec per workload × platform ×
//! engine plus the threaded/decoded-over-reference/seed speedups, the
//! per-pass `speedup_vs_nofuse`/`speedup_vs_noregalloc` ratios (rows
//! where a pass *slows down* its engine get `"regression": true` and a
//! stderr warning instead of being checked in silently), per-pattern
//! fusion coverage, the `regalloc` copy-traffic section, the cache
//! `mru` fast-probe hit rates, and ns/op for the retire microbenches;
//! the sweep JSON
//! reports wall-clock and speedup per worker count — for both the
//! in-process thread pool and the multi-process sharded supervisor
//! (this binary re-entered as a sweep worker via `MPERF_SWEEP_WORKER`)
//! — after asserting every configuration is bit-identical to the
//! serial sweep. Both
//! reports embed (and the runner prints) the engine configuration they
//! actually ran, so checked-in baselines are self-describing.

use criterion::Criterion;
use miniperf::cli::{self, JobKind, JobSpec};
use miniperf::sweep_supervisor::encode_run;
use miniperf::{CommonOpts, RooflineRequest};
use mperf_bench::interp_bench::{
    register_interp_benches_filter, register_retire_benches, EngineConfig, InterpBenchInfo,
};
use mperf_bench::sweep_bench::SweepMatrix;
use mperf_sim::Platform;
use mperf_sweep::proto::Msg;
use mperf_sweep::serve::ClientSession;
use mperf_vm::{Engine, ExecConfig, FusePattern};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One evaluated guard row (for the report and the `--check` JSON).
struct Guard {
    name: &'static str,
    workload: String,
    platform: String,
    value: f64,
    floor: f64,
}

impl Guard {
    fn pass(&self) -> bool {
        self.value >= self.floor
    }

    fn json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"workload\": \"{}\", \"platform\": \"{}\", \
             \"value\": {:.3}, \"floor\": {:.3}, \"pass\": {}}}",
            self.name,
            self.workload,
            self.platform,
            self.value,
            self.floor,
            self.pass()
        )
    }
}

struct Opts {
    out_path: String,
    sweep_out_path: String,
    full: bool,
    fuse: bool,
    regalloc: bool,
    check: bool,
    max_jobs: usize,
    journal: Option<std::path::PathBuf>,
    resume: bool,
}

impl Opts {
    /// The headline configuration this run measures (the threaded
    /// template engine; the decoded rows stay measured for bisection).
    fn headline(&self) -> &'static str {
        match (self.fuse, self.regalloc) {
            (true, true) => "threaded",
            (false, true) => "threaded-nofuse",
            (true, false) => "threaded-noregalloc",
            (false, false) => unreachable!("rejected at parse time"),
        }
    }

    /// The `config:` header naming what actually ran (the bugfix for
    /// silently-flagged runs: every report now self-describes). Shares
    /// [`ExecConfig::describe`] with `miniperf`'s header so the two
    /// formats cannot drift.
    fn config_line(&self) -> String {
        let exec = ExecConfig {
            engine: Engine::Threaded,
            fuse: self.fuse,
            regalloc: self.regalloc,
        };
        format!(
            "config: {} mode={} headline={}",
            exec.describe(),
            if self.check {
                "check"
            } else if self.full {
                "full"
            } else {
                "quick"
            },
            self.headline(),
        )
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        out_path: String::from("BENCH_interp.json"),
        sweep_out_path: String::from("BENCH_sweep.json"),
        full: false,
        fuse: true,
        regalloc: true,
        check: false,
        max_jobs: 4,
        journal: None,
        resume: false,
    };
    let usage = |msg: &str| -> ! {
        eprintln!("bench_trajectory: {msg}");
        eprintln!(
            "usage: bench_trajectory [--out PATH] [--sweep-out PATH] [--jobs N] [--full] \
             [--no-fuse] [--no-regalloc] [--journal PATH] [--resume] [--check]"
        );
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => opts.out_path = p,
                None => usage("--out needs a path"),
            },
            "--sweep-out" => match args.next() {
                Some(p) => opts.sweep_out_path = p,
                None => usage("--sweep-out needs a path"),
            },
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => opts.max_jobs = v,
                Some(_) => usage("--jobs needs a positive integer"),
                None => usage("--jobs needs a value"),
            },
            "--full" => opts.full = true,
            "--no-fuse" => opts.fuse = false,
            "--no-regalloc" => opts.regalloc = false,
            "--journal" => match args.next() {
                Some(p) => opts.journal = Some(std::path::PathBuf::from(p)),
                None => usage("--journal needs a path"),
            },
            "--resume" => opts.resume = true,
            "--check" => opts.check = true,
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if !opts.fuse && !opts.regalloc {
        usage("--no-fuse and --no-regalloc are exclusive escape hatches; pick one");
    }
    if opts.check && (!opts.fuse || !opts.regalloc) {
        usage("--check gates the production configuration; drop the --no-* flags");
    }
    if opts.resume && opts.journal.is_none() {
        usage("--resume requires --journal");
    }
    opts
}

/// Look up criterion ns/iter by bench id.
fn ns_lookup<'a>(c: &'a Criterion) -> impl Fn(&str) -> f64 + 'a {
    move |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.ns_per_iter)
            .unwrap_or_else(|| panic!("missing bench result for {id}"))
    }
}

/// The speedup guards over one engine's rows: `speedup_vs_seed ≥ 2`
/// everywhere, plus a per-engine spin floor for fully-optimized rows
/// (`≥ 3` for the decoded engine, `≥ 3.5` for the threaded headline;
/// `None` when the run escapes a pass).
fn speedup_guards(
    infos: &[InterpBenchInfo],
    ns_of: &impl Fn(&str) -> f64,
    engine: &str,
    spin_floor: Option<f64>,
) -> Vec<Guard> {
    let mut guards = Vec::new();
    for info in infos.iter().filter(|i| i.engine == engine) {
        let ns = ns_of(&info.id);
        let suffix = format!("-{}", info.engine);
        let vs_seed = ns_of(&info.id.replace(&suffix, "-seed")) / ns;
        let floor = match spin_floor {
            Some(f) if info.workload == "spin" => f,
            _ => 2.0,
        };
        guards.push(Guard {
            name: "speedup_vs_seed",
            workload: info.workload.to_string(),
            platform: info.platform.to_string(),
            value: vs_seed,
            floor,
        });
    }
    guards
}

/// The regalloc copy-traffic guards: on the spin and call-tree
/// workloads, ≥ 80% of the dynamic `Copy` ops that moved data without
/// register allocation must be elided with it on. Copy counts are
/// deterministic (no timing involved), so these are enforced in every
/// mode.
fn copy_reduction_guards(infos: &[InterpBenchInfo]) -> Vec<Guard> {
    let mut guards = Vec::new();
    for info in infos.iter().filter(|i| i.engine == "decoded") {
        if info.workload != "spin" && info.workload != "call-tree" {
            continue;
        }
        let Some(off) = infos.iter().find(|i| {
            i.engine == "decoded-noregalloc"
                && i.workload == info.workload
                && i.platform == info.platform
        }) else {
            continue;
        };
        let moved_off = off.regalloc_dyn.copies_moved.max(1) as f64;
        let reduction = 1.0 - info.regalloc_dyn.copies_moved as f64 / moved_off;
        guards.push(Guard {
            name: "copy_reduction",
            workload: info.workload.to_string(),
            platform: info.platform.to_string(),
            value: reduction,
            floor: 0.8,
        });
    }
    guards
}

/// `--check`: the CI gate. Measures only the guard-relevant rows with a
/// small budget, evaluates every guard, prints one JSON line to stdout
/// One `--check` measurement pass at the given per-bench budget.
fn measure_check(budget_ms: u64) -> Vec<Guard> {
    // Quiet: stdout carries exactly one machine-readable JSON line.
    let mut c = Criterion::default().quiet(true);
    c.measurement_time(Duration::from_millis(budget_ms));
    let infos = register_interp_benches_filter(&mut c, |cfg: &EngineConfig| {
        matches!(
            cfg.name,
            "threaded" | "decoded" | "decoded-noregalloc" | "seed"
        )
    });
    let ns_of = ns_lookup(&c);
    // Threaded (the headline) carries the raised spin floor; the decoded
    // guards are unchanged from PR 4.
    let mut guards = speedup_guards(&infos, &ns_of, "threaded", Some(3.5));
    guards.extend(speedup_guards(&infos, &ns_of, "decoded", Some(3.0)));
    guards.extend(copy_reduction_guards(&infos));
    guards
}

/// The checked-in interp baseline, validated just enough to be useful
/// in the `--check` banner: the file must exist, carry our schema
/// marker, and name a headline configuration.
fn baseline_headline(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("checked-in baseline {path} is missing ({e})"))?;
    if !text.contains("\"schema\": \"mperf-bench-interp/v1\"") {
        return Err(format!(
            "checked-in baseline {path} is not an mperf-bench-interp/v1 report \
             (corrupt or from another tool?)"
        ));
    }
    let key = "\"headline\": \"";
    let start = text
        .find(key)
        .map(|i| i + key.len())
        .ok_or_else(|| format!("checked-in baseline {path} has no \"headline\" field"))?;
    let end = text[start..]
        .find('"')
        .ok_or_else(|| format!("checked-in baseline {path} is truncated mid-headline"))?;
    Ok(text[start..start + end].to_string())
}

/// and human detail to stderr, then exits 0 (all pass) or 1.
fn run_check(opts: &Opts) -> ! {
    eprintln!("bench_trajectory --check: measuring threaded/decoded/decoded-noregalloc/seed rows");
    // The guards measure fresh timings, so a missing/corrupt baseline
    // is a diagnostic, never a panic or a gate failure.
    match baseline_headline(&opts.out_path) {
        Ok(h) => eprintln!("  baseline {}: headline {h}", opts.out_path),
        Err(msg) => eprintln!(
            "  note: {msg} — guards run against fresh measurements; \
             regenerate it with `bench_trajectory`"
        ),
    }
    let mut guards = measure_check(120);
    // The speedup guards compare two timings on the same host, so load
    // mostly cancels — but a short budget on a noisy shared runner can
    // still flake. Re-measure once with a larger budget before failing;
    // the copy-reduction guards are deterministic and unaffected.
    if !guards.iter().all(Guard::pass) {
        eprintln!("  a guard failed at the 120 ms budget; re-measuring once at 500 ms");
        guards = measure_check(500);
    }
    let pass = guards.iter().all(Guard::pass);
    for g in &guards {
        eprintln!(
            "  {} {}/{}: {:.2} (floor {:.2}) {}",
            g.name,
            g.workload,
            g.platform,
            g.value,
            g.floor,
            if g.pass() { "ok" } else { "FAIL" }
        );
    }
    let rows: Vec<String> = guards.iter().map(Guard::json).collect();
    println!(
        "{{\"schema\": \"mperf-bench-check/v1\", \"pass\": {pass}, \"config\": \
         {{\"engine\": \"threaded\", \"fuse\": true, \"regalloc\": true}}, \
         \"guards\": [{}]}}",
        rows.join(", ")
    );
    std::process::exit(i32::from(!pass));
}

fn main() {
    // Re-entry marker for the sweep-scaling section's *process-sharded*
    // pass: the supervisor respawns this very binary with the marker
    // set, and the child becomes a protocol-speaking sweep worker
    // instead of a bench run.
    if std::env::var_os("MPERF_SWEEP_WORKER").is_some() {
        std::process::exit(miniperf::worker_main());
    }
    let opts = parse_opts();
    if opts.check {
        run_check(&opts);
    }
    println!("{}", opts.config_line());

    let mut c = Criterion::default();
    c.measurement_time(Duration::from_millis(if opts.full { 600 } else { 40 }));

    // Threaded/decoded configs running an escaped pass are dropped;
    // reference and seed always run (they are the speedup denominators).
    let (fuse, regalloc) = (opts.fuse, opts.regalloc);
    let infos = register_interp_benches_filter(&mut c, |cfg: &EngineConfig| {
        cfg.engine == Engine::Reference || ((fuse || !cfg.fuse) && (regalloc || !cfg.regalloc))
    });
    register_retire_benches(&mut c);
    let ns_of = ns_lookup(&c);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mperf-bench-interp/v1\",");
    let _ = writeln!(json, "  \"quick\": {},", !opts.full);
    let _ = writeln!(
        json,
        "  \"config\": {{\"fuse\": {}, \"regalloc\": {}, \"headline\": \"{}\"}},",
        opts.fuse,
        opts.regalloc,
        opts.headline()
    );
    json.push_str("  \"interp\": [\n");
    for (i, info) in infos.iter().enumerate() {
        let ns = ns_of(&info.id);
        let ops_per_sec = info.mir_ops_per_call as f64 * 1e9 / ns;
        // Speedups only reported on decoded rows, vs the reference and
        // seed (pre-PR) rows of the same workload/platform — and, for
        // the fully-optimized row, vs its single-pass-escaped siblings.
        let base_id = |engine: &str| {
            info.id
                .replace(&format!("-{}", info.engine), &format!("-{engine}"))
        };
        let fast_row = info.engine.starts_with("decoded") || info.engine.starts_with("threaded");
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"platform\": \"{}\", \"engine\": \"{}\", \
             \"mir_ops_per_call\": {}, \"ns_per_call\": {:.1}, \"mir_ops_per_sec\": {:.0}",
            info.workload, info.platform, info.engine, info.mir_ops_per_call, ns, ops_per_sec
        );
        if fast_row {
            let vs_ref = ns_of(&base_id("reference")) / ns;
            let vs_seed = ns_of(&base_id("seed")) / ns;
            let _ = write!(
                json,
                ", \"speedup_vs_reference\": {vs_ref:.2}, \"speedup_vs_seed\": {vs_seed:.2}"
            );
        }
        if matches!(info.engine, "decoded" | "threaded") && opts.fuse && opts.regalloc {
            let family = info.engine;
            let vs_nofuse = ns_of(&base_id(&format!("{family}-nofuse"))) / ns;
            let vs_noregalloc = ns_of(&base_id(&format!("{family}-noregalloc"))) / ns;
            let _ = write!(
                json,
                ", \"speedup_vs_nofuse\": {vs_nofuse:.2}, \"speedup_vs_noregalloc\": {vs_noregalloc:.2}"
            );
            // A pass that *slows down* its engine on a workload is a
            // regression, and gets flagged instead of checked in
            // silently (the PR 3 mem-stream 0.86 lesson).
            if vs_nofuse < 0.95 || vs_noregalloc < 0.95 {
                let _ = write!(json, ", \"regression\": true");
                eprintln!(
                    "warning: pass regression on {}/{} ({}): \
                     speedup_vs_nofuse {vs_nofuse:.2}, speedup_vs_noregalloc {vs_noregalloc:.2} \
                     (floor 0.95)",
                    info.workload, info.platform, info.engine
                );
            }
        }
        json.push('}');
        json.push_str(if i + 1 < infos.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Per-pattern fusion coverage of the fused decoded rows: static
    // sites/coverage from the decode pass, dynamic coverage from one
    // call (what fraction of executed MIR ops ran inside a fused fast
    // path).
    json.push_str("  \"fusion\": [\n");
    let fused_rows: Vec<_> = infos
        .iter()
        .filter(|i| i.engine == "decoded" && opts.fuse)
        .collect();
    for (i, info) in fused_rows.iter().enumerate() {
        let st = &info.fusion_static;
        let dynv = &info.fusion_dyn;
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"platform\": \"{}\", \"sites\": {{",
            info.workload, info.platform
        );
        for (pi, p) in FusePattern::ALL.iter().enumerate() {
            let _ = write!(
                json,
                "\"{}\": {}{}",
                p.name(),
                st.sites[p.index()],
                if pi + 1 < FusePattern::ALL.len() {
                    ", "
                } else {
                    ""
                }
            );
        }
        let _ = write!(
            json,
            "}}, \"static_coverage\": {:.3}, \"dynamic_coverage\": {:.3}, \
             \"ineligible_mid_target\": {}}}",
            st.static_coverage(),
            dynv.coverage(info.mir_ops_per_call),
            st.ineligible_mid_target
        );
        json.push_str(if i + 1 < fused_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    // Register-allocation copy traffic: static coalescing from the
    // decode pass, dynamic `Copy` data movement with the pass on vs off
    // (deterministic counts, no timing).
    json.push_str("  \"regalloc\": [\n");
    let ra_rows: Vec<_> = infos
        .iter()
        .filter(|i| i.engine == "decoded" && opts.regalloc && opts.fuse)
        .collect();
    for (i, info) in ra_rows.iter().enumerate() {
        let st = &info.regalloc_static;
        let dynv = &info.regalloc_dyn;
        let moved_off = infos
            .iter()
            .find(|o| {
                o.engine == "decoded-noregalloc"
                    && o.workload == info.workload
                    && o.platform == info.platform
            })
            .map(|o| o.regalloc_dyn.copies_moved);
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"platform\": \"{}\", \
             \"copies_static\": {}, \"copies_coalesced\": {}, \
             \"regs_before\": {}, \"regs_after\": {}, \
             \"copies_moved\": {}, \"copies_elided\": {}",
            info.workload,
            info.platform,
            st.copies_static,
            st.copies_coalesced,
            st.regs_before,
            st.regs_after,
            dynv.copies_moved,
            dynv.copies_elided,
        );
        if let Some(off) = moved_off {
            let reduction = 1.0 - dynv.copies_moved as f64 / off.max(1) as f64;
            let _ = write!(
                json,
                ", \"copies_moved_noregalloc\": {off}, \"copy_reduction\": {reduction:.3}"
            );
        }
        json.push('}');
        json.push_str(if i + 1 < ra_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Per-level cache MRU fast-probe hit rates (deterministic counts
    // from the threaded rows' sanity runs; the probe is what recovered
    // the mem-stream fusion regression).
    json.push_str("  \"mru\": [\n");
    let mru_rows: Vec<_> = infos.iter().filter(|i| i.engine == "threaded").collect();
    for (i, info) in mru_rows.iter().enumerate() {
        let m = &info.mem;
        let rate = |hits: u64, acc: u64| {
            if acc == 0 {
                0.0
            } else {
                hits as f64 / acc as f64
            }
        };
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"platform\": \"{}\", \
             \"l1_accesses\": {}, \"l1_hit_rate\": {:.3}, \"l1_mru_hit_rate\": {:.3}, \
             \"l2_accesses\": {}, \"l2_hit_rate\": {:.3}, \"l2_mru_hit_rate\": {:.3}}}",
            info.workload,
            info.platform,
            m.l1_accesses,
            rate(m.l1_accesses - m.l1_misses, m.l1_accesses),
            rate(m.l1_mru_hits, m.l1_accesses),
            m.l2_accesses,
            rate(m.l2_accesses.saturating_sub(m.l2_misses), m.l2_accesses),
            rate(m.l2_mru_hits, m.l2_accesses),
        );
        json.push_str(if i + 1 < mru_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"retire\": [\n");
    let retire_ids = [
        "sim/retire-alu-10k",
        "sim/retire-load-stream-10k",
        "sim/retire-alu-armed-10k",
    ];
    for (i, id) in retire_ids.iter().enumerate() {
        let ns = ns_of(id);
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"ns_per_iter\": {:.1}, \"ns_per_op\": {:.2}}}",
            id,
            ns,
            ns / 10_000.0
        );
        json.push_str(if i + 1 < retire_ids.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&opts.out_path, &json).expect("write trajectory json");
    println!("wrote {}", opts.out_path);

    // Surface the headline numbers (and fail loudly if the decoded
    // engine ever regresses below parity with the reference engine).
    let headline = opts.headline();
    for info in &infos {
        if info.engine != headline {
            continue;
        }
        let ns = ns_of(&info.id);
        let suffix = format!("-{}", info.engine);
        let vs_ref = ns_of(&info.id.replace(&suffix, "-reference")) / ns;
        let vs_seed = ns_of(&info.id.replace(&suffix, "-seed")) / ns;
        println!(
            "{:<40} {headline} is {vs_ref:.2}x reference, {vs_seed:.2}x seed",
            format!("{}/{}", info.workload, info.platform),
        );
        assert!(
            vs_ref > 0.9,
            "{headline} engine slower than reference on {}/{}",
            info.workload,
            info.platform
        );
    }
    // The ROADMAP's interpreter guards: every fast engine stays ≥ 2x
    // the seed configuration — and, with both passes on, the spin floor
    // is ≥ 3.5x for the threaded headline and ≥ 3x for decoded. Hard in
    // --full mode; quick mode (40 ms budgets) only warns, since it
    // exists to smoke-test the flow.
    let both = opts.fuse && opts.regalloc;
    let mut all_guards = speedup_guards(
        &infos,
        &ns_of,
        headline,
        if both { Some(3.5) } else { None },
    );
    if both {
        all_guards.extend(speedup_guards(&infos, &ns_of, "decoded", Some(3.0)));
    }
    for g in all_guards {
        if !g.pass() {
            let msg = format!(
                "interpreter guard: only {:.2}x seed on {}/{} (need >= {})",
                g.value, g.workload, g.platform, g.floor
            );
            assert!(!opts.full, "{msg}");
            eprintln!("warning ({msg} — quick mode, not enforced)");
        }
    }
    // The regalloc guard: copy counts are deterministic, so it is
    // enforced in every mode that measures both rows.
    for g in copy_reduction_guards(&infos) {
        assert!(
            g.pass(),
            "regalloc guard: only {:.1}% of dynamic Copy traffic elided on {}/{} (need >= 80%)",
            g.value * 100.0,
            g.workload,
            g.platform
        );
    }
    // Per-pattern fusion coverage of the fused engine.
    for info in &infos {
        if info.engine != "decoded" || !opts.fuse {
            continue;
        }
        let st = &info.fusion_static;
        let dynv = &info.fusion_dyn;
        let pats: Vec<String> = FusePattern::ALL
            .iter()
            .filter(|p| dynv.executed[p.index()] > 0)
            .map(|p| format!("{} x{}", p.name(), dynv.executed[p.index()]))
            .collect();
        println!(
            "{:<40} fusion: {:.1}% of dynamic MIR ops ({})",
            format!("{}/{}", info.workload, info.platform),
            dynv.coverage(info.mir_ops_per_call) * 100.0,
            if pats.is_empty() {
                "no sites hit".to_string()
            } else {
                pats.join(", ")
            },
        );
        assert_eq!(
            st.ineligible_mid_target, 0,
            "block flattening should never place a branch target mid-pattern"
        );
        if opts.regalloc {
            let ra = &info.regalloc_dyn;
            println!(
                "{:<40} regalloc: {} copies moved, {} elided ({:.1}% of copy traffic)",
                format!("{}/{}", info.workload, info.platform),
                ra.copies_moved,
                ra.copies_elided,
                ra.elision_rate() * 100.0,
            );
        }
    }

    run_sweep_scaling(&opts);
}

/// The sweep-scaling section: run the full `platform × workload`
/// roofline sweep serially and at rising worker counts, check the
/// results are bit-identical, and emit `BENCH_sweep.json`.
fn run_sweep_scaling(opts: &Opts) {
    let (out_path, full, max_jobs) = (&opts.sweep_out_path, opts.full, opts.max_jobs);
    let host_cpus = mperf_sweep::default_jobs();
    let matrix = SweepMatrix::build(if full { 1.0 } else { 0.25 });
    println!(
        "\nsweep scaling: {} cells ({} phase jobs) on a {host_cpus}-cpu host",
        matrix.len(),
        matrix.len() * 2
    );

    let mut thread_counts = vec![1usize, 2, 4];
    thread_counts.retain(|&t| t <= max_jobs);
    if !thread_counts.contains(&max_jobs) {
        thread_counts.push(max_jobs);
    }

    // Warm-up pass so first-touch costs (lazy pages, allocator growth)
    // don't land on the serial measurement. With `--journal` this pass
    // runs under the fault-tolerant supervisor, checkpointing every
    // cell; `--resume` then satisfies already-journaled cells so an
    // interrupted run restarts with only the remaining cells.
    let reference: Vec<_> = if let Some(path) = &opts.journal {
        let (_, sweep) = match matrix.run_supervised(1, Some(path.clone()), opts.resume) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_trajectory: cannot open sweep journal: {e}");
                std::process::exit(1);
            }
        };
        if !sweep.resumed.is_empty() {
            println!(
                "  reference pass: {}/{} cells resumed from {}",
                sweep.resumed.len(),
                matrix.len(),
                path.display()
            );
        }
        if !sweep.report.all_ok() {
            for f in &sweep.report.failed {
                eprintln!("  cell {} failed: {}", f.index, f.error);
            }
            eprintln!(
                "bench_trajectory: {} sweep cell(s) failed, {} skipped; completed cells \
                 are journaled — re-run with --resume to retry only the rest",
                sweep.report.failed.len(),
                sweep.report.skipped.len()
            );
            std::process::exit(1);
        }
        sweep.report.results.into_iter().flatten().collect()
    } else {
        matrix.run_at(1).1
    };

    let mut rows = Vec::new();
    let mut serial_ms = 0.0f64;
    for &threads in &thread_counts {
        let (wall, runs) = matrix.run_at(threads);
        assert_eq!(
            runs, reference,
            "parallel sweep at {threads} threads diverges from the serial sweep"
        );
        let ms = wall.as_secs_f64() * 1e3;
        if threads == 1 {
            serial_ms = ms;
        }
        let speedup = if ms > 0.0 { serial_ms / ms } else { 0.0 };
        println!("  jobs={threads}: {ms:9.1} ms  ({speedup:.2}x vs serial, results identical)");
        rows.push((threads, ms, speedup));
    }

    // The sweep-scaling guard (ISSUE 2 acceptance): >= 1.8x at 4
    // threads vs serial. Like the interpreter guard it is hard in
    // --full mode — but only where the speedup is physically observable
    // (a >= 4-cpu host); quick mode and smaller hosts warn. Judged on
    // the smallest measured row with >= 4 threads, and never silently:
    // a --jobs cap that excludes every such row prints that the guard
    // did not run.
    match rows
        .iter()
        .filter(|(t, _, _)| *t >= 4)
        .min_by_key(|(t, _, _)| *t)
    {
        Some(&(threads, _, speedup)) => {
            if host_cpus >= 4 && speedup < 1.8 {
                let msg = format!(
                    "sweep guard: only {speedup:.2}x at {threads} threads on a \
                     {host_cpus}-cpu host (need >= 1.8)"
                );
                assert!(!full, "{msg}");
                eprintln!("warning ({msg} — quick mode, not enforced)");
            }
        }
        None => eprintln!(
            "note: sweep guard (>= 1.8x at 4 threads) not evaluated — \
             --jobs {max_jobs} measured no >= 4-thread row"
        ),
    }
    if host_cpus < 4 {
        println!(
            "  note: host exposes {host_cpus} cpu(s); wall-clock scaling beyond \
             {host_cpus} thread(s) is not observable here"
        );
    }

    // Process-sharded pass: the same matrix through real worker
    // processes (this binary, re-entered via `MPERF_SWEEP_WORKER`),
    // checked bit-identical to the in-process serial reference. Spawn +
    // recompile overhead makes this slower than threads on small
    // matrices; the rows exist to track that overhead, not to win.
    let exe = std::env::current_exe().expect("current_exe");
    let mut sharded_rows = Vec::new();
    for &shards in &thread_counts {
        let mut worker = mperf_sweep::WorkerCmd::new(&exe);
        worker.envs.push(("MPERF_SWEEP_WORKER".into(), "1".into()));
        let (wall, sweep) = matrix
            .run_sharded(shards, worker)
            .expect("sharded sweep (no journal attached)");
        assert!(
            sweep.all_ok(),
            "sharded sweep at {shards} shards failed: {:?} / {} cell failures",
            sweep.fatal,
            sweep.failed.len()
        );
        let runs: Vec<_> = sweep.results.into_iter().flatten().collect();
        assert_eq!(
            runs, reference,
            "sharded sweep at {shards} shards diverges from the serial sweep"
        );
        let ms = wall.as_secs_f64() * 1e3;
        let speedup = if ms > 0.0 { serial_ms / ms } else { 0.0 };
        println!(
            "  shards={shards}: {ms:9.1} ms  ({speedup:.2}x vs serial threads, \
             results identical, {} respawns)",
            sweep.respawns
        );
        sharded_rows.push((shards, ms, speedup));
    }

    let serve = run_serve_row(full, max_jobs.clamp(1, 4));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mperf-bench-sweep/v3\",");
    let _ = writeln!(json, "  \"quick\": {},", !full);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"cells\": {},", matrix.len());
    let _ = writeln!(json, "  \"phase_jobs\": {},", matrix.len() * 2);
    let _ = writeln!(json, "  \"identical_across_thread_counts\": true,");
    json.push_str("  \"scaling\": [\n");
    for (i, (threads, ms, speedup)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {threads}, \"wall_ms\": {ms:.1}, \
             \"speedup_vs_serial\": {speedup:.2}}}"
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sharded\": [\n");
    for (i, (shards, ms, speedup)) in sharded_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {shards}, \"wall_ms\": {ms:.1}, \
             \"speedup_vs_serial\": {speedup:.2}}}"
        );
        json.push_str(if i + 1 < sharded_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let (serve_ms, batch_ms) = serve;
    let _ = writeln!(
        json,
        "  \"serve\": {{\"wall_ms\": {serve_ms:.1}, \"batch_wall_ms\": {batch_ms:.1}, \
         \"overhead_ms\": {:.1}, \"streamed_identical\": true}}",
        serve_ms - batch_ms
    );
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write sweep trajectory json");
    println!("wrote {out_path}");
}

/// The serve-path row: the CLI triad sweep submitted to an in-process
/// `miniperf serve` daemon over a real Unix socket, timed against the
/// identical sweep run directly in-process. The delta is the cost of
/// the socket round-trip, job decode, and per-cell result streaming;
/// the streamed `CellDone` payloads must be bit-identical to the batch
/// cells' journal encodings.
fn run_serve_row(full: bool, jobs: usize) -> (f64, f64) {
    let n = if full {
        cli::CLI_TRIAD_N
    } else {
        cli::CLI_TRIAD_N / 4
    };

    // Batch reference, timed from module compile (the daemon compiles
    // inside its job too, so both sides carry the same setup work).
    let t0 = Instant::now();
    let modules: Vec<_> = Platform::ALL
        .iter()
        .map(|&p| cli::triad_module(p))
        .collect();
    let cells = cli::triad_sweep_cells(&modules, None, n);
    let sweep = RooflineRequest::new()
        .jobs(jobs)
        .run_supervised(&cells)
        .expect("batch triad sweep (no journal attached)");
    let batch_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(sweep.report.all_ok(), "batch triad sweep failed");
    let reference: Vec<Vec<u8>> = sweep
        .report
        .results
        .iter()
        .map(|r| encode_run(r.as_ref().expect("all_ok")))
        .collect();

    let socket =
        std::env::temp_dir().join(format!("mperf-bench-serve-{}.sock", std::process::id()));
    let handle = miniperf::serve::start(
        &socket,
        &CommonOpts::default(),
        &miniperf::ServeOptions::default(),
    )
    .expect("start daemon");
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect to daemon");
    let reader = std::io::BufReader::new(stream.try_clone().expect("clone socket"));
    let mut session = ClientSession::connect(reader, stream).expect("serve handshake");

    let spec = JobSpec {
        n,
        jobs,
        ..JobSpec::from_opts(JobKind::Sweep, &CommonOpts::default())
    };
    let t0 = Instant::now();
    let job = session.submit(spec.encode()).expect("submit sweep job");
    let mut streamed: Vec<(u64, Vec<u8>)> = Vec::new();
    let res = session
        .drain_job(job, |m| {
            if let Msg::CellDone { index, payload, .. } = m {
                streamed.push((*index, payload.clone()));
            }
        })
        .expect("drain sweep job");
    let serve_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(res.code, 0, "serve sweep failed: {}", res.message);
    streamed.sort_by_key(|(i, _)| *i);
    let streamed: Vec<Vec<u8>> = streamed.into_iter().map(|(_, p)| p).collect();
    assert_eq!(
        streamed, reference,
        "streamed serve cells diverge from the batch sweep"
    );
    drop(session);
    handle.stop();

    println!(
        "  serve: {serve_ms:9.1} ms  (batch {batch_ms:.1} ms, +{:.1} ms socket/stream \
         overhead, results identical)",
        serve_ms - batch_ms
    );
    (serve_ms, batch_ms)
}
