//! Perf-trajectory runner: executes the `vm/interp-throughput` and
//! `sim/retire-*` benches in quick mode and emits `BENCH_interp.json`,
//! then times the full `platform × workload` roofline sweep at 1/2/4
//! worker threads and emits `BENCH_sweep.json` — so future PRs have
//! checked-in baselines to compare against.
//!
//! ```text
//! bench_trajectory [--out PATH] [--sweep-out PATH] [--jobs N] [--full] [--no-fuse]
//! ```
//!
//! `--full` uses the normal (longer) measurement budget; default is
//! quick mode (~40 ms per bench, a scaled-down sweep matrix). `--jobs`
//! caps the largest worker count the sweep-scaling section measures
//! (default: 4, the trajectory baseline; thread counts beyond the
//! host's cores are still measured and simply won't scale). `--no-fuse`
//! is the bisection escape hatch: the fused decoded configuration is
//! not measured (and the fusion guards don't apply), leaving
//! `decoded-nofuse` / `reference` / `seed` only. The interp JSON
//! reports MIR ops/sec per workload × platform × engine plus the
//! decoded-over-reference/seed/nofuse speedups, per-pattern fusion
//! coverage, and ns/op for the retire microbenches; the sweep JSON
//! reports wall-clock and speedup per worker count, after asserting the
//! parallel results are bit-identical to the serial sweep.

use criterion::Criterion;
use mperf_bench::interp_bench::{register_interp_benches_with, register_retire_benches};
use mperf_bench::sweep_bench::SweepMatrix;
use mperf_vm::FusePattern;
use std::fmt::Write as _;
use std::time::Duration;

fn main() {
    let mut out_path = String::from("BENCH_interp.json");
    let mut sweep_out_path = String::from("BENCH_sweep.json");
    let mut full = false;
    let mut fuse = true;
    let mut max_jobs = 4usize;
    let usage = |msg: &str| -> ! {
        eprintln!("bench_trajectory: {msg}");
        eprintln!(
            "usage: bench_trajectory [--out PATH] [--sweep-out PATH] [--jobs N] [--full] [--no-fuse]"
        );
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => usage("--out needs a path"),
            },
            "--sweep-out" => match args.next() {
                Some(p) => sweep_out_path = p,
                None => usage("--sweep-out needs a path"),
            },
            "--jobs" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => max_jobs = v,
                Some(_) => usage("--jobs needs a positive integer"),
                None => usage("--jobs needs a value"),
            },
            "--full" => full = true,
            "--no-fuse" => fuse = false,
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut c = Criterion::default();
    c.measurement_time(Duration::from_millis(if full { 300 } else { 40 }));

    let infos = register_interp_benches_with(&mut c, fuse);
    register_retire_benches(&mut c);

    // Index criterion results by id.
    let ns_of = |id: &str| -> f64 {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.ns_per_iter)
            .unwrap_or_else(|| panic!("missing bench result for {id}"))
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mperf-bench-interp/v1\",");
    let _ = writeln!(json, "  \"quick\": {},", !full);
    json.push_str("  \"interp\": [\n");
    for (i, info) in infos.iter().enumerate() {
        let ns = ns_of(&info.id);
        let ops_per_sec = info.mir_ops_per_call as f64 * 1e9 / ns;
        // Speedups only reported on decoded rows, vs the reference and
        // seed (pre-PR) rows of the same workload/platform — and, for
        // the fused row, vs its unfused sibling.
        let base_id = |engine: &str| {
            info.id
                .replace(&format!("-{}", info.engine), &format!("-{engine}"))
        };
        let speedups = if info.engine == "decoded" || info.engine == "decoded-nofuse" {
            Some((ns_of(&base_id("reference")) / ns, ns_of(&base_id("seed")) / ns))
        } else {
            None
        };
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"platform\": \"{}\", \"engine\": \"{}\", \
             \"mir_ops_per_call\": {}, \"ns_per_call\": {:.1}, \"mir_ops_per_sec\": {:.0}",
            info.workload, info.platform, info.engine, info.mir_ops_per_call, ns, ops_per_sec
        );
        if let Some((vs_ref, vs_seed)) = speedups {
            let _ = write!(
                json,
                ", \"speedup_vs_reference\": {vs_ref:.2}, \"speedup_vs_seed\": {vs_seed:.2}"
            );
        }
        if info.engine == "decoded" && fuse {
            let _ = write!(
                json,
                ", \"speedup_vs_nofuse\": {:.2}",
                ns_of(&base_id("decoded-nofuse")) / ns
            );
        }
        json.push_str("}");
        json.push_str(if i + 1 < infos.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Per-pattern fusion coverage of the fused decoded rows: static
    // sites/coverage from the decode pass, dynamic coverage from one
    // call (what fraction of executed MIR ops ran inside a fused fast
    // path).
    json.push_str("  \"fusion\": [\n");
    let fused_rows: Vec<_> = infos.iter().filter(|i| i.engine == "decoded" && fuse).collect();
    for (i, info) in fused_rows.iter().enumerate() {
        let st = &info.fusion_static;
        let dynv = &info.fusion_dyn;
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"platform\": \"{}\", \"sites\": {{",
            info.workload, info.platform
        );
        for (pi, p) in FusePattern::ALL.iter().enumerate() {
            let _ = write!(
                json,
                "\"{}\": {}{}",
                p.name(),
                st.sites[p.index()],
                if pi + 1 < FusePattern::ALL.len() { ", " } else { "" }
            );
        }
        let _ = write!(
            json,
            "}}, \"static_coverage\": {:.3}, \"dynamic_coverage\": {:.3}, \
             \"ineligible_mid_target\": {}}}",
            st.static_coverage(),
            dynv.coverage(info.mir_ops_per_call),
            st.ineligible_mid_target
        );
        json.push_str(if i + 1 < fused_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"retire\": [\n");
    let retire_ids = [
        "sim/retire-alu-10k",
        "sim/retire-load-stream-10k",
        "sim/retire-alu-armed-10k",
    ];
    for (i, id) in retire_ids.iter().enumerate() {
        let ns = ns_of(id);
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"ns_per_iter\": {:.1}, \"ns_per_op\": {:.2}}}",
            id,
            ns,
            ns / 10_000.0
        );
        json.push_str(if i + 1 < retire_ids.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write trajectory json");
    println!("wrote {out_path}");

    // Surface the headline numbers (and fail loudly if the decoded
    // engine ever regresses below parity with the reference engine).
    let headline = if fuse { "decoded" } else { "decoded-nofuse" };
    for info in &infos {
        if info.engine != headline {
            continue;
        }
        let ns = ns_of(&info.id);
        let suffix = format!("-{}", info.engine);
        let vs_ref = ns_of(&info.id.replace(&suffix, "-reference")) / ns;
        let vs_seed = ns_of(&info.id.replace(&suffix, "-seed")) / ns;
        println!(
            "{:<40} {headline} is {vs_ref:.2}x reference, {vs_seed:.2}x seed",
            format!("{}/{}", info.workload, info.platform),
        );
        assert!(
            vs_ref > 0.9,
            "decoded engine slower than reference on {}/{}",
            info.workload,
            info.platform
        );
        // The ROADMAP's interpreter guard: decoded must stay ≥ 2x the
        // seed configuration — and, with fusion on, ≥ 3x on the spin
        // workload (ISSUE 3 acceptance). Hard in --full mode; quick
        // mode (40 ms budgets) only warns, since it exists to
        // smoke-test the flow.
        let floor = if fuse && info.workload == "spin" { 3.0 } else { 2.0 };
        if vs_seed < floor {
            let msg = format!(
                "interpreter guard: {headline} only {vs_seed:.2}x seed on {}/{} (need >= {floor})",
                info.workload, info.platform
            );
            assert!(!full, "{msg}");
            eprintln!("warning ({msg} — quick mode, not enforced)");
        }
    }
    // Per-pattern fusion coverage of the fused engine.
    for info in &infos {
        if info.engine != "decoded" || !fuse {
            continue;
        }
        let st = &info.fusion_static;
        let dynv = &info.fusion_dyn;
        let pats: Vec<String> = FusePattern::ALL
            .iter()
            .filter(|p| dynv.executed[p.index()] > 0)
            .map(|p| format!("{} x{}", p.name(), dynv.executed[p.index()]))
            .collect();
        println!(
            "{:<40} fusion: {:.1}% of dynamic MIR ops ({})",
            format!("{}/{}", info.workload, info.platform),
            dynv.coverage(info.mir_ops_per_call) * 100.0,
            if pats.is_empty() { "no sites hit".to_string() } else { pats.join(", ") },
        );
        assert_eq!(
            st.ineligible_mid_target, 0,
            "block flattening should never place a branch target mid-pattern"
        );
    }

    run_sweep_scaling(&sweep_out_path, full, max_jobs);
}

/// The sweep-scaling section: run the full `platform × workload`
/// roofline sweep serially and at rising worker counts, check the
/// results are bit-identical, and emit `BENCH_sweep.json`.
fn run_sweep_scaling(out_path: &str, full: bool, max_jobs: usize) {
    let host_cpus = mperf_sweep::default_jobs();
    let matrix = SweepMatrix::build(if full { 1.0 } else { 0.25 });
    println!(
        "\nsweep scaling: {} cells ({} phase jobs) on a {host_cpus}-cpu host",
        matrix.len(),
        matrix.len() * 2
    );

    let mut thread_counts = vec![1usize, 2, 4];
    thread_counts.retain(|&t| t <= max_jobs);
    if !thread_counts.contains(&max_jobs) {
        thread_counts.push(max_jobs);
    }

    // Warm-up pass so first-touch costs (lazy pages, allocator growth)
    // don't land on the serial measurement.
    let (_, reference) = matrix.run_at(1);

    let mut rows = Vec::new();
    let mut serial_ms = 0.0f64;
    for &threads in &thread_counts {
        let (wall, runs) = matrix.run_at(threads);
        assert_eq!(
            runs, reference,
            "parallel sweep at {threads} threads diverges from the serial sweep"
        );
        let ms = wall.as_secs_f64() * 1e3;
        if threads == 1 {
            serial_ms = ms;
        }
        let speedup = if ms > 0.0 { serial_ms / ms } else { 0.0 };
        println!("  jobs={threads}: {ms:9.1} ms  ({speedup:.2}x vs serial, results identical)");
        rows.push((threads, ms, speedup));
    }

    // The sweep-scaling guard (ISSUE 2 acceptance): >= 1.8x at 4
    // threads vs serial. Like the interpreter guard it is hard in
    // --full mode — but only where the speedup is physically observable
    // (a >= 4-cpu host); quick mode and smaller hosts warn. Judged on
    // the smallest measured row with >= 4 threads, and never silently:
    // a --jobs cap that excludes every such row prints that the guard
    // did not run.
    match rows.iter().filter(|(t, _, _)| *t >= 4).min_by_key(|(t, _, _)| *t) {
        Some(&(threads, _, speedup)) => {
            if host_cpus >= 4 && speedup < 1.8 {
                let msg = format!(
                    "sweep guard: only {speedup:.2}x at {threads} threads on a \
                     {host_cpus}-cpu host (need >= 1.8)"
                );
                assert!(!full, "{msg}");
                eprintln!("warning ({msg} — quick mode, not enforced)");
            }
        }
        None => eprintln!(
            "note: sweep guard (>= 1.8x at 4 threads) not evaluated — \
             --jobs {max_jobs} measured no >= 4-thread row"
        ),
    }
    if host_cpus < 4 {
        println!(
            "  note: host exposes {host_cpus} cpu(s); wall-clock scaling beyond \
             {host_cpus} thread(s) is not observable here"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mperf-bench-sweep/v1\",");
    let _ = writeln!(json, "  \"quick\": {},", !full);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"cells\": {},", matrix.len());
    let _ = writeln!(json, "  \"phase_jobs\": {},", matrix.len() * 2);
    let _ = writeln!(json, "  \"identical_across_thread_counts\": true,");
    json.push_str("  \"scaling\": [\n");
    for (i, (threads, ms, speedup)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {threads}, \"wall_ms\": {ms:.1}, \
             \"speedup_vs_serial\": {speedup:.2}}}"
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write sweep trajectory json");
    println!("wrote {out_path}");
}
