//! Perf-trajectory runner: executes the `vm/interp-throughput` and
//! `sim/retire-*` benches in quick mode and emits `BENCH_interp.json`
//! so future PRs have a checked-in baseline to compare against.
//!
//! ```text
//! bench_trajectory [--out PATH] [--full]
//! ```
//!
//! `--full` uses the normal (longer) measurement budget; default is
//! quick mode (~40 ms per bench). The JSON reports MIR ops/sec per
//! workload × platform × engine plus the decoded-over-reference speedup,
//! and ns/op for the retire microbenches.

use criterion::Criterion;
use mperf_bench::interp_bench::{register_interp_benches, register_retire_benches};
use std::fmt::Write as _;
use std::time::Duration;

fn main() {
    let mut out_path = String::from("BENCH_interp.json");
    let mut full = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--full" => full = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: bench_trajectory [--out PATH] [--full]");
                std::process::exit(2);
            }
        }
    }

    let mut c = Criterion::default();
    c.measurement_time(Duration::from_millis(if full { 300 } else { 40 }));

    let infos = register_interp_benches(&mut c);
    register_retire_benches(&mut c);

    // Index criterion results by id.
    let ns_of = |id: &str| -> f64 {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.ns_per_iter)
            .unwrap_or_else(|| panic!("missing bench result for {id}"))
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mperf-bench-interp/v1\",");
    let _ = writeln!(json, "  \"quick\": {},", !full);
    json.push_str("  \"interp\": [\n");
    for (i, info) in infos.iter().enumerate() {
        let ns = ns_of(&info.id);
        let ops_per_sec = info.mir_ops_per_call as f64 * 1e9 / ns;
        // Speedups only reported on decoded rows, vs the reference and
        // seed (pre-PR) rows of the same workload/platform.
        let speedups = if info.engine == "decoded" {
            let ref_ns = ns_of(&info.id.replace("-decoded", "-reference"));
            let seed_ns = ns_of(&info.id.replace("-decoded", "-seed"));
            Some((ref_ns / ns, seed_ns / ns))
        } else {
            None
        };
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"platform\": \"{}\", \"engine\": \"{}\", \
             \"mir_ops_per_call\": {}, \"ns_per_call\": {:.1}, \"mir_ops_per_sec\": {:.0}",
            info.workload, info.platform, info.engine, info.mir_ops_per_call, ns, ops_per_sec
        );
        if let Some((vs_ref, vs_seed)) = speedups {
            let _ = write!(
                json,
                ", \"speedup_vs_reference\": {vs_ref:.2}, \"speedup_vs_seed\": {vs_seed:.2}"
            );
        }
        json.push_str("}");
        json.push_str(if i + 1 < infos.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"retire\": [\n");
    let retire_ids = [
        "sim/retire-alu-10k",
        "sim/retire-load-stream-10k",
        "sim/retire-alu-armed-10k",
    ];
    for (i, id) in retire_ids.iter().enumerate() {
        let ns = ns_of(id);
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"ns_per_iter\": {:.1}, \"ns_per_op\": {:.2}}}",
            id,
            ns,
            ns / 10_000.0
        );
        json.push_str(if i + 1 < retire_ids.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write trajectory json");
    println!("wrote {out_path}");

    // Surface the headline numbers (and fail loudly if the decoded
    // engine ever regresses below parity with the reference engine).
    for info in &infos {
        if info.engine != "decoded" {
            continue;
        }
        let ns = ns_of(&info.id);
        let vs_ref = ns_of(&info.id.replace("-decoded", "-reference")) / ns;
        let vs_seed = ns_of(&info.id.replace("-decoded", "-seed")) / ns;
        println!(
            "{:<40} decoded is {vs_ref:.2}x reference, {vs_seed:.2}x seed",
            format!("{}/{}", info.workload, info.platform),
        );
        assert!(
            vs_ref > 0.9,
            "decoded engine slower than reference on {}/{}",
            info.workload,
            info.platform
        );
    }
}
