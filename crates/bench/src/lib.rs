//! # mperf-bench — evaluation harness
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §4 for the index):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 — platform capability matrix (derived by probing) |
//! | `table2` | Table 2 — sqlite3 hotspots: Total %, Instructions, IPC |
//! | `fig1`   | Fig. 1 — PMU software-layer architecture (live trace) |
//! | `fig2`   | Fig. 2 — two-phase instrumented workflow (live trace) |
//! | `fig3`   | Fig. 3 — four flame graphs (cycles/instructions × X60/i5) |
//! | `fig4`   | Fig. 4 — roofline for the tiled matmul kernel |
//!
//! Binaries accept `--scale <f>` to shrink/grow workload sizes (the
//! paper's absolute instruction counts are ~10^10, infeasible under an
//! interpreter; shares and IPC are scale-invariant — EXPERIMENTS.md).
//! Criterion benches (`cargo bench`) cover the host-side components.

use std::path::PathBuf;

pub mod interp_bench;
pub mod sweep_bench;

/// Common CLI options for the figure/table binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload scale factor (1.0 = default size).
    pub scale: f64,
    /// Output directory for SVG/CSV artifacts.
    pub out_dir: PathBuf,
    /// Worker threads for sweep-enabled binaries (`--jobs`; default:
    /// available parallelism). Results are identical at any value.
    pub jobs: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1.0,
            out_dir: PathBuf::from("out"),
            jobs: mperf_sweep::default_jobs(),
        }
    }
}

impl BenchArgs {
    /// Parse `--scale <f>`, `--out <dir>`, and `--jobs <n>` from
    /// `std::env::args`.
    pub fn parse() -> BenchArgs {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        args.scale = v;
                    }
                }
                "--out" => {
                    if let Some(v) = it.next() {
                        args.out_dir = PathBuf::from(v);
                    }
                }
                "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(v)) if v >= 1 => args.jobs = v,
                    _ => {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    }
                },
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        args
    }

    /// Scale an integer size.
    pub fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(1)
    }

    /// Create the output directory and return a file path within it.
    ///
    /// # Panics
    /// Panics if the directory cannot be created (benches want loud
    /// failures).
    pub fn out_file(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        self.out_dir.join(name)
    }
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling() {
        let a = BenchArgs {
            scale: 0.5,
            out_dir: PathBuf::from("/tmp"),
            jobs: 2,
        };
        assert_eq!(a.scaled(100), 50);
        assert_eq!(a.scaled(1), 1);
    }
}
