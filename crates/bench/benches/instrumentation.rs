//! Ablation bench for the instrumentation design (paper §4.4 "Runtime
//! Overhead"): guest-cycle cost of the baseline vs instrumented clone,
//! plus the sampling workaround's handler overhead, measured as *guest*
//! cycles but driven through criterion for host-side regression tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use mperf_sim::{Core, Platform};
use mperf_vm::{Value, Vm};
use std::hint::black_box;

const KERNEL: &str = r#"
    fn triad(a: *f32, b: *f32, c: *f32, n: i64, k: f32) {
        for (var i: i64 = 0; i < n; i = i + 1) {
            a[i] = b[i] + k * c[i];
        }
    }
"#;

fn run_phase(instrumented: bool) -> u64 {
    let module = mperf_workloads::compile_for("k", KERNEL, Platform::SpacemitX60, true).unwrap();
    let mut vm = Vm::with_memory(&module, Core::new(Platform::SpacemitX60.spec()), 8 << 20);
    vm.roofline.instrumented = instrumented;
    let n = 16_384u64;
    let a = vm.mem.alloc(n * 4, 64).unwrap();
    let b = vm.mem.alloc(n * 4, 64).unwrap();
    let c = vm.mem.alloc(n * 4, 64).unwrap();
    vm.call(
        "triad",
        &[
            Value::I64(a as i64),
            Value::I64(b as i64),
            Value::I64(c as i64),
            Value::I64(n as i64),
            Value::F32(3.0),
        ],
    )
    .unwrap();
    vm.core.cycles()
}

fn bench_two_phase(c: &mut Criterion) {
    // Report the measured guest-cycle overhead once, visibly.
    let base = run_phase(false);
    let instr = run_phase(true);
    println!(
        "\n[ablation] triad on X60: baseline {base} cycles, instrumented {instr} cycles \
         -> overhead {:.2}x\n",
        instr as f64 / base as f64
    );
    let mut g = c.benchmark_group("instrumentation");
    g.sample_size(10);
    g.bench_function("baseline-run", |b| b.iter(|| black_box(run_phase(false))));
    g.bench_function("instrumented-run", |b| {
        b.iter(|| black_box(run_phase(true)))
    });
    g.finish();
}

fn bench_sampling_overhead(c: &mut Criterion) {
    use miniperf::{record, RecordConfig};
    let mut g = c.benchmark_group("sampling");
    g.sample_size(10);
    for period in [2_003u64, 20_011] {
        g.bench_function(format!("record-period-{period}"), |b| {
            b.iter(|| {
                let module =
                    mperf_workloads::compile_for("k", KERNEL, Platform::SpacemitX60, false)
                        .unwrap();
                let mut vm =
                    Vm::with_memory(&module, Core::new(Platform::SpacemitX60.spec()), 8 << 20);
                let n = 8_192u64;
                let a = vm.mem.alloc(n * 4, 64).unwrap();
                let bb = vm.mem.alloc(n * 4, 64).unwrap();
                let cc = vm.mem.alloc(n * 4, 64).unwrap();
                record(
                    &mut vm,
                    "triad",
                    &[
                        Value::I64(a as i64),
                        Value::I64(bb as i64),
                        Value::I64(cc as i64),
                        Value::I64(n as i64),
                        Value::F32(3.0),
                    ],
                    RecordConfig { period },
                )
                .unwrap()
                .samples
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_two_phase, bench_sampling_overhead);
criterion_main!(benches);
