//! Criterion benches over the host-side components: compiler pipeline,
//! analyses, ring buffer, and flame-graph rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SQLITE_SRC: &str = mperf_workloads::sqlite_mini::SOURCE;

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("compile/sqlite-mini-frontend", |b| {
        b.iter(|| mperf_ir::compile("bench", black_box(SQLITE_SRC)).unwrap())
    });
    c.bench_function("compile/sqlite-mini-full-pipeline", |b| {
        b.iter(|| {
            mperf_workloads::compile_for(
                "bench",
                black_box(SQLITE_SRC),
                mperf_sim::Platform::SpacemitX60,
                true,
            )
            .unwrap()
        })
    });
}

fn bench_analyses(c: &mut Criterion) {
    let module = mperf_ir::compile("bench", SQLITE_SRC).unwrap();
    let f = module.func_by_name("sqlite3VdbeExec").unwrap();
    c.bench_function("analysis/cfg+dom+loops/vdbe", |b| {
        b.iter(|| {
            let cfg = mperf_ir::analysis::Cfg::compute(black_box(f));
            let dom = mperf_ir::analysis::Dominators::compute(f, &cfg);
            mperf_ir::analysis::LoopForest::compute(f, &cfg, &dom)
        })
    });
    c.bench_function("analysis/liveness/vdbe", |b| {
        b.iter(|| {
            let cfg = mperf_ir::analysis::Cfg::compute(black_box(f));
            mperf_ir::analysis::Liveness::compute(f, &cfg)
        })
    });
}

fn bench_ring_buffer(c: &mut Criterion) {
    use mperf_event::{RingBuffer, SampleRecord, SampleType};
    let st = SampleType::full();
    let sample = SampleRecord {
        ip: Some(0xdead_beef),
        tid: Some(1),
        time: Some(12345),
        period: Some(1000),
        read_group: vec![(1, 7), (2, 8), (3, 9)],
        callchain: vec![1, 2, 3, 4],
    };
    c.bench_function("ring/push+drain-64", |b| {
        b.iter(|| {
            let mut ring = RingBuffer::new(64 * 1024, st);
            for _ in 0..64 {
                ring.push_sample(black_box(&sample));
            }
            ring.drain()
        })
    });
}

fn bench_flamegraph(c: &mut Criterion) {
    use miniperf::flamegraph::{render_svg, FoldedStacks};
    let mut folded = FoldedStacks::default();
    for i in 0..200 {
        folded
            .weights
            .insert(format!("main;f{};g{}", i % 20, i), 10 + i as u64);
        folded.metric_total += 10 + i as u64;
    }
    c.bench_function("flamegraph/render-200-stacks", |b| {
        b.iter(|| render_svg(black_box(&folded), "bench", 1200))
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_analyses,
    bench_ring_buffer,
    bench_flamegraph
);
criterion_main!(benches);
