//! Criterion benches over the execution substrate: interpreter
//! throughput per platform model, cache hierarchy, and branch predictor.

use criterion::{criterion_group, criterion_main, Criterion};
use mperf_sim::machine_op::{MachineOp, MemRef, OpClass};
use mperf_sim::{Core, Platform, PlatformSpec};
use mperf_vm::{Value, Vm};
use std::hint::black_box;

const LOOP_SRC: &str = r#"
    fn spin(n: i64) -> i64 {
        var s: i64 = 0;
        for (var i: i64 = 0; i < n; i = i + 1) {
            s = (s ^ i) + (i >> 2);
        }
        return s;
    }
"#;

fn bench_interp_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm/interp-throughput");
    for platform in [Platform::SpacemitX60, Platform::IntelI5_1135G7] {
        let module = mperf_workloads::compile_for("b", LOOP_SRC, platform, false).unwrap();
        g.bench_function(platform.spec().name, |b| {
            b.iter(|| {
                let mut vm = Vm::with_memory(&module, Core::new(platform.spec()), 1 << 20);
                vm.call("spin", &[Value::I64(black_box(10_000))]).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_core_retire(c: &mut Criterion) {
    c.bench_function("sim/retire-alu-10k", |b| {
        b.iter(|| {
            let mut core = Core::new(PlatformSpec::x60());
            for i in 0..10_000u64 {
                core.retire(black_box(&MachineOp::simple(OpClass::IntAlu, i % 64)));
            }
            core.cycles()
        })
    });
    c.bench_function("sim/retire-load-stream-10k", |b| {
        b.iter(|| {
            let mut core = Core::new(PlatformSpec::x60());
            for i in 0..10_000u64 {
                let op = MachineOp::simple(OpClass::Load, i % 64)
                    .with_mem(MemRef::scalar(0x1_0000 + (i * 64) % (1 << 20), 8, false));
                core.retire(black_box(&op));
            }
            core.cycles()
        })
    });
}

fn bench_branch_predictor(c: &mut Criterion) {
    c.bench_function("sim/gshare-10k", |b| {
        b.iter(|| {
            let mut bp = mperf_sim::BranchPredictor::new(14);
            let mut correct = 0u64;
            for i in 0..10_000u64 {
                if bp.predict_and_update(black_box(0x400 + i % 16), i % 7 != 0) {
                    correct += 1;
                }
            }
            correct
        })
    });
}

criterion_group!(
    benches,
    bench_interp_throughput,
    bench_core_retire,
    bench_branch_predictor
);
criterion_main!(benches);
