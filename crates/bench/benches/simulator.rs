//! Criterion benches over the execution substrate: interpreter
//! throughput per platform model (decoded vs reference engine, across
//! ALU-, memory-, and call-heavy workloads), the core retire path, and
//! the branch predictor.
//!
//! The bench bodies live in `mperf_bench::interp_bench` so the
//! `bench_trajectory` runner measures exactly the same code.

use criterion::{criterion_group, criterion_main, Criterion};
use mperf_bench::interp_bench::{register_interp_benches, register_retire_benches};
use std::hint::black_box;

fn bench_interp_throughput(c: &mut Criterion) {
    let _ = register_interp_benches(c);
}

fn bench_core_retire(c: &mut Criterion) {
    register_retire_benches(c);
}

fn bench_branch_predictor(c: &mut Criterion) {
    c.bench_function("sim/gshare-10k", |b| {
        b.iter(|| {
            let mut bp = mperf_sim::BranchPredictor::new(14);
            let mut correct = 0u64;
            for i in 0..10_000u64 {
                if bp.predict_and_update(black_box(0x400 + i % 16), i % 7 != 0) {
                    correct += 1;
                }
            }
            correct
        })
    });
}

criterion_group!(
    benches,
    bench_interp_throughput,
    bench_core_retire,
    bench_branch_predictor
);
criterion_main!(benches);
