//! Client/daemon session layer for `miniperf serve`.
//!
//! [`crate::proto`] defines the framed message set; this module pins
//! down *who says what when* for the socket-facing subset and wraps
//! the client side in [`ClientSession`]. Everything is generic over
//! [`Read`]/[`Write`], so the same code runs over a Unix-domain socket
//! in production and over in-memory pipes in tests.
//!
//! ## Session shape
//!
//! ```text
//! client                              daemon
//!   │ ── Hello ───────────────────────▶ │   (client speaks first)
//!   │ ◀─────────────────────── Hello ── │   (mismatch ⇒ drop)
//!   │ ── Submit{job, spec} ───────────▶ │
//!   │ ◀── Sample/Region/CellDone ────── │   (streamed as produced)
//!   │ ◀── Progress{job, done, total} ── │   (informational, sweeps)
//!   │ ◀── JobStatus{job, code, …} ───── │   (terminal, exactly one)
//!   │ ── Cancel{job} ─────────────────▶ │   (any time before status)
//!   │ ── Shutdown or EOF ─────────────▶ │   (end of session)
//! ```
//!
//! A job is *terminated* by exactly one [`Msg::JobStatus`]; every
//! streamed event before it carries the job id the client chose in its
//! [`Msg::Submit`]. A submit can also terminate *immediately* — the
//! daemon sheds work it will not run (admission control, drain mode)
//! with a `JobStatus` carrying [`crate::proto::CODE_REJECTED`] and no
//! preceding events. The daemon buffers a job's events only in a
//! *bounded* per-connection queue — each is framed and flushed as the
//! execution bridge produces it — so client code must be prepared to
//! interleave reads with its own rendering; a client that stops
//! reading long enough to fill that queue is declared stalled and its
//! connection is dropped.

use crate::proto::{read_msg, write_msg, Msg, ProtoError, MAGIC, SCHEMA};
use std::io::{Read, Write};

/// Validate a peer's [`Msg::Hello`] against this binary's protocol
/// version. Any mismatch is fatal for the session.
///
/// # Errors
/// [`ProtoError::Corrupt`] naming the mismatch (wrong magic or schema),
/// or when `msg` is not a `Hello` at all.
pub fn check_hello(msg: &Msg) -> Result<(), ProtoError> {
    match msg {
        Msg::Hello { magic, schema } => {
            if magic != MAGIC {
                return Err(ProtoError::Corrupt(format!(
                    "bad protocol magic {magic:?} (want {MAGIC:?})"
                )));
            }
            if *schema != SCHEMA {
                return Err(ProtoError::Corrupt(format!(
                    "schema mismatch: peer speaks {schema}, this binary speaks {SCHEMA}"
                )));
            }
            Ok(())
        }
        other => Err(ProtoError::Corrupt(format!(
            "expected Hello, got {other:?}"
        ))),
    }
}

/// Daemon side of the handshake: read the client's `Hello`, validate
/// it, and reply with our own. Call once per accepted connection
/// before entering the message loop.
///
/// # Errors
/// Handshake violations ([`check_hello`]) and transport failures. On
/// error the connection must be dropped — nothing was negotiated.
pub fn handshake_accept<R: Read, W: Write>(r: &mut R, w: &mut W) -> Result<(), ProtoError> {
    check_hello(&read_msg(r)?)?;
    write_msg(w, &Msg::hello()).map_err(ProtoError::Io)
}

/// Client side of the handshake: send our `Hello` first, then validate
/// the daemon's reply.
///
/// # Errors
/// Handshake violations ([`check_hello`]) and transport failures.
pub fn handshake_connect<R: Read, W: Write>(r: &mut R, w: &mut W) -> Result<(), ProtoError> {
    write_msg(w, &Msg::hello()).map_err(ProtoError::Io)?;
    check_hello(&read_msg(r)?)
}

/// A job's terminal outcome, unpacked from [`Msg::JobStatus`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Batch-CLI-compatible exit code (or
    /// [`crate::proto::CODE_CANCELLED`]).
    pub code: u32,
    /// Human-readable failure text; empty on success. Rendered to
    /// stderr by `miniperf submit` exactly as the batch command would
    /// have printed it.
    pub message: String,
    /// Job-kind-specific summary codec (profile totals, stat counts,
    /// sweep retry accounting).
    pub payload: Vec<u8>,
}

/// The client end of a serve session: handshake on construction, then
/// submit jobs and drain their event streams.
pub struct ClientSession<R: Read, W: Write> {
    r: R,
    w: W,
    next_job: u64,
}

impl<R: Read, W: Write> ClientSession<R, W> {
    /// Perform the client handshake over an already-connected pair of
    /// stream halves (e.g. a `UnixStream` and its `try_clone`).
    ///
    /// # Errors
    /// Handshake violations and transport failures.
    pub fn connect(mut r: R, mut w: W) -> Result<Self, ProtoError> {
        handshake_connect(&mut r, &mut w)?;
        Ok(ClientSession { r, w, next_job: 1 })
    }

    /// Submit one encoded job description; returns the job id chosen
    /// for it (unique within this session).
    ///
    /// # Errors
    /// Transport failures.
    pub fn submit(&mut self, payload: Vec<u8>) -> Result<u64, ProtoError> {
        let job = self.next_job;
        self.next_job += 1;
        write_msg(&mut self.w, &Msg::Submit { job, payload }).map_err(ProtoError::Io)?;
        Ok(job)
    }

    /// Ask the daemon to cancel `job`. The job still terminates with a
    /// [`Msg::JobStatus`] (normally [`crate::proto::CODE_CANCELLED`],
    /// or its natural code if it won the race).
    ///
    /// # Errors
    /// Transport failures.
    pub fn cancel(&mut self, job: u64) -> Result<(), ProtoError> {
        write_msg(&mut self.w, &Msg::Cancel { job }).map_err(ProtoError::Io)
    }

    /// Blocking read of the next daemon message.
    ///
    /// # Errors
    /// [`ProtoError::Eof`] when the daemon closed the session, plus
    /// framing/transport failures.
    pub fn next_event(&mut self) -> Result<Msg, ProtoError> {
        read_msg(&mut self.r)
    }

    /// Drain `job`'s event stream: feed every `Sample`/`Region`/
    /// `CellDone`/`Progress` for it to `on_event` as it arrives, and
    /// return when the terminal [`Msg::JobStatus`] lands.
    ///
    /// # Errors
    /// [`ProtoError::Corrupt`] if the daemon streams an event for a
    /// different job (one job in flight per session is the client's
    /// contract) or an out-of-role message; framing/transport failures.
    pub fn drain_job<F>(&mut self, job: u64, mut on_event: F) -> Result<JobResult, ProtoError>
    where
        F: FnMut(&Msg),
    {
        loop {
            let msg = self.next_event()?;
            let event_job = match &msg {
                Msg::Sample { job, .. }
                | Msg::Region { job, .. }
                | Msg::CellDone { job, .. }
                | Msg::Progress { job, .. } => *job,
                Msg::JobStatus {
                    job: status_job,
                    code,
                    message,
                    payload,
                } => {
                    if *status_job != job {
                        return Err(ProtoError::Corrupt(format!(
                            "status for job {status_job} while draining job {job}"
                        )));
                    }
                    return Ok(JobResult {
                        code: *code,
                        message: message.clone(),
                        payload: payload.clone(),
                    });
                }
                other => {
                    return Err(ProtoError::Corrupt(format!(
                        "unexpected message from daemon: {other:?}"
                    )))
                }
            };
            if event_job != job {
                return Err(ProtoError::Corrupt(format!(
                    "event for job {event_job} while draining job {job}"
                )));
            }
            on_event(&msg);
        }
    }

    /// Politely end the session (the daemon also accepts a bare EOF).
    ///
    /// # Errors
    /// Transport failures.
    pub fn shutdown(mut self) -> Result<(), ProtoError> {
        write_msg(&mut self.w, &Msg::Shutdown).map_err(ProtoError::Io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_frame, CODE_CANCELLED};

    #[test]
    fn handshake_accept_refuses_version_skew() {
        let stale = encode_frame(&Msg::Hello {
            magic: *MAGIC,
            schema: SCHEMA + 1,
        });
        let mut out = Vec::new();
        let err = handshake_accept(&mut &stale[..], &mut out).unwrap_err();
        assert!(
            matches!(&err, ProtoError::Corrupt(m) if m.contains("schema mismatch")),
            "{err}"
        );
        assert!(out.is_empty(), "no Hello reply to a refused client");

        let alien = encode_frame(&Msg::Hello {
            magic: *b"NOTMPSW1",
            schema: SCHEMA,
        });
        let err = handshake_accept(&mut &alien[..], &mut Vec::new()).unwrap_err();
        assert!(
            matches!(&err, ProtoError::Corrupt(m) if m.contains("magic")),
            "{err}"
        );
    }

    #[test]
    fn client_session_submits_and_drains_one_job() {
        // Script the daemon side of a whole session into a byte stream.
        let mut daemon_out = Vec::new();
        for m in [
            Msg::hello(),
            Msg::Sample {
                job: 1,
                payload: vec![1],
            },
            Msg::CellDone {
                job: 1,
                index: 0,
                payload: vec![2, 3],
            },
            Msg::Progress {
                job: 1,
                done: 1,
                total: 4,
            },
            Msg::JobStatus {
                job: 1,
                code: 0,
                message: String::new(),
                payload: vec![7],
            },
        ] {
            daemon_out.extend_from_slice(&encode_frame(&m));
        }
        let mut client_out = Vec::new();
        let mut s = ClientSession::connect(&daemon_out[..], &mut client_out).unwrap();
        let job = s.submit(vec![0xaa]).unwrap();
        assert_eq!(job, 1);
        let mut events = Vec::new();
        let result = s.drain_job(job, |m| events.push(m.clone())).unwrap();
        assert_eq!(result.code, 0);
        assert_eq!(result.payload, vec![7]);
        assert_eq!(events.len(), 3);
        assert!(
            matches!(
                events[2],
                Msg::Progress {
                    job: 1,
                    done: 1,
                    total: 4
                }
            ),
            "Progress frames flow through drain_job like any other event"
        );
        // The client wrote Hello then Submit, framed.
        let mut cursor = &client_out[..];
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::hello());
        assert_eq!(
            read_msg(&mut cursor).unwrap(),
            Msg::Submit {
                job: 1,
                payload: vec![0xaa]
            }
        );
    }

    #[test]
    fn drain_rejects_cross_job_events() {
        let mut daemon_out = Vec::new();
        for m in [
            Msg::hello(),
            Msg::Sample {
                job: 2,
                payload: vec![1],
            },
        ] {
            daemon_out.extend_from_slice(&encode_frame(&m));
        }
        let mut s = ClientSession::connect(&daemon_out[..], Vec::new()).unwrap();
        let err = s.drain_job(1, |_| {}).unwrap_err();
        assert!(
            matches!(&err, ProtoError::Corrupt(m) if m.contains("job 2")),
            "{err}"
        );
    }

    #[test]
    fn cancelled_status_surfaces_its_code() {
        let mut daemon_out = Vec::new();
        for m in [
            Msg::hello(),
            Msg::JobStatus {
                job: 1,
                code: CODE_CANCELLED,
                message: "cancelled".into(),
                payload: Vec::new(),
            },
        ] {
            daemon_out.extend_from_slice(&encode_frame(&m));
        }
        let mut s = ClientSession::connect(&daemon_out[..], Vec::new()).unwrap();
        s.submit(Vec::new()).unwrap();
        let result = s.drain_job(1, |_| panic!("no events expected")).unwrap();
        assert_eq!(result.code, CODE_CANCELLED);
    }
}
