//! Minimal hand-rolled wire codec for journal payloads.
//!
//! The workspace builds offline (no serde); journal payloads are
//! encoded with this explicit little-endian codec instead. It is not a
//! general serialization framework: encoders and decoders are written
//! in pairs and schema evolution is handled by versioning the payload
//! (the journal key already hashes the producing configuration, so a
//! schema change simply misses the cache).

use std::fmt;

/// Decode failure: the payload does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the field needs.
    Truncated,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Well-formed fields but trailing bytes remain.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("payload truncated"),
            WireError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::Trailing(n) => write!(f, "{n} trailing byte(s) after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian append-only encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bit-exact float encoding (`to_bits`), so decode → encode is the
    /// identity byte-for-byte.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// `u32` length prefix + UTF-8 bytes.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// `u32` length prefix + raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-style decoder over an encoded payload.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(left))
        }
    }
}

/// FNV-1a 64-bit hash — the journal's content-hash primitive (stable
/// across platforms and runs, unlike `std`'s `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC-32 (IEEE 802.3, reflected), bitwise — frames are small and the
/// journal is not on any hot path, so no table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.str("platform × workload");
        e.bytes(&[1, 2, 3]);
        let buf = e.into_bytes();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "platform × workload");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_detected() {
        let mut e = Enc::new();
        e.u64(1);
        let buf = e.into_bytes();
        let mut d = Dec::new(&buf[..7]);
        assert_eq!(d.u64(), Err(WireError::Truncated));
        let mut d = Dec::new(&buf);
        d.u32().unwrap();
        assert_eq!(d.finish(), Err(WireError::Trailing(4)));
    }

    #[test]
    fn bad_utf8_is_detected() {
        let mut e = Enc::new();
        e.bytes(&[0xff, 0xfe]);
        let buf = e.into_bytes();
        assert_eq!(Dec::new(&buf).str(), Err(WireError::BadUtf8));
    }

    #[test]
    fn hash_and_crc_reference_values() {
        // FNV-1a and CRC-32 published test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }
}
