//! # mperf-sweep — deterministic thread-parallel sweep scheduling
//!
//! The paper's methodology is a *sweep*: every roofline chart correlates
//! a baseline and an instrumented run per region, across platforms and
//! workloads (§4.3, Fig. 2), and hierarchical-roofline practice
//! multiplies that further across kernels and memory levels. Each
//! `phase × platform × workload` combination is an independent
//! simulation — an embarrassingly parallel job matrix whose wall-clock,
//! not single-VM throughput, dominates a full evaluation.
//!
//! This crate schedules that matrix over worker threads while keeping
//! the output **bit-identical to the serial order**:
//!
//! - [`queue`] — a work-stealing-free job queue over
//!   [`std::thread::scope`]: workers pop jobs front-to-back, results are
//!   collected *by job index*, and `jobs = 1` (or a single job) takes a
//!   strictly serial path with no threads spawned. No external
//!   dependencies.
//! - [`plan`] — the shared sweep vocabulary: [`Phase`] (the two-phase
//!   protocol order every sweep's serial output is pinned to) and
//!   [`SharedModule`] (a compiled workload bundled with its one
//!   `Arc`-shared decode).
//!
//! Determinism needs no locking discipline beyond the queue itself:
//! every job owns a fresh `Vm`/`Core` (the whole execution stack is
//! `Send`, enforced in `mperf-vm`), shares only the immutable
//! [`mperf_vm::DecodedModule`], and the simulated PMU/cycle state never
//! observes host time or host thread interleaving.
//!
//! ## Fault tolerance, journaling & resume
//!
//! Production-scale sweeps (thousands of cells, hours of wall-clock)
//! must survive misbehaving cells and interrupted runs. Three layers
//! provide that, each independently testable:
//!
//! - [`supervise`] — [`run_jobs_supervised`] wraps every job in
//!   `catch_unwind`, so a panicking cell becomes a structured
//!   [`CellError::Panicked`] instead of tearing down the sweep.
//!   Failures are classified ([`FailureClass`]): *transient* ones
//!   retry with a deterministic backoff (counted in queue pops, never
//!   wall-clock) until quarantined, *permanent* ones fail just their
//!   own cell, and *fatal* ones flip a shared cancellation flag that
//!   keeps still-queued cells from starting (reported as skipped).
//!   The [`SweepReport`] keeps the core determinism contract: every
//!   completed slot is bit-identical to a serial run of the same jobs.
//! - [`journal`] — an append-only checkpoint file (`MPSWJRN1`) of
//!   CRC-framed records keyed by a content hash of the producing
//!   configuration. A torn tail from a crash mid-append is detected
//!   and truncated on open via an atomic tempfile + rename, so the
//!   journal is always left well-formed. Resume is a cache lookup:
//!   cells whose key already has a payload are decoded instead of
//!   re-executed, and a journal written under a different
//!   configuration simply never matches.
//! - [`mperf_fault`] (the `failpoints` feature) — deterministic fault
//!   injection for exercising the two layers above: named probe sites
//!   (the journal probes `sweep.journal`; the roofline runner probes
//!   `sweep.cell`; the process layer probes `ipc.frame`, `worker.exit`,
//!   and `worker.stall`) armed by a seeded plan. Compiled out entirely
//!   when the feature is off.
//!
//! ## Process sharding
//!
//! Thread-level supervision cannot survive a worker that segfaults, is
//! OOM-killed, or hangs — those take the whole process down (or wedge
//! it). [`shard`] moves the isolation boundary to child processes:
//! [`run_sharded`] drives N workers over their stdin/stdout with the
//! [`proto`] protocol, and [`WorkerCmd`] launches real worker binaries
//! (`miniperf sweep-worker`).
//!
//! **Wire format.** Every message is one CRC-framed record,
//! `[body len: u32 LE][crc32(body): u32 LE][body]`, with bodies encoded
//! by the same bit-exact [`wire`] codec the journal uses. The message
//! set is `Hello`, `Cell` (index + attempt + opaque request payload),
//! `Done` (index + opaque result payload), `Fail` (index +
//! [`FailureClass`] + message + optional `TrapInfo` — failure structure
//! survives the process boundary), and `Shutdown`.
//!
//! **Handshake & versioning.** The initiating peer's first frame is
//! `Hello` carrying the 8-byte magic (`MPSWIPC1`) and schema version —
//! a worker to its supervisor, a socket client to the serve daemon.
//! Any mismatch is *fatal*, never retried: version skew means the
//! binary pair cannot make progress. Schema bumps are breaking by
//! design.
//!
//! ## Serve protocol
//!
//! The `miniperf serve` daemon speaks the same framed, versioned
//! protocol over a Unix-domain socket; [`serve`] holds the session
//! layer ([`ClientSession`], the handshake helpers) and documents the
//! session shape. The serve subset of the message set:
//!
//! | Message | Direction | Meaning |
//! |---|---|---|
//! | `Hello` | client → daemon, then daemon → client | magic + schema; mismatch drops the connection |
//! | `Submit {job, payload}` | client → daemon | one encoded job description (`JobSpec` codec); `job` is client-chosen and echoed in every event |
//! | `Sample {job, payload}` | daemon → client | one profiling sample, flushed as drained from the PMU ring |
//! | `Region {job, payload}` | daemon → client | one roofline region measurement, flushed as correlated |
//! | `CellDone {job, index, payload}` | daemon → client | one sweep cell result — the bit-exact `RooflineRun` journal codec |
//! | `Progress {job, done, total}` | daemon → client | informational: `done` of `total` sweep cells finished (journal-resumed cells count); safe to ignore |
//! | `Cancel {job}` | client → daemon | stop `job` at the next cell/drain boundary |
//! | `JobStatus {job, code, message, payload}` | daemon → client | terminal, exactly one per job; `code` mirrors the batch CLI exit code plus the supervision codes — 130 = cancelled/disconnect/drain ([`proto::CODE_CANCELLED`]), 75 = shed by admission control or drain mode ([`proto::CODE_REJECTED`]), 124 = job deadline exceeded ([`proto::CODE_TIMEOUT`]), 131 = client stalled ([`proto::CODE_STALLED`]); `payload` is a job-kind summary |
//! | `Shutdown` | client → daemon | end of session (EOF is equivalent) |
//!
//! **Versioning rules.** One [`proto::SCHEMA`] gates shard *and* serve
//! subsets together (a serve-side change bumps the shard protocol too
//! — both live in the same binary, so skew between roles is
//! impossible). The handshake is symmetric-fatal: daemon and client
//! each validate the peer's `Hello` and drop the connection on any
//! mismatch; there is no field-level negotiation. Event payloads are
//! opaque to the protocol layer and versioned by their own codecs
//! (job specs and summaries carry their own schema bytes, cell
//! payloads reuse the journal's `RooflineRun` codec).
//!
//! **Failure taxonomy.** Worker crash (nonzero exit, signal,
//! unexpected EOF), stall (per-cell deadline in heartbeat *ticks*, not
//! wall-clock), and corrupt/short frames all classify as transient:
//! kill + respawn the worker and requeue the cell through the shared
//! [`RetryPolicy`] attempt accounting. A cell that kills its worker
//! `max_attempts` times is quarantined as a **poison cell**
//! (crash-loop protection) while healthy cells keep flowing.
//! Worker-reported failures keep their class across the wire; fatal
//! errors (including a failed journal append) cancel still-queued
//! cells on every shard.
//!
//! **Determinism contract.** Results are collected by cell index, so
//! every completed slot is bit-identical to a serial sweep at any
//! shard count, regardless of dispatch order (cost-ordered,
//! longest-first), retries, respawns, or which worker incarnation ran
//! the cell. The journal is written by the supervisor alone — workers
//! never see the fd (std opens files `O_CLOEXEC` on Linux) — so
//! `--journal`/`--resume` compose: a supervisor crash resumes
//! byte-identically.

pub mod journal;
pub mod plan;
pub mod proto;
pub mod queue;
pub mod serve;
pub mod shard;
pub mod supervise;
pub mod wire;

pub use journal::{Journal, JournalError};
pub use plan::{Phase, SharedModule};
pub use proto::{ProtoError, WorkerFailure};
pub use queue::{default_jobs, run_jobs, try_run_jobs};
pub use serve::{ClientSession, JobResult};
pub use shard::{
    run_sharded, ShardCell, ShardCellError, ShardFailure, ShardOptions, ShardReport, WorkerCmd,
    WorkerLink,
};
pub use supervise::{
    run_jobs_supervised, CellError, CellFailure, FailureClass, JobCtx, RetryPolicy, SweepReport,
};
