//! # mperf-sweep — deterministic thread-parallel sweep scheduling
//!
//! The paper's methodology is a *sweep*: every roofline chart correlates
//! a baseline and an instrumented run per region, across platforms and
//! workloads (§4.3, Fig. 2), and hierarchical-roofline practice
//! multiplies that further across kernels and memory levels. Each
//! `phase × platform × workload` combination is an independent
//! simulation — an embarrassingly parallel job matrix whose wall-clock,
//! not single-VM throughput, dominates a full evaluation.
//!
//! This crate schedules that matrix over worker threads while keeping
//! the output **bit-identical to the serial order**:
//!
//! - [`queue`] — a work-stealing-free job queue over
//!   [`std::thread::scope`]: workers pop jobs front-to-back, results are
//!   collected *by job index*, and `jobs = 1` (or a single job) takes a
//!   strictly serial path with no threads spawned. No external
//!   dependencies.
//! - [`plan`] — the shared sweep vocabulary: [`Phase`] (the two-phase
//!   protocol order every sweep's serial output is pinned to) and
//!   [`SharedModule`] (a compiled workload bundled with its one
//!   `Arc`-shared decode).
//!
//! Determinism needs no locking discipline beyond the queue itself:
//! every job owns a fresh `Vm`/`Core` (the whole execution stack is
//! `Send`, enforced in `mperf-vm`), shares only the immutable
//! [`mperf_vm::DecodedModule`], and the simulated PMU/cycle state never
//! observes host time or host thread interleaving.

pub mod plan;
pub mod queue;

pub use plan::{Phase, SharedModule};
pub use queue::{default_jobs, run_jobs, try_run_jobs};
