//! The deterministic job queue.
//!
//! Scheduling model: a locked `VecDeque` of `(index, job)` pairs popped
//! front-to-back by `workers` scoped threads. Which *thread* runs which
//! job is timing-dependent; which *result slot* a job fills is not —
//! results land at their job's index, so the returned `Vec` is
//! bit-identical to a serial `map` regardless of interleaving. Workers
//! are plain `std::thread::scope` threads, so jobs may borrow from the
//! caller's stack (modules, setup closures) without `Arc`-wrapping
//! everything.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Default worker count: the host's available parallelism (the
/// `--jobs` default throughout the CLI/bench surface).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `jobs` under at most `workers` threads, returning results in job
/// order (index `i` of the output is job `i`'s result, always).
///
/// - `workers <= 1` or a single job: strictly serial on the calling
///   thread, no threads spawned — the serial fallback the sweep
///   determinism property tests against.
/// - `workers` is clamped to the job count; excess workers are never
///   spawned.
/// - A panicking job propagates its panic to the caller after the scope
///   joins (no result is silently dropped).
pub fn run_jobs<J, R, F>(jobs: Vec<J>, workers: usize, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, j)| run(i, j))
            .collect();
    }

    let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|s| {
        let queue = &queue;
        let run = &run;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        // Pop under the lock, run outside it.
                        let job = queue.lock().expect("sweep queue lock").pop_front();
                        let Some((idx, j)) = job else { break };
                        done.push((idx, run(idx, j)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(chunk) => {
                    for (idx, r) in chunk {
                        results[idx] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scheduler ran every job"))
        .collect()
}

/// [`run_jobs`] over fallible jobs: returns all results, or the error of
/// the *earliest job in serial order* that failed — so error selection
/// is as deterministic as success output (a slow worker finishing a
/// later failing job first cannot change which error the caller sees).
/// After any failure the queue stops draining: workers may finish jobs
/// already in flight, but no still-queued job starts. The earliest-error
/// contract survives cancellation because jobs are popped front-to-back —
/// every never-started job has a higher index than every failure already
/// observed.
///
/// # Errors
/// The first (by job index) job error.
pub fn try_run_jobs<J, R, E, F>(jobs: Vec<J>, workers: usize, run: F) -> Result<Vec<R>, E>
where
    J: Send,
    R: Send,
    E: Send,
    F: Fn(usize, J) -> Result<R, E> + Sync,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        let mut ok = Vec::with_capacity(n);
        for (i, j) in jobs.into_iter().enumerate() {
            ok.push(run(i, j)?);
        }
        return Ok(ok);
    }

    let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let failed = AtomicBool::new(false);
    let mut results: Vec<Option<Result<R, E>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|s| {
        let queue = &queue;
        let failed = &failed;
        let run = &run;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    while !failed.load(Ordering::Acquire) {
                        let job = queue.lock().expect("sweep queue lock").pop_front();
                        let Some((idx, j)) = job else { break };
                        let r = run(idx, j);
                        if r.is_err() {
                            failed.store(true, Ordering::Release);
                        }
                        done.push((idx, r));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(chunk) => {
                    for (idx, r) in chunk {
                        results[idx] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    // Earliest failure by job index wins; absent that, every job ran
    // (the queue only stops draining after a failure).
    let mut ok = Vec::with_capacity(n);
    for r in results.into_iter().flatten() {
        ok.push(r?);
    }
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_job_order_at_any_worker_count() {
        let jobs: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j + 1).collect();
        for workers in [1, 2, 3, 4, 8, 64] {
            let got = run_jobs(jobs.clone(), workers, |idx, j| {
                assert_eq!(idx as u64, j, "index matches enumeration");
                j * j + 1
            });
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn serial_fallback_spawns_no_threads() {
        let main_id = std::thread::current().id();
        let ran_on = run_jobs(vec![(); 5], 1, |_, ()| std::thread::current().id());
        assert!(ran_on.iter().all(|id| *id == main_id));
    }

    #[test]
    fn workers_clamp_to_job_count() {
        // 1 job, 16 workers: must still complete (and serially).
        let out = run_jobs(vec![41], 16, |_, j| j + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_jobs(Vec::<u32>::new(), 4, |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let n = 101;
        let out = run_jobs((0..n).collect(), 4, |_, j: usize| {
            count.fetch_add(1, Ordering::Relaxed);
            j
        });
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn try_run_reports_earliest_error_in_job_order() {
        // Jobs 3 and 1 both fail; job 1's error must win regardless of
        // which worker finishes first.
        for workers in [1, 2, 4] {
            let r: Result<Vec<u32>, String> = try_run_jobs((0..6u32).collect(), workers, |_, j| {
                if j == 3 || j == 1 {
                    Err(format!("job {j} failed"))
                } else {
                    Ok(j)
                }
            });
            assert_eq!(r.unwrap_err(), "job 1 failed", "workers={workers}");
        }
    }

    #[test]
    fn serial_try_run_short_circuits_after_an_error() {
        let executed = AtomicUsize::new(0);
        let r: Result<Vec<u32>, &str> = try_run_jobs((0..8u32).collect(), 1, |_, j| {
            executed.fetch_add(1, Ordering::Relaxed);
            if j == 2 {
                Err("boom")
            } else {
                Ok(j)
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(executed.load(Ordering::Relaxed), 3, "jobs 3..8 skipped");
    }

    #[test]
    fn parallel_try_run_stops_draining_after_a_failure() {
        use std::sync::atomic::AtomicBool;
        // Job 0 (always popped first — FIFO) fails immediately; every
        // other job waits until that failure has happened, then gives the
        // scheduler ample time to publish the cancellation flag before
        // finishing. Only jobs already in flight when job 0 failed may
        // complete, so at most `workers` jobs ever execute.
        let workers = 4;
        let n = 64u32;
        let job0_failed = AtomicBool::new(false);
        let executed = AtomicUsize::new(0);
        let r: Result<Vec<u32>, &str> = try_run_jobs((0..n).collect(), workers, |_, j| {
            executed.fetch_add(1, Ordering::Relaxed);
            if j == 0 {
                job0_failed.store(true, Ordering::Release);
                return Err("boom");
            }
            while !job0_failed.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            Ok(j)
        });
        assert_eq!(r.unwrap_err(), "boom");
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran <= workers, "queue kept draining: {ran} of {n} jobs ran");
    }

    #[test]
    fn jobs_may_borrow_caller_stack() {
        let data = [10u64, 20, 30];
        let out = run_jobs(vec![0usize, 1, 2], 2, |_, i| data[i] * 2);
        assert_eq!(out, vec![20, 40, 60]);
    }
}
