//! Versioned, framed IPC protocol for multi-process sweep sharding and
//! the `miniperf serve` daemon.
//!
//! Two kinds of peers speak this protocol. The shard supervisor
//! ([`crate::shard`]) and its worker processes use the
//! `Cell`/`Done`/`Fail`/`Shutdown` subset over the workers'
//! stdin/stdout. Socket clients of the `miniperf serve` daemon use the
//! `Submit`/`Sample`/`Region`/`CellDone`/`Cancel`/`JobStatus` subset
//! over a Unix-domain socket ([`crate::serve`] holds the session
//! layer). Both subsets share one schema version, one frame format,
//! and one handshake, so a single binary can be supervisor, worker,
//! daemon, and client without version drift between roles.
//!
//! ## Framing
//!
//! Every message travels as one self-delimiting frame:
//!
//! ```text
//! [body len: u32 LE][crc32(body): u32 LE][body]
//! ```
//!
//! `crc32` is the same bitwise IEEE CRC the checkpoint journal uses
//! ([`crate::wire::crc32`]), and bodies are encoded with the bit-exact
//! [`crate::wire`] codec (`f64` as `to_bits`), so a decoded-and-
//! re-encoded message is byte-identical. Frames larger than
//! [`MAX_FRAME`] are refused as corrupt: a garbage length field must
//! not make the reader allocate or block forever.
//!
//! ## Handshake and versioning
//!
//! The first frame the *initiating* peer writes is [`Msg::Hello`]
//! carrying the 8-byte protocol magic ([`MAGIC`]) and its [`SCHEMA`]
//! version: a shard worker speaks first to its supervisor; a socket
//! client speaks first to the serve daemon (which replies with its own
//! `Hello`). Either side refuses a peer whose magic or schema does not
//! match its own — version skew is a *fatal* error (the binary pair
//! cannot make progress), not a retryable one. Schema bumps are
//! breaking by design: there is no field-level negotiation, the
//! version gates the whole message set.
//!
//! ## Error taxonomy
//!
//! [`read_msg`] distinguishes a clean end-of-stream at a frame boundary
//! ([`ProtoError::Eof`] — the peer shut down) from every other failure
//! ([`ProtoError::Corrupt`]): a torn frame, a CRC mismatch, an
//! oversized length, an unknown tag, or trailing bytes. The supervisor
//! maps `Corrupt` onto [`FailureClass::Transient`] — the cell burns an
//! attempt and the worker is killed and respawned, because a stream
//! that has lost framing cannot be trusted again.

use crate::supervise::FailureClass;
use crate::wire::{crc32, Dec, Enc, WireError};
use mperf_vm::TrapInfo;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic: `MPSW` IPC, version 1 (carried inside [`Msg::Hello`]).
pub const MAGIC: &[u8; 8] = b"MPSWIPC1";

/// Message-set schema version; bumped on any wire-visible change.
/// Schema 2 added the serve-daemon subset (`Submit` through
/// `JobStatus`); schema 3 added `Progress` and the supervision status
/// codes ([`CODE_REJECTED`], [`CODE_TIMEOUT`], [`CODE_STALLED`]).
pub const SCHEMA: u32 = 3;

/// Upper bound on one frame body. A length field beyond this is
/// treated as corruption, never allocated.
pub const MAX_FRAME: usize = 64 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum ProtoError {
    /// Clean end-of-stream at a frame boundary: the peer is gone.
    Eof,
    /// The stream is no longer trustworthy: torn frame, bad CRC,
    /// oversized length, unknown tag, or malformed body.
    Corrupt(String),
    /// Transport-level I/O failure.
    Io(io::Error),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Eof => f.write_str("end of stream"),
            ProtoError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// The fault-injection key for per-attempt worker failpoints
/// (`worker.exit`, `worker.stall`, `ipc.frame`): attempt in the high
/// half, cell index in the low half, so a plan can fault attempt 0 of a
/// cell and let its retry through — or arm several attempts to build a
/// poison cell.
pub fn fault_key(index: u64, attempt: u32) -> u64 {
    ((attempt as u64) << 32) | (index & 0xffff_ffff)
}

/// One protocol message.
///
/// Shard subset: `Hello`/`Done`/`Fail` flow worker → supervisor;
/// `Cell`/`Shutdown` flow supervisor → worker.
///
/// Serve subset: `Submit`/`Cancel` flow client → daemon;
/// `Sample`/`Region`/`CellDone`/`JobStatus` flow daemon → client.
/// `job` identifiers are chosen by the client and echoed back opaquely,
/// so one connection can tell its own jobs apart. Event payloads are
/// opaque to this layer: the job-execution bridge defines their codecs
/// and keeps them bit-exact (the same `RooflineRun` codec the sweep
/// journal uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// The initiating peer's first frame: magic + schema version.
    Hello { magic: [u8; 8], schema: u32 },
    /// Dispatch one cell (opaque payload) to a worker. `attempt` is the
    /// supervisor's 0-based attempt number, forwarded so worker-side
    /// failpoints can key on it ([`fault_key`]).
    Cell {
        index: u64,
        attempt: u32,
        payload: Vec<u8>,
    },
    /// Cell completed; opaque result payload.
    Done { index: u64, payload: Vec<u8> },
    /// Cell failed inside the worker. [`FailureClass`] and the trap
    /// site (when the VM captured one) survive the process boundary.
    Fail {
        index: u64,
        class: FailureClass,
        message: String,
        trap: Option<TrapInfo>,
    },
    /// Supervisor asks the worker to exit cleanly.
    Shutdown,
    /// Client submits one job. `payload` is an encoded job description
    /// (the same typed `JobSpec` the CLI parses); `job` is the client's
    /// identifier for it, echoed in every event the job produces.
    Submit { job: u64, payload: Vec<u8> },
    /// One profiling sample, streamed as it is drained from the PMU
    /// ring — never accumulated daemon-side.
    Sample { job: u64, payload: Vec<u8> },
    /// One roofline region measurement, streamed as correlation
    /// produces it.
    Region { job: u64, payload: Vec<u8> },
    /// One sweep cell completed; `payload` is the bit-exact
    /// `RooflineRun` codec the journal uses, `index` the cell's slot.
    CellDone {
        job: u64,
        index: u64,
        payload: Vec<u8>,
    },
    /// Client asks the daemon to cancel a submitted job. Takes effect
    /// at the next cell/drain boundary; the job still terminates with a
    /// `JobStatus`.
    Cancel { job: u64 },
    /// Coarse completion report for a long-running job: `done` of
    /// `total` cells have finished (resumed-from-journal cells count as
    /// done). Streamed after each cell so a client can render progress
    /// without counting `CellDone` frames; purely informational and
    /// safe to ignore.
    Progress { job: u64, done: u64, total: u64 },
    /// Terminal job status. `code` mirrors the batch CLI exit code for
    /// a natural completion (0 ok, 1 failed, 3 partial, 4 fatal) and is
    /// [`CODE_CANCELLED`] for a cancelled job; `payload` is a
    /// job-kind-specific summary (profile totals, stat counts, sweep
    /// retry accounting) the client needs to render the batch report.
    JobStatus {
        job: u64,
        code: u32,
        message: String,
        payload: Vec<u8>,
    },
}

/// [`Msg::JobStatus`] code for a job stopped by [`Msg::Cancel`]:
/// `128 + SIGINT`, the shell convention for an interrupted run.
pub const CODE_CANCELLED: u32 = 130;

/// [`Msg::JobStatus`] code for a submit the daemon refused to run:
/// admission control shed it (job table full) or the daemon is
/// draining. Mirrors `EX_TEMPFAIL` from `sysexits.h` — the client may
/// retry later, possibly against a restarted daemon.
pub const CODE_REJECTED: u32 = 75;

/// [`Msg::JobStatus`] code for a job cancelled because it overran its
/// deadline (`ServeOptions::job_deadline_ticks` heartbeat ticks on the
/// daemon side). Mirrors GNU `timeout`'s exit code.
pub const CODE_TIMEOUT: u32 = 124;

/// [`Msg::JobStatus`] code for a job cancelled because its *client*
/// stalled — stopped draining the event stream past the stall
/// deadline. The stalled client's connection is torn down, so this
/// code normally never reaches it; it exists so daemon-side accounting
/// and logs can tell "client died" from "client wedged".
pub const CODE_STALLED: u32 = 131;

impl Msg {
    /// The canonical hello for this binary's protocol version.
    pub fn hello() -> Msg {
        Msg::Hello {
            magic: *MAGIC,
            schema: SCHEMA,
        }
    }
}

const TAG_HELLO: u8 = 1;
const TAG_CELL: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_FAIL: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_SUBMIT: u8 = 6;
const TAG_SAMPLE: u8 = 7;
const TAG_REGION: u8 = 8;
const TAG_CELL_DONE: u8 = 9;
const TAG_CANCEL: u8 = 10;
const TAG_JOB_STATUS: u8 = 11;
const TAG_PROGRESS: u8 = 12;

fn class_code(c: FailureClass) -> u8 {
    match c {
        FailureClass::Transient => 0,
        FailureClass::Permanent => 1,
        FailureClass::Fatal => 2,
    }
}

fn class_from_code(b: u8) -> Option<FailureClass> {
    match b {
        0 => Some(FailureClass::Transient),
        1 => Some(FailureClass::Permanent),
        2 => Some(FailureClass::Fatal),
        _ => None,
    }
}

fn encode_body(msg: &Msg) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        Msg::Hello { magic, schema } => {
            e.u8(TAG_HELLO);
            e.bytes(magic);
            e.u32(*schema);
        }
        Msg::Cell {
            index,
            attempt,
            payload,
        } => {
            e.u8(TAG_CELL);
            e.u64(*index);
            e.u32(*attempt);
            e.bytes(payload);
        }
        Msg::Done { index, payload } => {
            e.u8(TAG_DONE);
            e.u64(*index);
            e.bytes(payload);
        }
        Msg::Fail {
            index,
            class,
            message,
            trap,
        } => {
            e.u8(TAG_FAIL);
            e.u64(*index);
            e.u8(class_code(*class));
            e.str(message);
            match trap {
                Some(t) => {
                    e.u8(1);
                    e.u64(t.pc);
                    e.str(&t.func);
                }
                None => e.u8(0),
            }
        }
        Msg::Shutdown => e.u8(TAG_SHUTDOWN),
        Msg::Submit { job, payload } => {
            e.u8(TAG_SUBMIT);
            e.u64(*job);
            e.bytes(payload);
        }
        Msg::Sample { job, payload } => {
            e.u8(TAG_SAMPLE);
            e.u64(*job);
            e.bytes(payload);
        }
        Msg::Region { job, payload } => {
            e.u8(TAG_REGION);
            e.u64(*job);
            e.bytes(payload);
        }
        Msg::CellDone {
            job,
            index,
            payload,
        } => {
            e.u8(TAG_CELL_DONE);
            e.u64(*job);
            e.u64(*index);
            e.bytes(payload);
        }
        Msg::Cancel { job } => {
            e.u8(TAG_CANCEL);
            e.u64(*job);
        }
        Msg::Progress { job, done, total } => {
            e.u8(TAG_PROGRESS);
            e.u64(*job);
            e.u64(*done);
            e.u64(*total);
        }
        Msg::JobStatus {
            job,
            code,
            message,
            payload,
        } => {
            e.u8(TAG_JOB_STATUS);
            e.u64(*job);
            e.u32(*code);
            e.str(message);
            e.bytes(payload);
        }
    }
    e.into_bytes()
}

fn decode_body(body: &[u8]) -> Result<Msg, ProtoError> {
    let corrupt = |e: WireError| ProtoError::Corrupt(format!("malformed body: {e}"));
    let mut d = Dec::new(body);
    let tag = d.u8().map_err(corrupt)?;
    let msg = match tag {
        TAG_HELLO => {
            let magic_bytes = d.bytes().map_err(corrupt)?;
            let magic: [u8; 8] = magic_bytes
                .as_slice()
                .try_into()
                .map_err(|_| ProtoError::Corrupt("hello magic is not 8 bytes".into()))?;
            Msg::Hello {
                magic,
                schema: d.u32().map_err(corrupt)?,
            }
        }
        TAG_CELL => Msg::Cell {
            index: d.u64().map_err(corrupt)?,
            attempt: d.u32().map_err(corrupt)?,
            payload: d.bytes().map_err(corrupt)?,
        },
        TAG_DONE => Msg::Done {
            index: d.u64().map_err(corrupt)?,
            payload: d.bytes().map_err(corrupt)?,
        },
        TAG_FAIL => {
            let index = d.u64().map_err(corrupt)?;
            let class = class_from_code(d.u8().map_err(corrupt)?)
                .ok_or_else(|| ProtoError::Corrupt("unknown failure class".into()))?;
            let message = d.str().map_err(corrupt)?;
            let trap = match d.u8().map_err(corrupt)? {
                0 => None,
                1 => Some(TrapInfo {
                    pc: d.u64().map_err(corrupt)?,
                    func: d.str().map_err(corrupt)?,
                }),
                _ => return Err(ProtoError::Corrupt("bad trap flag".into())),
            };
            Msg::Fail {
                index,
                class,
                message,
                trap,
            }
        }
        TAG_SHUTDOWN => Msg::Shutdown,
        TAG_SUBMIT => Msg::Submit {
            job: d.u64().map_err(corrupt)?,
            payload: d.bytes().map_err(corrupt)?,
        },
        TAG_SAMPLE => Msg::Sample {
            job: d.u64().map_err(corrupt)?,
            payload: d.bytes().map_err(corrupt)?,
        },
        TAG_REGION => Msg::Region {
            job: d.u64().map_err(corrupt)?,
            payload: d.bytes().map_err(corrupt)?,
        },
        TAG_CELL_DONE => Msg::CellDone {
            job: d.u64().map_err(corrupt)?,
            index: d.u64().map_err(corrupt)?,
            payload: d.bytes().map_err(corrupt)?,
        },
        TAG_CANCEL => Msg::Cancel {
            job: d.u64().map_err(corrupt)?,
        },
        TAG_PROGRESS => Msg::Progress {
            job: d.u64().map_err(corrupt)?,
            done: d.u64().map_err(corrupt)?,
            total: d.u64().map_err(corrupt)?,
        },
        TAG_JOB_STATUS => Msg::JobStatus {
            job: d.u64().map_err(corrupt)?,
            code: d.u32().map_err(corrupt)?,
            message: d.str().map_err(corrupt)?,
            payload: d.bytes().map_err(corrupt)?,
        },
        other => return Err(ProtoError::Corrupt(format!("unknown tag {other}"))),
    };
    d.finish().map_err(corrupt)?;
    Ok(msg)
}

/// Encode `msg` as one complete frame (header + CRC + body).
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let body = encode_body(msg);
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Write one framed message and flush it (frames must reach the peer
/// promptly; both sides block on reads between messages).
///
/// # Errors
/// Transport I/O failures.
pub fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Read exactly `buf.len()` bytes. Distinguishes EOF before the first
/// byte (`Ok(false)`) from EOF mid-buffer (corrupt).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ProtoError::Corrupt(format!(
                    "stream ended {filled} byte(s) into a {}-byte read",
                    buf.len()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one framed message.
///
/// # Errors
/// [`ProtoError::Eof`] on a clean end-of-stream at a frame boundary;
/// [`ProtoError::Corrupt`] for torn frames, CRC mismatches, oversized
/// lengths, or malformed bodies; [`ProtoError::Io`] for transport
/// failures.
pub fn read_msg<R: Read>(r: &mut R) -> Result<Msg, ProtoError> {
    let mut header = [0u8; 8];
    if !read_exact_or_eof(r, &mut header)? {
        return Err(ProtoError::Eof);
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(ProtoError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut body = vec![0u8; len];
    if !read_exact_or_eof(r, &mut body)? {
        return Err(ProtoError::Corrupt(
            "stream ended after a frame header".into(),
        ));
    }
    if crc32(&body) != crc {
        return Err(ProtoError::Corrupt("crc mismatch".into()));
    }
    decode_body(&body)
}

/// A cell failure a worker reports back over the wire.
#[derive(Debug)]
pub struct WorkerFailure {
    pub class: FailureClass,
    pub message: String,
    pub trap: Option<TrapInfo>,
}

/// The worker side of the protocol: write [`Msg::Hello`], then serve
/// [`Msg::Cell`] requests through `handler` until [`Msg::Shutdown`] or
/// the supervisor closes the stream. The handler receives
/// `(index, attempt, payload)` and returns the result payload or a
/// [`WorkerFailure`] to ship back.
///
/// Failpoint `ipc.frame` (keyed by [`fault_key`]) corrupts the response
/// frame: most kinds flip a body byte in place (the supervisor sees a
/// CRC mismatch); [`mperf_fault::FaultKind::Trap`] truncates the frame
/// and ends the stream (the supervisor sees a torn frame, then EOF).
///
/// # Errors
/// Protocol violations from the supervisor side and transport failures;
/// a clean shutdown (message or EOF) returns `Ok`.
pub fn serve_worker<R, W, H>(mut r: R, mut w: W, mut handler: H) -> Result<(), ProtoError>
where
    R: Read,
    W: Write,
    H: FnMut(u64, u32, &[u8]) -> Result<Vec<u8>, WorkerFailure>,
{
    write_msg(&mut w, &Msg::hello()).map_err(ProtoError::Io)?;
    loop {
        match read_msg(&mut r) {
            Ok(Msg::Cell {
                index,
                attempt,
                payload,
            }) => {
                let reply = match handler(index, attempt, &payload) {
                    Ok(p) => Msg::Done { index, payload: p },
                    Err(f) => Msg::Fail {
                        index,
                        class: f.class,
                        message: f.message,
                        trap: f.trap,
                    },
                };
                let mut frame = encode_frame(&reply);
                let mut truncate = false;
                if let Some(kind) = mperf_fault::hit("ipc.frame", fault_key(index, attempt)) {
                    match kind {
                        mperf_fault::FaultKind::Trap => truncate = true,
                        _ => {
                            // Flip a body byte: the header survives, the
                            // CRC no longer matches.
                            let mid = 8 + (frame.len() - 8) / 2;
                            frame[mid] ^= 0xff;
                        }
                    }
                }
                if truncate {
                    let cut = 8 + (frame.len() - 8) / 2;
                    w.write_all(&frame[..cut]).map_err(ProtoError::Io)?;
                    w.flush().map_err(ProtoError::Io)?;
                    // A torn frame ends the stream: dying mid-write is
                    // exactly what this failpoint simulates.
                    return Ok(());
                }
                w.write_all(&frame).map_err(ProtoError::Io)?;
                w.flush().map_err(ProtoError::Io)?;
            }
            Ok(Msg::Shutdown) | Err(ProtoError::Eof) => return Ok(()),
            Ok(other) => {
                return Err(ProtoError::Corrupt(format!(
                    "unexpected message from supervisor: {other:?}"
                )))
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let frame = encode_frame(&msg);
        let mut cursor = &frame[..];
        let back = read_msg(&mut cursor).unwrap();
        assert_eq!(back, msg);
        assert_eq!(encode_frame(&back), frame, "re-encode is byte-identical");
    }

    #[test]
    fn all_messages_roundtrip_byte_identically() {
        roundtrip(Msg::hello());
        roundtrip(Msg::Cell {
            index: 7,
            attempt: 2,
            payload: vec![1, 2, 3],
        });
        roundtrip(Msg::Done {
            index: u64::MAX,
            payload: Vec::new(),
        });
        for class in [
            FailureClass::Transient,
            FailureClass::Permanent,
            FailureClass::Fatal,
        ] {
            roundtrip(Msg::Fail {
                index: 9,
                class,
                message: "phase trapped: ÷0".into(),
                trap: Some(TrapInfo {
                    pc: 0x1234,
                    func: "triad".into(),
                }),
            });
        }
        roundtrip(Msg::Fail {
            index: 0,
            class: FailureClass::Permanent,
            message: String::new(),
            trap: None,
        });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::Submit {
            job: 1,
            payload: vec![0xab; 17],
        });
        roundtrip(Msg::Sample {
            job: 2,
            payload: vec![1, 2, 3, 4],
        });
        roundtrip(Msg::Region {
            job: 3,
            payload: Vec::new(),
        });
        roundtrip(Msg::CellDone {
            job: 4,
            index: 11,
            payload: vec![0; 64],
        });
        roundtrip(Msg::Cancel { job: u64::MAX });
        roundtrip(Msg::Progress {
            job: 6,
            done: 3,
            total: 4,
        });
        for code in [CODE_CANCELLED, CODE_REJECTED, CODE_TIMEOUT, CODE_STALLED] {
            roundtrip(Msg::JobStatus {
                job: 5,
                code,
                message: "cancelled by client".into(),
                payload: vec![9, 9],
            });
        }
    }

    #[test]
    fn multiple_frames_stream_back_to_back() {
        let msgs = [
            Msg::hello(),
            Msg::Cell {
                index: 0,
                attempt: 0,
                payload: vec![9],
            },
            Msg::Shutdown,
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        let mut cursor = &stream[..];
        for m in &msgs {
            assert_eq!(&read_msg(&mut cursor).unwrap(), m);
        }
        assert!(matches!(read_msg(&mut cursor), Err(ProtoError::Eof)));
    }

    #[test]
    fn corruption_is_detected_not_decoded() {
        let frame = encode_frame(&Msg::Done {
            index: 3,
            payload: vec![5; 32],
        });
        // Flip every body byte position in turn: always a CRC mismatch
        // (or malformed body), never a silently different message.
        for i in 8..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xff;
            let mut cursor = &bad[..];
            assert!(
                matches!(read_msg(&mut cursor), Err(ProtoError::Corrupt(_))),
                "flipped byte {i} must be detected"
            );
        }
    }

    #[test]
    fn torn_frames_and_oversized_lengths_are_corrupt() {
        let frame = encode_frame(&Msg::Shutdown);
        for cut in 1..frame.len() {
            let mut cursor = &frame[..cut];
            assert!(
                matches!(read_msg(&mut cursor), Err(ProtoError::Corrupt(_))),
                "cut at {cut}"
            );
        }
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&[0u8; 4]);
        let mut cursor = &huge[..];
        let err = read_msg(&mut cursor).unwrap_err();
        assert!(
            matches!(&err, ProtoError::Corrupt(m) if m.contains("cap")),
            "{err}"
        );
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_corrupt() {
        let mut body = encode_body(&Msg::Shutdown);
        body[0] = 99;
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        let mut cursor = &frame[..];
        assert!(matches!(read_msg(&mut cursor), Err(ProtoError::Corrupt(_))));

        let mut body = encode_body(&Msg::Shutdown);
        body.push(0);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        let mut cursor = &frame[..];
        assert!(matches!(read_msg(&mut cursor), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn fault_key_separates_attempts_and_cells() {
        assert_eq!(fault_key(3, 0), 3);
        assert_ne!(fault_key(3, 0), fault_key(3, 1));
        assert_ne!(fault_key(3, 1), fault_key(4, 1));
        assert_eq!(fault_key(3, 1) & 0xffff_ffff, 3);
    }

    #[test]
    fn serve_worker_answers_cells_until_shutdown() {
        let mut input = Vec::new();
        input.extend_from_slice(&encode_frame(&Msg::Cell {
            index: 4,
            attempt: 1,
            payload: vec![10, 20],
        }));
        input.extend_from_slice(&encode_frame(&Msg::Shutdown));
        let mut out = Vec::new();
        serve_worker(&input[..], &mut out, |index, attempt, payload| {
            assert_eq!((index, attempt), (4, 1));
            Ok(payload.iter().map(|b| b * 2).collect())
        })
        .unwrap();
        let mut cursor = &out[..];
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::hello());
        assert_eq!(
            read_msg(&mut cursor).unwrap(),
            Msg::Done {
                index: 4,
                payload: vec![20, 40]
            }
        );
        assert!(matches!(read_msg(&mut cursor), Err(ProtoError::Eof)));
    }

    #[test]
    fn serve_worker_ships_failures_with_trap_info() {
        let input = encode_frame(&Msg::Cell {
            index: 2,
            attempt: 0,
            payload: Vec::new(),
        });
        let mut out = Vec::new();
        serve_worker(&input[..], &mut out, |_, _, _| {
            Err(WorkerFailure {
                class: FailureClass::Permanent,
                message: "baseline phase trapped".into(),
                trap: Some(TrapInfo {
                    pc: 0x40,
                    func: "boom".into(),
                }),
            })
        })
        .unwrap();
        let mut cursor = &out[..];
        assert_eq!(read_msg(&mut cursor).unwrap(), Msg::hello());
        match read_msg(&mut cursor).unwrap() {
            Msg::Fail {
                index,
                class,
                message,
                trap,
            } => {
                assert_eq!(index, 2);
                assert_eq!(class, FailureClass::Permanent);
                assert!(message.contains("trapped"));
                assert_eq!(trap.unwrap().func, "boom");
            }
            other => panic!("expected Fail, got {other:?}"),
        }
    }
}
