//! Append-only checkpoint journal for resumable sweeps.
//!
//! ## Format
//!
//! An 8-byte magic (`MPSWJRN1`) followed by self-delimiting frames:
//!
//! ```text
//! [payload len: u32 LE][crc32(key ‖ payload): u32 LE][key: u64 LE][payload]
//! ```
//!
//! `key` is a content hash of whatever configuration produced the
//! payload (the sweep layer hashes platform, workload, phase and
//! `ExecConfig`), so a journal written by one configuration can never
//! satisfy a resume under another — the key simply misses.
//!
//! ## Crash safety
//!
//! Appends go straight to the file descriptor; a crash mid-append
//! leaves a torn final frame. On open, the journal parses frames
//! front-to-back and stops at the first frame that is truncated or
//! fails its CRC; everything after that point is discarded by
//! atomically rewriting the valid prefix (tempfile + rename), so a
//! recovered journal is always well-formed and appendable. Corruption
//! is therefore prefix-recoverable: the journal is append-only, and a
//! bad frame invalidates its suffix, never its prefix.
//!
//! ## Process hygiene
//!
//! In a sharded sweep the *supervisor alone* appends: worker children
//! never see the journal fd. `std` opens files with `O_CLOEXEC` on
//! Linux (asserted by test), so the append handle cannot leak across
//! `exec` into spawned workers — a killed worker can tear at most the
//! supervisor's own in-flight frame, which open-time recovery already
//! handles.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::wire::crc32;

/// File magic: `MPSW` journal, format version 1.
pub const MAGIC: &[u8; 8] = b"MPSWJRN1";

/// Why a journal could not be opened or written.
#[derive(Debug)]
pub enum JournalError {
    Io(io::Error),
    /// The file exists but does not start with the journal magic —
    /// refused rather than truncated, since it is probably not ours.
    NotAJournal {
        path: PathBuf,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::NotAJournal { path } => {
                write!(f, "{} is not a sweep journal (bad magic)", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// An open journal: the records that survived recovery plus an append
/// handle.
#[derive(Debug)]
pub struct Journal {
    file: fs::File,
    path: PathBuf,
    entries: Vec<(u64, Vec<u8>)>,
    truncated_bytes: usize,
}

impl Journal {
    /// Opens `path`, creating an empty journal if absent, and recovers
    /// from a torn tail (see the module docs).
    ///
    /// # Errors
    /// I/O failures, or [`JournalError::NotAJournal`] for an existing
    /// non-empty file without the magic.
    pub fn open(path: &Path) -> Result<Journal, JournalError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if !bytes.is_empty() && (bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC[..]) {
            return Err(JournalError::NotAJournal {
                path: path.to_path_buf(),
            });
        }
        let body = bytes.get(MAGIC.len()..).unwrap_or(&[]);
        let (entries, valid_body_len) = parse_frames(body);
        let valid_len = MAGIC.len() + valid_body_len;
        let truncated_bytes = bytes.len().saturating_sub(valid_len);
        if bytes.is_empty() {
            write_atomic(path, MAGIC)?;
        } else if truncated_bytes > 0 {
            write_atomic(path, &bytes[..valid_len])?;
        }
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            entries,
            truncated_bytes,
        })
    }

    /// Records recovered at open plus those appended since, in append
    /// order. Later records with the same key supersede earlier ones
    /// (the journal itself does not deduplicate).
    pub fn entries(&self) -> &[(u64, Vec<u8>)] {
        &self.entries
    }

    /// The latest payload appended under `key`, if any.
    pub fn lookup(&self, key: u64) -> Option<&[u8]> {
        self.entries
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, p)| p.as_slice())
    }

    /// Bytes of torn/corrupt tail discarded when the journal was
    /// opened (0 for a clean open).
    pub fn truncated_bytes(&self) -> usize {
        self.truncated_bytes
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and pushes it straight to the OS.
    ///
    /// # Errors
    /// I/O failures (including injected ones: this is the
    /// `sweep.journal` failpoint, keyed by `key`).
    pub fn append(&mut self, key: u64, payload: &[u8]) -> Result<(), JournalError> {
        if let Some(kind) = mperf_fault::hit("sweep.journal", key) {
            match kind {
                mperf_fault::FaultKind::Panic => mperf_fault::injected_panic("sweep.journal", key),
                _ => {
                    return Err(JournalError::Io(io::Error::other(
                        "injected transient i/o failure",
                    )))
                }
            }
        }
        let mut frame = Vec::with_capacity(16 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&key.to_le_bytes());
        body.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.entries.push((key, payload.to_vec()));
        Ok(())
    }
}

/// Parses frames front-to-back; returns the decoded records and the
/// byte length of the valid prefix (everything past it is torn or
/// corrupt).
fn parse_frames(buf: &[u8]) -> (Vec<(u64, Vec<u8>)>, usize) {
    let mut entries = Vec::new();
    let mut pos = 0;
    while let Some(header) = buf.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(body) = buf.get(pos + 8..pos + 8 + 8 + len) else {
            break;
        };
        if crc32(body) != crc {
            break;
        }
        let key = u64::from_le_bytes(body[..8].try_into().unwrap());
        entries.push((key, body[8..].to_vec()));
        pos += 16 + len;
    }
    (entries, pos)
}

/// Atomic whole-file replace: write a sibling tempfile, flush, rename
/// over the target (rename is atomic on the same filesystem).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "journal".to_string());
    let tmp = path.with_file_name(format!("{name}.tmp"));
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mperf-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    /// The sharded-sweep hygiene contract: the append fd is
    /// close-on-exec, so spawned `sweep-worker` children can never
    /// inherit (and corrupt) the supervisor's journal handle.
    #[cfg(target_os = "linux")]
    #[test]
    fn append_fd_is_close_on_exec() {
        use std::os::fd::AsRawFd;
        let path = tmp_path("cloexec");
        let j = Journal::open(&path).unwrap();
        let fdinfo =
            fs::read_to_string(format!("/proc/self/fdinfo/{}", j.file.as_raw_fd())).unwrap();
        let flags = fdinfo
            .lines()
            .find_map(|l| l.strip_prefix("flags:"))
            .expect("fdinfo flags line")
            .trim();
        let flags = u32::from_str_radix(flags, 8).expect("octal flags");
        assert_ne!(flags & libc_o_cloexec(), 0, "flags {flags:o}");
        let _ = fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    fn libc_o_cloexec() -> u32 {
        0o2000000
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmp_path("roundtrip");
        {
            let mut j = Journal::open(&path).unwrap();
            assert!(j.entries().is_empty());
            j.append(1, b"first").unwrap();
            j.append(2, b"second").unwrap();
            j.append(1, b"first-updated").unwrap();
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.truncated_bytes(), 0);
        assert_eq!(j.entries().len(), 3);
        assert_eq!(j.lookup(1), Some(&b"first-updated"[..]));
        assert_eq!(j.lookup(2), Some(&b"second"[..]));
        assert_eq!(j.lookup(3), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let path = tmp_path("torn");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(10, b"aaaa").unwrap();
            j.append(20, b"bbbbbbbb").unwrap();
        }
        let full = fs::read(&path).unwrap();
        let frame1_end = MAGIC.len() + 16 + 4;
        // Cut the file everywhere inside the second frame: recovery
        // must keep exactly the first record and leave an appendable
        // journal.
        for cut in frame1_end..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let mut j = Journal::open(&path).unwrap();
            assert_eq!(j.truncated_bytes(), cut - frame1_end, "cut={cut}");
            assert_eq!(j.entries(), &[(10, b"aaaa".to_vec())], "cut={cut}");
            j.append(30, b"cc").unwrap();
            let j2 = Journal::open(&path).unwrap();
            assert_eq!(j2.entries().len(), 2, "cut={cut}");
            assert_eq!(j2.lookup(30), Some(&b"cc"[..]));
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_frame_invalidates_its_suffix() {
        let path = tmp_path("corrupt");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(1, b"good").unwrap();
            j.append(2, b"flip").unwrap();
            j.append(3, b"tail").unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte inside the second frame.
        let second_payload = MAGIC.len() + (16 + 4) + 16;
        bytes[second_payload] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.entries(), &[(1, b"good".to_vec())]);
        assert!(j.truncated_bytes() > 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_refused() {
        let path = tmp_path("foreign");
        fs::write(&path, b"definitely not a journal").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(matches!(err, JournalError::NotAJournal { .. }), "{err}");
        // And untouched.
        assert_eq!(fs::read(&path).unwrap(), b"definitely not a journal");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_existing_file_becomes_a_fresh_journal() {
        let path = tmp_path("empty");
        fs::write(&path, b"").unwrap();
        let mut j = Journal::open(&path).unwrap();
        j.append(5, b"x").unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.entries(), &[(5, b"x".to_vec())]);
        let _ = fs::remove_file(&path);
    }
}
