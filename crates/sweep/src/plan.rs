//! Sweep vocabulary: the two-phase enumeration and the per-workload
//! shared decode.
//!
//! The serial order a sweep's output is pinned to is cell-major (the
//! caller's cell list order), then [`Phase::BOTH`] within a cell
//! (baseline before instrumented) — the order the pre-sweep code ran
//! its loops in, so parallel output stays byte-comparable to
//! historical serial output.

use mperf_ir::Module;
use mperf_sim::Core;
use mperf_vm::{decode_module, DecodedModule, Vm};
use std::sync::Arc;

/// One phase of the paper's §4.3 two-phase roofline protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Instrumentation disabled: region begin/end timing only.
    Baseline,
    /// Instrumented clones run; per-block counters accumulate.
    Instrumented,
}

impl Phase {
    /// Both phases, in serial (correlation) order.
    pub const BOTH: [Phase; 2] = [Phase::Baseline, Phase::Instrumented];

    /// What `mperf.is_instrumented` returns during this phase.
    pub fn instrumented(self) -> bool {
        matches!(self, Phase::Instrumented)
    }
}

/// A compiled workload bundled with its one shared decode: the unit a
/// sweep fans out. Decoding happens exactly once, up front, on the
/// calling thread; every job VM — on any worker — shares the result.
#[derive(Debug, Clone)]
pub struct SharedModule {
    pub module: Arc<Module>,
    pub decoded: Arc<DecodedModule>,
}

impl SharedModule {
    /// Decode `module` once and take shared ownership of both forms.
    pub fn new(module: Module) -> SharedModule {
        let decoded = decode_module(&module);
        SharedModule {
            module: Arc::new(module),
            decoded,
        }
    }

    /// A fresh VM over this workload on `core`, with the shared decode
    /// pre-installed (the worker never decodes).
    pub fn vm(&self, core: Core) -> Vm<'_> {
        let mut vm = Vm::new(&self.module, core);
        vm.set_decoded(Arc::clone(&self.decoded));
        vm
    }

    /// Like [`SharedModule::vm`] with a custom guest-memory size.
    pub fn vm_with_memory(&self, core: Core, mem_bytes: usize) -> Vm<'_> {
        let mut vm = Vm::with_memory(&self.module, core, mem_bytes);
        vm.set_decoded(Arc::clone(&self.decoded));
        vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mperf_sim::PlatformSpec;
    use mperf_vm::Value;

    #[test]
    fn phase_order_is_baseline_then_instrumented() {
        assert_eq!(Phase::BOTH, [Phase::Baseline, Phase::Instrumented]);
        assert!(!Phase::Baseline.instrumented());
        assert!(Phase::Instrumented.instrumented());
    }

    #[test]
    fn shared_module_vms_share_one_decode() {
        let module = mperf_ir::compile("t", "fn f(n: i64) -> i64 { return n * 2 + 1; }").unwrap();
        let shared = SharedModule::new(module);
        let threads: Vec<_> = crate::queue::run_jobs(vec![3i64, 4, 5], 3, |_, n| {
            let mut vm = shared.vm(Core::new(PlatformSpec::x60()));
            vm.call("f", &[Value::I64(n)]).unwrap()
        });
        assert_eq!(
            threads,
            vec![
                vec![Value::I64(7)],
                vec![Value::I64(9)],
                vec![Value::I64(11)]
            ]
        );
        // Only the up-front decode plus the two Arc clones inside the
        // jobs should ever have existed; by now the workers dropped
        // theirs again.
        assert_eq!(Arc::strong_count(&shared.decoded), 1);
    }
}
