//! Supervised job execution: panic isolation, retry with quarantine,
//! and cooperative cancellation on fatal errors.
//!
//! [`run_jobs_supervised`] is the fault-tolerant sibling of
//! [`crate::try_run_jobs`]: instead of surfacing the earliest error and
//! discarding everything else, it isolates each job behind
//! `catch_unwind`, classifies failures ([`FailureClass`]), retries
//! transient ones with a deterministic backoff, quarantines jobs that
//! keep failing, and returns a [`SweepReport`] carrying every surviving
//! result plus a structured account of what went wrong.
//!
//! Determinism contract: a job's result lands at its job index, so the
//! `results` vector of a supervised run is bit-identical to a serial
//! run of the same jobs at any worker count — faults in one cell never
//! perturb the values computed by healthy cells. Retry backoff is
//! counted in queue pops, not wall-clock time, so scheduling stays
//! reproducible under test.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How a job failure should be treated by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Worth retrying: the failure is expected to go away (I/O hiccup,
    /// injected fuel exhaustion). Retried up to
    /// [`RetryPolicy::max_attempts`], then quarantined.
    Transient,
    /// Deterministic: retrying would reproduce it. Fails immediately,
    /// other jobs continue.
    Permanent,
    /// The sweep itself can no longer be trusted (journal write failed,
    /// environment gone). Cancels all still-queued jobs.
    Fatal,
}

/// Retry budget and backoff for [`run_jobs_supervised`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per job (first run included). `1` disables
    /// retries entirely.
    pub max_attempts: u32,
    /// Whether a panicking job is retried like a transient failure
    /// before being quarantined. Panics never cancel other jobs either
    /// way.
    pub retry_panics: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            retry_panics: true,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based retries), counted
    /// in queue pops rather than wall-clock time: a delayed entry is
    /// skipped (and its delay decremented) that many times before it
    /// runs again. Exponential, capped.
    pub fn backoff_pops(&self, attempt: u32) -> u32 {
        1u32 << attempt.min(6)
    }
}

/// Why a job ultimately failed.
#[derive(Debug)]
pub enum CellError<E> {
    /// The job panicked; the payload is the panic message.
    Panicked { payload: String },
    /// The job returned an error.
    Failed(E),
}

impl<E: fmt::Display> fmt::Display for CellError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Panicked { payload } => write!(f, "panicked: {payload}"),
            CellError::Failed(e) => write!(f, "{e}"),
        }
    }
}

/// A job the supervisor gave up on.
#[derive(Debug)]
pub struct CellFailure<E> {
    /// Job index (slot in [`SweepReport::results`]).
    pub index: usize,
    /// Attempts consumed (1 = failed on first run, no retry granted).
    pub attempts: u32,
    /// True when the job exhausted its retry budget (it failed
    /// repeatedly); false when its failure class never allowed a retry.
    pub quarantined: bool,
    pub error: CellError<E>,
}

/// Outcome of a supervised run. `results[i]` is job `i`'s value —
/// `None` when it failed or was skipped; completed slots are
/// bit-identical to a serial run of the same jobs.
#[derive(Debug)]
pub struct SweepReport<R, E> {
    pub results: Vec<Option<R>>,
    /// Jobs that ultimately failed, sorted by index.
    pub failed: Vec<CellFailure<E>>,
    /// Every granted retry as `(index, attempt_that_failed)` (0-based
    /// attempt), in index order.
    pub retried: Vec<(usize, u32)>,
    /// Jobs cancelled before they ever ran (a fatal failure aborted the
    /// sweep), sorted by index.
    pub skipped: Vec<usize>,
}

impl<R, E> SweepReport<R, E> {
    /// Number of jobs that produced a result.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// True when every job produced a result.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }
}

/// Per-attempt context handed to a supervised job.
pub struct JobCtx<'a> {
    /// 0-based attempt number (0 = first run).
    pub attempt: u32,
    cancel: &'a AtomicBool,
}

impl JobCtx<'_> {
    /// True once a fatal failure has cancelled the sweep; long-running
    /// jobs may poll this and bail early (their result is discarded
    /// only if they return an error).
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }
}

/// Queue entry: job index, attempt number, and remaining backoff pops.
#[derive(Clone, Copy)]
struct Entry {
    idx: usize,
    attempt: u32,
    delay: u32,
}

/// Run `jobs` under at most `workers` threads with panic isolation,
/// retry, quarantine, and fatal-error cancellation. Jobs are borrowed
/// (`&J`) so a retried job re-runs against identical input.
///
/// - A panic in a job is caught and recorded; it never unwinds the
///   caller and never disturbs other jobs.
/// - `classify` maps a job error onto its [`FailureClass`];
///   [`FailureClass::Fatal`] flips a shared cancellation flag that
///   stops still-queued jobs from starting (they are reported in
///   [`SweepReport::skipped`]).
/// - `workers <= 1` runs strictly serially on the calling thread (the
///   reference order the determinism tests compare against).
pub fn run_jobs_supervised<J, R, E, F, C>(
    jobs: &[J],
    workers: usize,
    policy: &RetryPolicy,
    run: F,
    classify: C,
) -> SweepReport<R, E>
where
    J: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &J, &JobCtx) -> Result<R, E> + Sync,
    C: Fn(&E) -> FailureClass + Sync,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    let max_attempts = policy.max_attempts.max(1);

    let queue: Mutex<VecDeque<Entry>> = Mutex::new(
        (0..n)
            .map(|idx| Entry {
                idx,
                attempt: 0,
                delay: 0,
            })
            .collect(),
    );
    let cancel = AtomicBool::new(false);
    struct State<R, E> {
        results: Vec<Option<R>>,
        failed: Vec<CellFailure<E>>,
        retried: Vec<(usize, u32)>,
    }
    let state: Mutex<State<R, E>> = Mutex::new(State {
        results: {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, || None);
            v
        },
        failed: Vec::new(),
        retried: Vec::new(),
    });

    let worker_loop = |_worker: usize| {
        loop {
            if cancel.load(Ordering::Acquire) {
                break;
            }
            let entry = {
                let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                match q.pop_front() {
                    None => break,
                    Some(mut e) if e.delay > 0 => {
                        // Backoff: burn one pop, requeue at the back.
                        e.delay -= 1;
                        q.push_back(e);
                        continue;
                    }
                    Some(e) => e,
                }
            };
            let ctx = JobCtx {
                attempt: entry.attempt,
                cancel: &cancel,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| run(entry.idx, &jobs[entry.idx], &ctx)));
            let attempts = entry.attempt + 1;
            // Decide: record a result, grant a retry, or give up.
            let (error, quarantine_on_exhaust) = match outcome {
                Ok(Ok(r)) => {
                    let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                    st.results[entry.idx] = Some(r);
                    continue;
                }
                Ok(Err(e)) => match classify(&e) {
                    FailureClass::Fatal => {
                        cancel.store(true, Ordering::Release);
                        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                        st.failed.push(CellFailure {
                            index: entry.idx,
                            attempts,
                            quarantined: false,
                            error: CellError::Failed(e),
                        });
                        continue;
                    }
                    FailureClass::Permanent => (CellError::Failed(e), false),
                    FailureClass::Transient => (CellError::Failed(e), true),
                },
                Err(panic) => (
                    CellError::Panicked {
                        // `&*`: downcast the payload, not the box.
                        payload: panic_payload(&*panic),
                    },
                    policy.retry_panics,
                ),
            };
            if quarantine_on_exhaust && attempts < max_attempts {
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.retried.push((entry.idx, entry.attempt));
                drop(st);
                queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(Entry {
                        idx: entry.idx,
                        attempt: entry.attempt + 1,
                        delay: policy.backoff_pops(entry.attempt + 1),
                    });
            } else {
                let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
                st.failed.push(CellFailure {
                    index: entry.idx,
                    attempts,
                    quarantined: quarantine_on_exhaust,
                    error,
                });
            }
        }
    };

    if workers == 1 {
        worker_loop(0);
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| s.spawn(move || worker_loop(w)))
                .collect();
            for h in handles {
                // Worker closures catch job panics; a join error would
                // mean the supervisor itself is broken.
                h.join().expect("supervisor worker");
            }
        });
    }

    let State {
        results,
        mut failed,
        mut retried,
    } = state.into_inner().unwrap_or_else(|e| e.into_inner());
    failed.sort_by_key(|f| f.index);
    retried.sort_unstable();
    let mut skipped: Vec<usize> = queue
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|e| e.idx)
        .collect();
    skipped.sort_unstable();
    SweepReport {
        results,
        failed,
        retried,
        skipped,
    }
}

/// Best-effort render of a panic payload (the `&str`/`String` payloads
/// `panic!` produces; anything else gets a placeholder).
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            retry_panics: false,
        }
    }

    #[test]
    fn all_healthy_jobs_match_serial_at_any_worker_count() {
        let jobs: Vec<u64> = (0..23).collect();
        let serial = run_jobs_supervised(
            &jobs,
            1,
            &RetryPolicy::default(),
            |_, j, _| Ok::<u64, String>(j * 3 + 1),
            |_| FailureClass::Permanent,
        );
        for workers in [2, 4, 8] {
            let par = run_jobs_supervised(
                &jobs,
                workers,
                &RetryPolicy::default(),
                |_, j, _| Ok::<u64, String>(j * 3 + 1),
                |_| FailureClass::Permanent,
            );
            assert_eq!(par.results, serial.results, "workers={workers}");
            assert!(par.all_ok());
        }
    }

    #[test]
    fn panics_are_isolated_and_other_results_are_bit_identical() {
        let jobs: Vec<u64> = (0..16).collect();
        for workers in [1, 4] {
            let report = run_jobs_supervised(
                &jobs,
                workers,
                &no_retry(),
                |_, j, _| {
                    if *j == 5 || *j == 11 {
                        panic!("injected {j}");
                    }
                    Ok::<u64, String>(j + 100)
                },
                |_| FailureClass::Permanent,
            );
            for (i, r) in report.results.iter().enumerate() {
                if i == 5 || i == 11 {
                    assert_eq!(*r, None);
                } else {
                    assert_eq!(*r, Some(i as u64 + 100), "workers={workers}");
                }
            }
            assert_eq!(report.failed.len(), 2);
            assert_eq!(report.failed[0].index, 5);
            assert!(
                matches!(&report.failed[0].error, CellError::Panicked { payload } if payload.contains("injected 5"))
            );
            assert_eq!(report.failed[1].index, 11);
            assert!(report.skipped.is_empty(), "panics are not fatal");
        }
    }

    #[test]
    fn transient_failures_retry_then_succeed() {
        let attempts_seen = AtomicUsize::new(0);
        let jobs = [0u64];
        let report = run_jobs_supervised(
            &jobs,
            1,
            &RetryPolicy::default(),
            |_, _, ctx| {
                attempts_seen.fetch_add(1, Ordering::Relaxed);
                if ctx.attempt < 2 {
                    Err("flaky".to_string())
                } else {
                    Ok(7u64)
                }
            },
            |_| FailureClass::Transient,
        );
        assert_eq!(report.results, vec![Some(7)]);
        assert_eq!(attempts_seen.load(Ordering::Relaxed), 3);
        assert_eq!(report.retried, vec![(0, 0), (0, 1)]);
        assert!(report.failed.is_empty());
    }

    #[test]
    fn repeatedly_failing_jobs_are_quarantined() {
        let jobs = [0u64];
        let report = run_jobs_supervised(
            &jobs,
            1,
            &RetryPolicy::default(),
            |_, _, _| Err::<u64, _>("always down".to_string()),
            |_| FailureClass::Transient,
        );
        assert_eq!(report.results, vec![None]);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].attempts, 3);
        assert!(report.failed[0].quarantined);
        assert_eq!(report.retried.len(), 2);
    }

    #[test]
    fn permanent_failures_do_not_retry() {
        let runs = AtomicUsize::new(0);
        let jobs = [0u64];
        let report = run_jobs_supervised(
            &jobs,
            1,
            &RetryPolicy::default(),
            |_, _, _| {
                runs.fetch_add(1, Ordering::Relaxed);
                Err::<u64, _>("deterministic".to_string())
            },
            |_| FailureClass::Permanent,
        );
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        assert!(!report.failed[0].quarantined);
        assert!(report.retried.is_empty());
    }

    #[test]
    fn fatal_failures_cancel_queued_jobs() {
        // Serial: job 2 is fatal, so jobs 3..8 never start.
        let ran = AtomicUsize::new(0);
        let jobs: Vec<u64> = (0..8).collect();
        let report = run_jobs_supervised(
            &jobs,
            1,
            &no_retry(),
            |_, j, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if *j == 2 {
                    Err("disk gone".to_string())
                } else {
                    Ok(*j)
                }
            },
            |_| FailureClass::Fatal,
        );
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        assert_eq!(report.skipped, vec![3, 4, 5, 6, 7]);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].index, 2);
        assert_eq!(report.completed(), 2);
    }

    #[test]
    fn fatal_cancellation_is_observable_from_job_ctx() {
        // Parallel shape of the same property, deterministic via the
        // ctx: job 0 fails fatally; every other job waits until it
        // observes the cancellation flag, so no later job can finish
        // before cancellation and the still-queued tail is skipped.
        let jobs: Vec<u64> = (0..32).collect();
        let report = run_jobs_supervised(
            &jobs,
            2,
            &no_retry(),
            |_, j, ctx| {
                if *j == 0 {
                    return Err("fatal".to_string());
                }
                while !ctx.cancelled() {
                    std::thread::yield_now();
                }
                Err::<u64, _>("cancelled".to_string())
            },
            |e| {
                if e == "fatal" {
                    FailureClass::Fatal
                } else {
                    FailureClass::Permanent
                }
            },
        );
        assert!(!report.skipped.is_empty(), "tail was cancelled");
        assert!(report.failed.iter().any(|f| f.index == 0));
        // Cancelled + failed + skipped covers every job.
        assert_eq!(report.failed.len() + report.skipped.len(), jobs.len());
    }

    #[test]
    fn backoff_is_counted_in_pops_not_time() {
        // One flaky job plus filler: the retried job must come back
        // after its backoff pops, with filler jobs unaffected.
        let jobs: Vec<u64> = (0..6).collect();
        let report = run_jobs_supervised(
            &jobs,
            1,
            &RetryPolicy::default(),
            |_, j, ctx| {
                if *j == 0 && ctx.attempt == 0 {
                    Err("flaky".to_string())
                } else {
                    Ok(*j * 2)
                }
            },
            |_| FailureClass::Transient,
        );
        assert_eq!(
            report.results,
            (0..6).map(|j| Some(j * 2)).collect::<Vec<_>>()
        );
        assert_eq!(report.retried, vec![(0, 0)]);
    }
}
