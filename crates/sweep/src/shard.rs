//! Multi-process shard supervisor: crash/hang-proof sweep execution.
//!
//! [`run_sharded`] dispatches opaque cell payloads to N worker
//! processes over the [`crate::proto`] framed protocol and survives
//! anything a worker can do:
//!
//! - **Crash** (nonzero exit, signal, unexpected EOF mid-protocol):
//!   the worker is killed/reaped and respawned, and its in-flight cell
//!   is requeued through the existing [`RetryPolicy`] attempt
//!   accounting.
//! - **Stall**: each in-flight cell has a deadline counted in
//!   *heartbeat ticks* — supervisor poll intervals in which no frame
//!   arrived — never wall-clock, so tests are deterministic. A cell
//!   past its deadline is treated exactly like a crash.
//! - **Corrupt or short frames**: a stream that has lost framing
//!   cannot be trusted again; the failure classifies as
//!   [`FailureClass::Transient`], burns an attempt, and the worker is
//!   killed and respawned rather than wedging the supervisor.
//! - **Poison cells** (crash-loop protection): a cell that kills its
//!   worker `max_attempts` times is quarantined and listed in
//!   [`ShardReport::poisoned`] while healthy cells keep flowing.
//! - **Fatal errors** (a worker-reported [`FailureClass::Fatal`], a
//!   result-sink failure, protocol version skew, or a spawn
//!   crash-loop) cancel still-queued cells across all shards.
//!
//! ## Determinism contract
//!
//! Results are collected **by cell index**: a completed slot in
//! [`ShardReport::results`] holds exactly the payload bytes the worker
//! produced for that cell, independent of shard count, dispatch order,
//! retries, or which worker incarnation ran it. Cost-ordered dispatch
//! (longest-known-first, index-stable among equals) shapes only the
//! *schedule*, never the results.

use crate::proto::{self, Msg, ProtoError};
use crate::supervise::{FailureClass, RetryPolicy};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// One unit of work: an opaque request payload plus a scheduling cost
/// hint (higher = dispatched earlier; e.g. last-known runtime from the
/// journal, falling back to module size).
#[derive(Debug, Clone)]
pub struct ShardCell {
    pub payload: Vec<u8>,
    pub cost: u64,
}

/// Supervisor tuning.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Worker process count (clamped to `1..=cells`).
    pub shards: usize,
    /// Retry/quarantine budget shared with the in-process supervisor.
    pub policy: RetryPolicy,
    /// Per-cell deadline in heartbeat ticks (poll intervals with no
    /// frame from any worker). Also bounds the handshake.
    pub deadline_ticks: u32,
    /// Wall-clock length of one heartbeat tick. Only the tick *count*
    /// enters supervision decisions, keeping them deterministic.
    pub tick: Duration,
}

impl Default for ShardOptions {
    fn default() -> ShardOptions {
        ShardOptions {
            shards: 2,
            policy: RetryPolicy::default(),
            deadline_ticks: 600,
            tick: Duration::from_millis(50),
        }
    }
}

/// Why a cell failed under the shard supervisor.
#[derive(Debug)]
pub enum ShardCellError {
    /// The worker executed the cell and reported a structured failure;
    /// [`FailureClass`] and the trap site survived the process
    /// boundary.
    Remote {
        class: FailureClass,
        message: String,
        trap: Option<mperf_vm::TrapInfo>,
    },
    /// The worker died (exit, signal, or unexpected EOF) while this
    /// cell was in flight.
    WorkerCrash { detail: String },
    /// No frame arrived within the per-cell deadline.
    WorkerStall { ticks: u32 },
    /// The response stream lost framing (CRC mismatch, torn frame,
    /// unknown tag, or an out-of-order message).
    Frame { detail: String },
    /// A supervisor-side fatal condition attributed to this cell
    /// (e.g. the result sink — the journal — failed).
    Fatal { detail: String },
}

impl ShardCellError {
    /// Retry classification: worker deaths and framing losses are
    /// transient (kill + respawn + requeue); remote failures carry
    /// their own class across the wire.
    pub fn class(&self) -> FailureClass {
        match self {
            ShardCellError::Remote { class, .. } => *class,
            ShardCellError::WorkerCrash { .. }
            | ShardCellError::WorkerStall { .. }
            | ShardCellError::Frame { .. } => FailureClass::Transient,
            ShardCellError::Fatal { .. } => FailureClass::Fatal,
        }
    }
}

impl fmt::Display for ShardCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardCellError::Remote { message, trap, .. } => match trap {
                Some(t) => write!(f, "{message} ({t})"),
                None => f.write_str(message),
            },
            ShardCellError::WorkerCrash { detail } => write!(f, "worker crashed: {detail}"),
            ShardCellError::WorkerStall { ticks } => {
                write!(f, "worker stalled: no frame for {ticks} heartbeat ticks")
            }
            ShardCellError::Frame { detail } => write!(f, "corrupt frame: {detail}"),
            ShardCellError::Fatal { detail } => write!(f, "fatal: {detail}"),
        }
    }
}

impl std::error::Error for ShardCellError {}

/// One failed cell, with the same attempt accounting as the in-process
/// supervisor's `CellFailure` (no `Panicked` arm: a worker panic
/// surfaces as a crash or a remote failure, never an unwind).
#[derive(Debug)]
pub struct ShardFailure {
    pub index: usize,
    /// Attempts consumed (1 = failed on first run, no retry granted).
    pub attempts: u32,
    /// True when the cell exhausted its retry budget.
    pub quarantined: bool,
    pub error: ShardCellError,
}

/// Outcome of a sharded run. Completed slots are bit-identical to a
/// serial run of the same cells at any shard count.
#[derive(Debug, Default)]
pub struct ShardReport {
    /// Per-cell result payloads, indexed by cell.
    pub results: Vec<Option<Vec<u8>>>,
    pub failed: Vec<ShardFailure>,
    /// `(cell index, attempt number granted)` per retry, in grant order.
    pub retried: Vec<(usize, u32)>,
    /// Cells cancelled by a fatal error before they could run (sorted).
    pub skipped: Vec<usize>,
    /// Worker kills due to crash/stall/corruption (each implies a
    /// respawn attempt while work remained).
    pub respawns: u32,
    /// Cells quarantined because they repeatedly killed their worker
    /// (crash-loop protection), sorted.
    pub poisoned: Vec<usize>,
    /// The fatal condition that cancelled the sweep, if any.
    pub fatal: Option<String>,
}

impl ShardReport {
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    pub fn all_ok(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty() && self.completed() == self.results.len()
    }
}

/// A live worker connection: where requests go, where responses come
/// from, and how to kill + reap the incarnation (returns an exit
/// description for diagnostics).
pub struct WorkerLink {
    pub stdin: Box<dyn Write + Send>,
    pub stdout: Box<dyn Read + Send>,
    pub kill: Box<dyn FnMut() -> String + Send>,
}

/// How to launch a real worker process (stdin/stdout piped for the
/// protocol, stderr inherited so worker diagnostics stay visible).
/// `envs` lets the caller ship e.g. a serialized fault plan to the
/// child deterministically.
#[derive(Debug, Clone)]
pub struct WorkerCmd {
    pub program: PathBuf,
    pub args: Vec<String>,
    pub envs: Vec<(String, String)>,
}

impl WorkerCmd {
    pub fn new(program: impl Into<PathBuf>) -> WorkerCmd {
        WorkerCmd {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Spawn one worker incarnation.
    ///
    /// # Errors
    /// Process launch failures (the supervisor treats repeated spawn
    /// failures as fatal).
    pub fn spawn(&self) -> io::Result<WorkerLink> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .envs(self.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        Ok(WorkerLink {
            stdin: Box::new(stdin),
            stdout: Box::new(stdout),
            kill: Box::new(move || reap(&mut child)),
        })
    }
}

fn reap(child: &mut Child) -> String {
    let _ = child.kill();
    match child.wait() {
        Ok(status) => status.to_string(),
        Err(e) => format!("wait failed: {e}"),
    }
}

/// Run `cells` across worker processes produced by `spawn` (called
/// with the shard slot index; real callers use [`WorkerCmd::spawn`],
/// tests substitute in-process mocks). `sink` observes each completed
/// cell `(index, payload)` *before* the result is recorded — the
/// journal append hook; a sink error is fatal (checkpoints are
/// silently lost otherwise).
pub fn run_sharded<S, K>(cells: &[ShardCell], opts: &ShardOptions, spawn: S, sink: K) -> ShardReport
where
    S: FnMut(usize) -> io::Result<WorkerLink>,
    K: FnMut(usize, &[u8]) -> Result<(), String>,
{
    let report = ShardReport {
        results: vec![None; cells.len()],
        ..ShardReport::default()
    };
    if cells.is_empty() {
        return report;
    }

    // Cost-ordered dispatch: longest-known-first so one slow cell
    // doesn't dominate the tail; index-stable among equal costs so the
    // schedule (like everything else here) is deterministic.
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(cells[i].cost), i));

    let (tx, rx) = mpsc::channel();
    let shards = opts.shards.clamp(1, cells.len());
    let mut sup = Supervisor {
        cells,
        opts,
        spawn,
        sink,
        queue: order
            .into_iter()
            .map(|idx| Entry {
                idx,
                attempt: 0,
                delay: 0,
            })
            .collect(),
        slots: (0..shards).map(|_| Slot::dead()).collect(),
        tx,
        report,
        cancel: None,
    };
    sup.run(&rx);
    sup.finish()
}

/// One queued (or in-flight) attempt of a cell; `delay` is the
/// deterministic backoff counted in queue pops (mirrors `supervise`).
#[derive(Debug, Clone, Copy)]
struct Entry {
    idx: usize,
    attempt: u32,
    delay: u32,
}

enum SlotState {
    Dead,
    Handshaking { ticks: u32 },
    Idle,
    Busy { entry: Entry, ticks: u32 },
}

struct Slot {
    /// Incarnation counter; bumped on every spawn *and* kill so events
    /// from a dead incarnation's reader thread are ignored.
    gen: u64,
    state: SlotState,
    stdin: Option<Box<dyn Write + Send>>,
    kill: Option<Box<dyn FnMut() -> String + Send>>,
    handshake_fails: u32,
}

impl Slot {
    fn dead() -> Slot {
        Slot {
            gen: 0,
            state: SlotState::Dead,
            stdin: None,
            kill: None,
            handshake_fails: 0,
        }
    }
}

enum Event {
    Msg(Msg),
    Corrupt(String),
    Eof,
    Io(String),
}

struct Supervisor<'a, S, K> {
    cells: &'a [ShardCell],
    opts: &'a ShardOptions,
    spawn: S,
    sink: K,
    queue: VecDeque<Entry>,
    slots: Vec<Slot>,
    tx: mpsc::Sender<(usize, u64, Event)>,
    report: ShardReport,
    cancel: Option<String>,
}

impl<S, K> Supervisor<'_, S, K>
where
    S: FnMut(usize) -> io::Result<WorkerLink>,
    K: FnMut(usize, &[u8]) -> Result<(), String>,
{
    fn run(&mut self, rx: &mpsc::Receiver<(usize, u64, Event)>) {
        loop {
            if self.cancel.is_some() {
                return;
            }
            let live = self.slots.iter().any(|s| {
                matches!(
                    s.state,
                    SlotState::Busy { .. } | SlotState::Handshaking { .. }
                )
            });
            if self.queue.is_empty() && !live {
                return;
            }
            self.dispatch();
            if self.cancel.is_some() {
                return;
            }
            match rx.recv_timeout(self.opts.tick) {
                Ok((s, gen, ev)) => self.handle_event(s, gen, ev),
                Err(mpsc::RecvTimeoutError::Timeout) => self.tick(),
                // Unreachable (we hold a sender), but never wedge.
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.cancel = Some("event channel disconnected".into());
                }
            }
        }
    }

    /// Respawn dead slots while work remains, and hand every idle
    /// worker its next ready cell.
    fn dispatch(&mut self) {
        for s in 0..self.slots.len() {
            if self.cancel.is_some() {
                return;
            }
            if matches!(self.slots[s].state, SlotState::Dead) && !self.queue.is_empty() {
                self.spawn_slot(s);
            }
            if !matches!(self.slots[s].state, SlotState::Idle) {
                continue;
            }
            let Some(entry) = self.pop_ready() else {
                continue;
            };
            let msg = Msg::Cell {
                index: entry.idx as u64,
                attempt: entry.attempt,
                payload: self.cells[entry.idx].payload.clone(),
            };
            let wrote = {
                let stdin = self.slots[s].stdin.as_mut().expect("idle slot has stdin");
                proto::write_msg(stdin, &msg)
            };
            match wrote {
                Ok(()) => self.slots[s].state = SlotState::Busy { entry, ticks: 0 },
                Err(e) => {
                    // The worker died under us mid-dispatch: park the
                    // entry in the slot so the crash path requeues it.
                    self.slots[s].state = SlotState::Busy { entry, ticks: 0 };
                    self.worker_death(s, |exit| ShardCellError::WorkerCrash {
                        detail: format!("dispatch write failed: {e} ({exit})"),
                    });
                }
            }
        }
    }

    /// Pop the next zero-delay entry, burning one delay unit per pop —
    /// the same pop-counted (never wall-clock) backoff as `supervise`.
    fn pop_ready(&mut self) -> Option<Entry> {
        loop {
            let mut e = self.queue.pop_front()?;
            if e.delay == 0 {
                return Some(e);
            }
            e.delay -= 1;
            self.queue.push_back(e);
        }
    }

    fn spawn_slot(&mut self, s: usize) {
        match (self.spawn)(s) {
            Ok(link) => {
                let slot = &mut self.slots[s];
                slot.gen += 1;
                let gen = slot.gen;
                slot.state = SlotState::Handshaking { ticks: 0 };
                slot.stdin = Some(link.stdin);
                slot.kill = Some(link.kill);
                let tx = self.tx.clone();
                let mut stdout = link.stdout;
                thread::spawn(move || loop {
                    let ev = match proto::read_msg(&mut stdout) {
                        Ok(msg) => Event::Msg(msg),
                        Err(ProtoError::Eof) => {
                            let _ = tx.send((s, gen, Event::Eof));
                            return;
                        }
                        Err(ProtoError::Corrupt(d)) => {
                            let _ = tx.send((s, gen, Event::Corrupt(d)));
                            return;
                        }
                        Err(ProtoError::Io(e)) => {
                            let _ = tx.send((s, gen, Event::Io(e.to_string())));
                            return;
                        }
                    };
                    if tx.send((s, gen, ev)).is_err() {
                        return;
                    }
                });
            }
            Err(e) => {
                self.slots[s].handshake_fails += 1;
                if self.slots[s].handshake_fails >= self.opts.policy.max_attempts.max(1) {
                    self.cancel = Some(format!("shard {s}: cannot spawn worker: {e}"));
                }
            }
        }
    }

    fn kill_slot(&mut self, s: usize) -> String {
        let slot = &mut self.slots[s];
        slot.gen += 1;
        slot.state = SlotState::Dead;
        slot.stdin = None;
        match slot.kill.take() {
            Some(mut kill) => kill(),
            None => "no worker".into(),
        }
    }

    /// The slot's worker died/stalled/corrupted while (possibly) busy:
    /// kill + reap, count the respawn, requeue the in-flight cell.
    fn worker_death(&mut self, s: usize, mk: impl FnOnce(String) -> ShardCellError) {
        let entry = match self.slots[s].state {
            SlotState::Busy { entry, .. } => entry,
            _ => {
                self.kill_slot(s);
                return;
            }
        };
        let exit = self.kill_slot(s);
        self.report.respawns += 1;
        self.retry_or_quarantine(entry, mk(exit), true);
    }

    /// `RetryPolicy` attempt accounting, shared with the in-process
    /// supervisor: transient failures retry with pop-counted backoff
    /// until the budget is spent, then quarantine. `poison` marks
    /// exhaustion as a poison cell (it repeatedly killed its worker).
    fn retry_or_quarantine(&mut self, entry: Entry, error: ShardCellError, poison: bool) {
        let attempts = entry.attempt + 1;
        let transient = error.class() == FailureClass::Transient;
        if transient && attempts < self.opts.policy.max_attempts.max(1) {
            self.report.retried.push((entry.idx, attempts));
            self.queue.push_back(Entry {
                idx: entry.idx,
                attempt: attempts,
                delay: self.opts.policy.backoff_pops(attempts),
            });
        } else {
            self.report.failed.push(ShardFailure {
                index: entry.idx,
                attempts,
                quarantined: transient,
                error,
            });
            if poison && transient {
                self.report.poisoned.push(entry.idx);
            }
        }
    }

    /// The slot's stream is no longer trustworthy (corrupt frame or
    /// out-of-order message): kill the worker; a busy cell burns an
    /// attempt as `Frame`, a handshaking slot counts a handshake fail.
    fn stream_failure(&mut self, s: usize, detail: String) {
        match self.slots[s].state {
            SlotState::Busy { .. } => {
                self.worker_death(s, |exit| ShardCellError::Frame {
                    detail: format!("{detail} ({exit})"),
                });
            }
            SlotState::Handshaking { .. } => self.handshake_failure(s, detail),
            _ => {
                self.kill_slot(s);
            }
        }
    }

    /// Worker-level crash-loop protection: a worker that cannot get
    /// through the handshake `max_attempts` times is fatal (no cell is
    /// implicated — the binary pair itself is broken).
    fn handshake_failure(&mut self, s: usize, detail: String) {
        self.kill_slot(s);
        self.slots[s].handshake_fails += 1;
        if self.slots[s].handshake_fails >= self.opts.policy.max_attempts.max(1) {
            self.cancel = Some(format!(
                "shard {s}: worker crash-looped during handshake: {detail}"
            ));
        }
    }

    fn handle_event(&mut self, s: usize, gen: u64, ev: Event) {
        if self.slots[s].gen != gen {
            return; // stale incarnation
        }
        match ev {
            Event::Msg(Msg::Hello { magic, schema }) => {
                if !matches!(self.slots[s].state, SlotState::Handshaking { .. }) {
                    self.stream_failure(s, "hello out of order".into());
                } else if &magic != proto::MAGIC || schema != proto::SCHEMA {
                    self.kill_slot(s);
                    self.cancel = Some(format!(
                        "shard {s}: protocol version mismatch: worker speaks \
                         {:?}/schema {schema}, supervisor {:?}/schema {}",
                        String::from_utf8_lossy(&magic),
                        String::from_utf8_lossy(proto::MAGIC),
                        proto::SCHEMA,
                    ));
                } else {
                    self.slots[s].state = SlotState::Idle;
                    self.slots[s].handshake_fails = 0;
                }
            }
            Event::Msg(Msg::Done { index, payload }) => match self.take_busy(s, index) {
                Some(entry) => {
                    self.slots[s].state = SlotState::Idle;
                    match (self.sink)(entry.idx, &payload) {
                        Ok(()) => self.report.results[entry.idx] = Some(payload),
                        Err(e) => {
                            self.report.failed.push(ShardFailure {
                                index: entry.idx,
                                attempts: entry.attempt + 1,
                                quarantined: false,
                                error: ShardCellError::Fatal { detail: e.clone() },
                            });
                            self.cancel =
                                Some(format!("result sink failed for cell {}: {e}", entry.idx));
                        }
                    }
                }
                None => self.stream_failure(s, format!("done for unexpected cell {index}")),
            },
            Event::Msg(Msg::Fail {
                index,
                class,
                message,
                trap,
            }) => match self.take_busy(s, index) {
                Some(entry) => {
                    self.slots[s].state = SlotState::Idle;
                    let error = ShardCellError::Remote {
                        class,
                        message,
                        trap,
                    };
                    if class == FailureClass::Fatal {
                        let detail = error.to_string();
                        self.report.failed.push(ShardFailure {
                            index: entry.idx,
                            attempts: entry.attempt + 1,
                            quarantined: false,
                            error,
                        });
                        self.cancel = Some(format!("cell {} failed fatally: {detail}", entry.idx));
                    } else {
                        self.retry_or_quarantine(entry, error, false);
                    }
                }
                None => self.stream_failure(s, format!("fail for unexpected cell {index}")),
            },
            Event::Msg(other) => {
                self.stream_failure(s, format!("unexpected message: {other:?}"));
            }
            Event::Corrupt(detail) => self.stream_failure(s, detail),
            Event::Eof => match self.slots[s].state {
                SlotState::Busy { .. } => {
                    self.worker_death(s, |exit| ShardCellError::WorkerCrash {
                        detail: format!("unexpected eof ({exit})"),
                    })
                }
                SlotState::Handshaking { .. } => {
                    self.handshake_failure(s, "worker exited before handshake".into())
                }
                _ => {
                    self.kill_slot(s);
                }
            },
            Event::Io(detail) => match self.slots[s].state {
                SlotState::Busy { .. } => {
                    self.worker_death(s, |exit| ShardCellError::WorkerCrash {
                        detail: format!("read failed: {detail} ({exit})"),
                    })
                }
                SlotState::Handshaking { .. } => self.handshake_failure(s, detail),
                _ => {
                    self.kill_slot(s);
                }
            },
        }
    }

    /// If slot `s` is busy with cell `index`, return its entry (state
    /// is left Busy; callers set the next state).
    fn take_busy(&mut self, s: usize, index: u64) -> Option<Entry> {
        match self.slots[s].state {
            SlotState::Busy { entry, .. } if entry.idx as u64 == index => Some(entry),
            _ => None,
        }
    }

    /// One heartbeat tick passed with no frame from any worker:
    /// advance every in-flight deadline.
    fn tick(&mut self) {
        let mut overdue = Vec::new();
        for (s, slot) in self.slots.iter_mut().enumerate() {
            match &mut slot.state {
                SlotState::Busy { ticks, .. } | SlotState::Handshaking { ticks } => {
                    *ticks += 1;
                    if *ticks > self.opts.deadline_ticks {
                        overdue.push((s, *ticks));
                    }
                }
                _ => {}
            }
        }
        for (s, ticks) in overdue {
            match self.slots[s].state {
                SlotState::Busy { .. } => {
                    self.worker_death(s, |_exit| ShardCellError::WorkerStall { ticks })
                }
                SlotState::Handshaking { .. } => {
                    self.handshake_failure(s, format!("handshake timed out after {ticks} ticks"))
                }
                _ => {}
            }
        }
    }

    /// Record skipped cells on cancellation, shut every worker down
    /// (graceful Shutdown frame, then kill + reap), produce the report.
    fn finish(mut self) -> ShardReport {
        if self.cancel.is_some() {
            let mut skipped: Vec<usize> = self.queue.iter().map(|e| e.idx).collect();
            for slot in &self.slots {
                if let SlotState::Busy { entry, .. } = slot.state {
                    skipped.push(entry.idx);
                }
            }
            skipped.sort_unstable();
            skipped.dedup();
            self.report.skipped = skipped;
        }
        for s in 0..self.slots.len() {
            if let Some(stdin) = self.slots[s].stdin.as_mut() {
                let _ = proto::write_msg(stdin, &Msg::Shutdown);
            }
            self.kill_slot(s);
        }
        self.report.poisoned.sort_unstable();
        self.report.fatal = self.cancel.take();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_frame, read_msg, serve_worker, write_msg, WorkerFailure};
    use mperf_vm::TrapInfo;
    use std::io::{PipeReader, PipeWriter};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Mutex};

    /// An in-process mock worker: `body` runs on a detached thread with
    /// the request-read / response-write pipe ends. Stalled bodies leak
    /// their thread — harmless in tests, and exactly what a hung child
    /// process looks like to the supervisor.
    fn mock_link(
        body: impl FnOnce(PipeReader, PipeWriter) + Send + 'static,
    ) -> io::Result<WorkerLink> {
        let (req_r, req_w) = io::pipe()?;
        let (resp_r, resp_w) = io::pipe()?;
        thread::spawn(move || body(req_r, resp_w));
        Ok(WorkerLink {
            stdin: Box::new(req_w),
            stdout: Box::new(resp_r),
            kill: Box::new(|| "mock worker".into()),
        })
    }

    /// The reference computation every healthy mock applies.
    fn doubled(payload: &[u8]) -> Vec<u8> {
        payload.iter().map(|b| b.wrapping_mul(2)).collect()
    }

    fn healthy(req: PipeReader, resp: PipeWriter) {
        let _ = serve_worker(req, resp, |_, _, payload| Ok(doubled(payload)));
    }

    fn cells(n: usize) -> Vec<ShardCell> {
        (0..n)
            .map(|i| ShardCell {
                payload: vec![i as u8; i + 1],
                cost: 0,
            })
            .collect()
    }

    fn fast_opts(shards: usize) -> ShardOptions {
        ShardOptions {
            shards,
            tick: Duration::from_millis(5),
            ..ShardOptions::default()
        }
    }

    #[test]
    fn healthy_workers_are_bit_identical_to_serial_at_any_shard_count() {
        let cells = cells(8);
        let expected: Vec<Vec<u8>> = cells.iter().map(|c| doubled(&c.payload)).collect();
        for shards in [1, 2, 3] {
            let report = run_sharded(
                &cells,
                &fast_opts(shards),
                |_| mock_link(healthy),
                |_, _| Ok(()),
            );
            assert!(report.all_ok(), "shards={shards}: {:?}", report.failed);
            assert_eq!(report.respawns, 0);
            assert!(report.retried.is_empty());
            for (i, exp) in expected.iter().enumerate() {
                assert_eq!(
                    report.results[i].as_deref(),
                    Some(exp.as_slice()),
                    "cell {i} at shards={shards}"
                );
            }
        }
    }

    #[test]
    fn dispatch_is_cost_ordered_longest_first_index_stable() {
        let cells = vec![
            ShardCell {
                payload: vec![0],
                cost: 5,
            },
            ShardCell {
                payload: vec![1],
                cost: 9,
            },
            ShardCell {
                payload: vec![2],
                cost: 5,
            },
            ShardCell {
                payload: vec![3],
                cost: 1,
            },
        ];
        let seen = Arc::new(Mutex::new(Vec::new()));
        let order = seen.clone();
        let report = run_sharded(
            &cells,
            &fast_opts(1),
            move |_| {
                let order = order.clone();
                mock_link(move |req, resp| {
                    let _ = serve_worker(req, resp, |index, _, payload| {
                        order.lock().unwrap().push(index as usize);
                        Ok(payload.to_vec())
                    });
                })
            },
            |_, _| Ok(()),
        );
        assert!(report.all_ok());
        assert_eq!(
            *seen.lock().unwrap(),
            vec![1, 0, 2, 3],
            "cost desc, index-stable"
        );
    }

    #[test]
    fn crashed_worker_is_respawned_and_cell_requeued() {
        let cells = cells(4);
        let expected: Vec<Vec<u8>> = cells.iter().map(|c| doubled(&c.payload)).collect();
        let spawns = Arc::new(AtomicU32::new(0));
        let counter = spawns.clone();
        let report = run_sharded(
            &cells,
            &fast_opts(1),
            move |_| {
                if counter.fetch_add(1, Ordering::SeqCst) == 0 {
                    // First incarnation handshakes, then dies mid-cell:
                    // reads the request, replies nothing, drops both
                    // pipes (the supervisor sees an unexpected EOF).
                    mock_link(|mut req, mut resp| {
                        let _ = write_msg(&mut resp, &Msg::hello());
                        let _ = read_msg(&mut req);
                    })
                } else {
                    mock_link(healthy)
                }
            },
            |_, _| Ok(()),
        );
        assert_eq!(spawns.load(Ordering::SeqCst), 2, "one respawn");
        assert_eq!(report.respawns, 1);
        assert!(report.all_ok(), "{:?}", report.failed);
        // Cell 0 (first dispatched) burned one attempt on the crash.
        assert_eq!(report.retried, vec![(0, 1)]);
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(report.results[i].as_deref(), Some(exp.as_slice()));
        }
    }

    #[test]
    fn stalled_worker_hits_tick_deadline_and_recovers() {
        let cells = cells(3);
        let expected: Vec<Vec<u8>> = cells.iter().map(|c| doubled(&c.payload)).collect();
        let spawns = Arc::new(AtomicU32::new(0));
        let counter = spawns.clone();
        let opts = ShardOptions {
            shards: 1,
            deadline_ticks: 3,
            tick: Duration::from_millis(5),
            ..ShardOptions::default()
        };
        let report = run_sharded(
            &cells,
            &opts,
            move |_| {
                if counter.fetch_add(1, Ordering::SeqCst) == 0 {
                    mock_link(|mut req, mut resp| {
                        let _ = write_msg(&mut resp, &Msg::hello());
                        let _ = read_msg(&mut req);
                        // Hang forever holding both pipe ends open: no
                        // EOF, no frames — only the tick deadline fires.
                        loop {
                            thread::sleep(Duration::from_secs(3600));
                        }
                    })
                } else {
                    mock_link(healthy)
                }
            },
            |_, _| Ok(()),
        );
        assert_eq!(report.respawns, 1);
        assert!(report.all_ok(), "{:?}", report.failed);
        assert_eq!(report.retried, vec![(0, 1)]);
        assert!(report
            .retried
            .iter()
            .all(|&(i, _)| report.results[i].is_some()));
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(report.results[i].as_deref(), Some(exp.as_slice()));
        }
    }

    #[test]
    fn corrupt_frame_is_transient_and_burns_one_attempt() {
        let cells = cells(3);
        let expected: Vec<Vec<u8>> = cells.iter().map(|c| doubled(&c.payload)).collect();
        let spawns = Arc::new(AtomicU32::new(0));
        let counter = spawns.clone();
        let report = run_sharded(
            &cells,
            &fast_opts(1),
            move |_| {
                if counter.fetch_add(1, Ordering::SeqCst) == 0 {
                    mock_link(|mut req, mut resp| {
                        let _ = write_msg(&mut resp, &Msg::hello());
                        if let Ok(Msg::Cell { index, payload, .. }) = read_msg(&mut req) {
                            let mut frame = encode_frame(&Msg::Done {
                                index,
                                payload: doubled(&payload),
                            });
                            let last = frame.len() - 1;
                            frame[last] ^= 0xff; // CRC no longer matches
                            let _ = resp.write_all(&frame);
                        }
                    })
                } else {
                    mock_link(healthy)
                }
            },
            |_, _| Ok(()),
        );
        assert_eq!(report.respawns, 1, "corrupt stream kills the worker");
        assert!(report.all_ok(), "{:?}", report.failed);
        assert_eq!(report.retried, vec![(0, 1)]);
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(report.results[i].as_deref(), Some(exp.as_slice()));
        }
    }

    #[test]
    fn poison_cell_is_quarantined_while_healthy_cells_flow() {
        let cells = cells(5);
        let poison = 2u64;
        let report = run_sharded(
            &cells,
            &fast_opts(2),
            move |_| {
                mock_link(move |mut req, mut resp| {
                    let _ = write_msg(&mut resp, &Msg::hello());
                    loop {
                        match read_msg(&mut req) {
                            Ok(Msg::Cell { index, payload, .. }) => {
                                if index == poison {
                                    return; // die on the poison cell, every time
                                }
                                let reply = Msg::Done {
                                    index,
                                    payload: doubled(&payload),
                                };
                                if write_msg(&mut resp, &reply).is_err() {
                                    return;
                                }
                            }
                            _ => return,
                        }
                    }
                })
            },
            |_, _| Ok(()),
        );
        assert_eq!(report.poisoned, vec![2]);
        assert_eq!(report.failed.len(), 1);
        let f = &report.failed[0];
        assert_eq!(f.index, 2);
        assert_eq!(f.attempts, 3, "default budget exhausted");
        assert!(f.quarantined);
        assert!(matches!(f.error, ShardCellError::WorkerCrash { .. }));
        assert_eq!(report.respawns, 3, "every attempt killed a worker");
        assert!(report.skipped.is_empty(), "healthy cells kept flowing");
        assert_eq!(report.completed(), 4);
        for i in [0usize, 1, 3, 4] {
            assert_eq!(
                report.results[i].as_deref(),
                Some(doubled(&cells[i].payload).as_slice())
            );
        }
    }

    #[test]
    fn sink_failure_is_fatal_and_cancels_queued_cells() {
        let cells = cells(4);
        let report = run_sharded(
            &cells,
            &fast_opts(1),
            |_| mock_link(healthy),
            |idx, _| Err(format!("journal append failed for {idx}")),
        );
        assert_eq!(report.failed.len(), 1);
        let f = &report.failed[0];
        assert_eq!(f.index, 0);
        assert!(!f.quarantined);
        assert!(matches!(f.error, ShardCellError::Fatal { .. }));
        assert_eq!(report.skipped, vec![1, 2, 3]);
        assert_eq!(report.completed(), 0);
        assert!(report.fatal.as_deref().unwrap().contains("sink"));
    }

    #[test]
    fn protocol_version_mismatch_is_fatal_not_retried() {
        let cells = cells(3);
        let report = run_sharded(
            &cells,
            &fast_opts(2),
            |_| {
                mock_link(|_req, mut resp| {
                    let _ = write_msg(
                        &mut resp,
                        &Msg::Hello {
                            magic: *crate::proto::MAGIC,
                            schema: crate::proto::SCHEMA + 1,
                        },
                    );
                })
            },
            |_, _| Ok(()),
        );
        assert_eq!(report.completed(), 0);
        assert_eq!(report.skipped, vec![0, 1, 2], "everything cancelled");
        let fatal = report.fatal.as_deref().unwrap();
        assert!(fatal.contains("version mismatch"), "{fatal}");
    }

    #[test]
    fn remote_failure_class_and_trap_survive_the_process_boundary() {
        let cells = cells(3);
        let report = run_sharded(
            &cells,
            &fast_opts(1),
            |_| {
                mock_link(|req, resp| {
                    let _ = serve_worker(req, resp, |index, _, payload| {
                        if index == 1 {
                            return Err(WorkerFailure {
                                class: FailureClass::Permanent,
                                message: "baseline phase trapped: division by zero".into(),
                                trap: Some(TrapInfo {
                                    pc: 0x1_0002_0003,
                                    func: "boom".into(),
                                }),
                            });
                        }
                        Ok(doubled(payload))
                    });
                })
            },
            |_, _| Ok(()),
        );
        assert_eq!(report.failed.len(), 1);
        let f = &report.failed[0];
        assert_eq!(f.index, 1);
        assert_eq!(f.attempts, 1, "permanent: no retries");
        assert!(!f.quarantined);
        match &f.error {
            ShardCellError::Remote { class, trap, .. } => {
                assert_eq!(*class, FailureClass::Permanent);
                let t = trap.as_ref().unwrap();
                assert_eq!((t.pc, t.func.as_str()), (0x1_0002_0003, "boom"));
            }
            other => panic!("expected Remote, got {other:?}"),
        }
        let msg = f.error.to_string();
        assert!(msg.contains("trapped") && msg.contains("`boom`"), "{msg}");
        assert_eq!(report.respawns, 0, "a structured failure keeps the worker");
        assert_eq!(report.completed(), 2);
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn worker_transient_failures_requeue_without_respawn() {
        let cells = cells(3);
        let attempts_seen = Arc::new(Mutex::new(Vec::new()));
        let log = attempts_seen.clone();
        let report = run_sharded(
            &cells,
            &fast_opts(1),
            move |_| {
                let log = log.clone();
                mock_link(move |req, resp| {
                    let _ = serve_worker(req, resp, |index, attempt, payload| {
                        log.lock().unwrap().push((index, attempt));
                        if index == 0 && attempt == 0 {
                            return Err(WorkerFailure {
                                class: FailureClass::Transient,
                                message: "transient i/o".into(),
                                trap: None,
                            });
                        }
                        Ok(doubled(payload))
                    });
                })
            },
            |_, _| Ok(()),
        );
        assert!(report.all_ok(), "{:?}", report.failed);
        assert_eq!(report.respawns, 0, "worker survives a structured transient");
        assert_eq!(report.retried, vec![(0, 1)]);
        // The retry reached the worker with its bumped attempt number.
        assert!(attempts_seen.lock().unwrap().contains(&(0, 1)));
    }
}
