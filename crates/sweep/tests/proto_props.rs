//! Property tests over the serve subset of the framed IPC protocol:
//! arbitrary `Submit`/`Sample`/`Region`/`CellDone`/`Cancel`/`JobStatus`
//! messages round-trip byte-identically, and *every* truncation or
//! byte flip of a valid frame surfaces as [`ProtoError::Corrupt`] (the
//! error class the shard supervisor burns a transient attempt on —
//! `shard_props.rs` exercises that recovery end to end) — never as a
//! silently different message.

use mperf_sweep::proto::{encode_frame, read_msg, Msg, ProtoError};
use mperf_sweep::serve::ClientSession;
use proptest::prelude::*;

/// Build one serve-subset message from generated raw parts. `kind`
/// picks the variant; unused parts are simply ignored, so every part
/// of the generated tuple space is meaningful for some variant.
fn serve_msg(kind: usize, job: u64, index: u64, code: u32, payload: Vec<u8>, text: String) -> Msg {
    match kind {
        0 => Msg::Submit { job, payload },
        1 => Msg::Sample { job, payload },
        2 => Msg::Region { job, payload },
        3 => Msg::CellDone {
            job,
            index,
            payload,
        },
        4 => Msg::Cancel { job },
        _ => Msg::JobStatus {
            job,
            code,
            message: text,
            payload,
        },
    }
}

/// Latin-1 bytes to a definitely-valid UTF-8 string (multi-byte chars
/// included once past 0x7f, so the length prefix is exercised against
/// non-ASCII content).
fn text_from(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| b as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serve_messages_roundtrip_byte_identically(
        kind in 0usize..6,
        job in 0u64..=u64::MAX,
        index in 0u64..=u64::MAX,
        code in 0u64..200,
        payload in collection::vec(0u8..255, 0..64),
        text in collection::vec(0u8..255, 0..32),
    ) {
        let msg = serve_msg(kind, job, index, code as u32, payload, text_from(&text));
        let frame = encode_frame(&msg);
        let mut cursor = &frame[..];
        let back = read_msg(&mut cursor).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert!(cursor.is_empty(), "frame is self-delimiting");
        prop_assert_eq!(encode_frame(&back), frame, "re-encode is byte-identical");
    }

    #[test]
    fn truncated_frames_are_torn_never_misread(
        kind in 0usize..6,
        job in 0u64..=u64::MAX,
        payload in collection::vec(0u8..255, 0..64),
        cut_seed in 0u64..=u64::MAX,
    ) {
        let msg = serve_msg(kind, job, 3, 0, payload, "t".into());
        let frame = encode_frame(&msg);
        // Cut anywhere: 0 is a clean Eof (peer gone at a frame
        // boundary); any other prefix is a torn frame → Corrupt, the
        // class the supervisor retries as transient.
        let cut = (cut_seed % frame.len() as u64) as usize;
        let mut cursor = &frame[..cut];
        match read_msg(&mut cursor) {
            Err(ProtoError::Eof) => prop_assert_eq!(cut, 0, "Eof only at the boundary"),
            Err(ProtoError::Corrupt(_)) => prop_assert!(cut > 0),
            other => prop_assert!(false, "truncated frame decoded: {other:?}"),
        }
    }

    #[test]
    fn flipped_bytes_are_corrupt_never_misread(
        kind in 0usize..6,
        job in 0u64..=u64::MAX,
        payload in collection::vec(0u8..255, 1..64),
        pos_seed in 0u64..=u64::MAX,
        flip in 1u64..256,
    ) {
        let msg = serve_msg(kind, job, 9, 130, payload, "status text".into());
        let mut frame = encode_frame(&msg);
        // Flip any CRC or body byte (positions ≥ 4; the length word is
        // covered by the truncation property). The CRC must catch it.
        let pos = 4 + (pos_seed % (frame.len() as u64 - 4)) as usize;
        frame[pos] ^= flip as u8;
        let mut cursor = &frame[..];
        match read_msg(&mut cursor) {
            Err(ProtoError::Corrupt(_)) => {}
            other => prop_assert!(false, "corrupt frame decoded: {other:?}"),
        }
    }

    #[test]
    fn session_drain_stops_at_the_first_corrupt_frame(
        n_good in 0usize..4,
        payload in collection::vec(0u8..255, 1..32),
    ) {
        // A daemon stream: Hello, n good events, then a corrupt frame.
        // The client must deliver exactly the good events and then
        // error Corrupt — no event after the tear is trusted.
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(&Msg::hello()));
        for _ in 0..n_good {
            stream.extend_from_slice(&encode_frame(&Msg::Sample {
                job: 1,
                payload: payload.clone(),
            }));
        }
        let mut bad = encode_frame(&Msg::CellDone {
            job: 1,
            index: 0,
            payload: payload.clone(),
        });
        let mid = 8 + (bad.len() - 8) / 2;
        bad[mid] ^= 0xff;
        stream.extend_from_slice(&bad);

        let mut session = ClientSession::connect(&stream[..], Vec::new()).unwrap();
        session.submit(vec![0]).unwrap();
        let mut seen = 0usize;
        let err = session.drain_job(1, |_| seen += 1).unwrap_err();
        prop_assert!(matches!(err, ProtoError::Corrupt(_)), "{err}");
        prop_assert_eq!(seen, n_good, "every pre-tear event delivered");
    }
}
