//! Property tests over the shard supervisor: for *arbitrary* subsets of
//! worker kills, stalls, and corrupt frames, the surviving sweep is
//! bit-identical to a fault-free serial run, with exact retry, respawn,
//! and quarantine accounting.
//!
//! Workers are in-process mocks over [`std::io::pipe`] — the supervisor
//! cannot tell a dropped pipe from a SIGKILLed child, a sleeping thread
//! from a hung process, or a flipped byte from a torn write, so the
//! recovery machinery under test is exactly what real `sweep-worker`
//! children exercise.

use mperf_sweep::proto::{encode_frame, read_msg, write_msg, Msg};
use mperf_sweep::shard::{run_sharded, ShardCell, ShardOptions, WorkerLink};
use mperf_sweep::RetryPolicy;
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{self, PipeReader, PipeWriter, Write};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// What a mock worker does to a cell's *first* attempt (`0` = behave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Die mid-cell: the request is read, then both pipes drop —
    /// indistinguishable from a `kill -9` between read and reply.
    Kill,
    /// Hang forever holding the cell (the thread leaks; so does a hung
    /// child process until the supervisor's deadline kills it).
    Stall,
    /// Reply with a CRC-corrupt `Done` frame.
    Corrupt,
}

/// The reference computation every healthy attempt applies; the serial
/// expectation the sharded results must match bit-for-bit.
fn transform(payload: &[u8]) -> Vec<u8> {
    payload
        .iter()
        .map(|b| b.wrapping_mul(3).wrapping_add(1))
        .collect()
}

fn mock_worker(mut req: PipeReader, mut resp: PipeWriter, faults: Arc<HashMap<u64, Fault>>) {
    if write_msg(&mut resp, &Msg::hello()).is_err() {
        return;
    }
    loop {
        match read_msg(&mut req) {
            Ok(Msg::Cell {
                index,
                attempt,
                payload,
            }) => {
                match (attempt, faults.get(&index)) {
                    (0, Some(Fault::Kill)) => return,
                    (0, Some(Fault::Stall)) => loop {
                        thread::sleep(Duration::from_secs(3600));
                    },
                    (0, Some(Fault::Corrupt)) => {
                        let mut frame = encode_frame(&Msg::Done {
                            index,
                            payload: transform(&payload),
                        });
                        let mid = 8 + (frame.len() - 8) / 2;
                        frame[mid] ^= 0xff;
                        if resp.write_all(&frame).and_then(|_| resp.flush()).is_err() {
                            return;
                        }
                        // Keep serving: the supervisor kills us anyway.
                        continue;
                    }
                    _ => {}
                }
                let done = Msg::Done {
                    index,
                    payload: transform(&payload),
                };
                if write_msg(&mut resp, &done).is_err() {
                    return;
                }
            }
            Ok(Msg::Shutdown) | Err(_) => return,
            Ok(_) => return,
        }
    }
}

fn spawn_mock(faults: &Arc<HashMap<u64, Fault>>) -> io::Result<WorkerLink> {
    let (req_r, req_w) = io::pipe()?;
    let (resp_r, resp_w) = io::pipe()?;
    let faults = Arc::clone(faults);
    thread::spawn(move || mock_worker(req_r, resp_w, faults));
    Ok(WorkerLink {
        stdin: Box::new(req_w),
        stdout: Box::new(resp_r),
        kill: Box::new(|| "mock worker".into()),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any mix of first-attempt kills, stalls, and corrupt frames, at
    /// any shard count: every cell still completes, survivors are
    /// bit-identical to the fault-free serial transform, each faulted
    /// cell burned exactly one attempt, and each fault cost exactly one
    /// worker respawn. Nothing is quarantined, skipped, or fatal.
    #[test]
    fn faulted_sweep_matches_serial_with_exact_accounting(
        ncells in 4usize..10,
        shards in 1usize..4,
        fault_codes in collection::vec(0u8..4, 9..10),
        seed in 0u64..1_000_000,
    ) {
        let cells: Vec<ShardCell> = (0..ncells)
            .map(|i| ShardCell {
                payload: seed
                    .wrapping_mul(i as u64 + 1)
                    .to_le_bytes()
                    .to_vec(),
                cost: (i as u64 * 37) % 11,
            })
            .collect();
        let faults: Arc<HashMap<u64, Fault>> = Arc::new(
            fault_codes
                .iter()
                .take(ncells)
                .enumerate()
                .filter_map(|(i, &code)| {
                    let f = match code {
                        1 => Fault::Kill,
                        2 => Fault::Stall,
                        3 => Fault::Corrupt,
                        _ => return None,
                    };
                    Some((i as u64, f))
                })
                .collect(),
        );
        let opts = ShardOptions {
            shards,
            policy: RetryPolicy::default(),
            deadline_ticks: 3,
            tick: Duration::from_millis(5),
        };
        let mut sunk = vec![false; ncells];
        let report = run_sharded(
            &cells,
            &opts,
            |_slot| spawn_mock(&faults),
            |i, _payload| {
                sunk[i] = true;
                Ok(())
            },
        );

        // Bit-identical to the serial transform, every cell completed.
        prop_assert!(report.fatal.is_none(), "fatal: {:?}", report.fatal);
        prop_assert_eq!(report.results.len(), ncells);
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(
                report.results[i].as_deref(),
                Some(transform(&cell.payload).as_slice()),
                "cell {} (fault {:?})", i, faults.get(&(i as u64))
            );
            prop_assert!(sunk[i], "sink never saw cell {}", i);
        }
        prop_assert!(report.all_ok());
        prop_assert!(report.failed.is_empty());
        prop_assert!(report.skipped.is_empty());
        prop_assert!(report.poisoned.is_empty());

        // Exact accounting: each faulted cell retried once (granted
        // attempt 1), each fault killed exactly one worker incarnation.
        let mut retried = report.retried.clone();
        retried.sort_unstable();
        let mut expect: Vec<(usize, u32)> =
            faults.keys().map(|&i| (i as usize, 1)).collect();
        expect.sort_unstable();
        prop_assert_eq!(retried, expect);
        prop_assert_eq!(report.respawns as usize, faults.len());
    }
}
