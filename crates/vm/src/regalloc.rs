//! Decode-time register allocation: copy coalescing over the flat
//! op stream.
//!
//! After [`crate::decode`] flattens a function, roughly a third of its
//! dynamic ops are `Copy`s — the `var = expr` lowering writes every
//! expression into a temporary and copies it into the variable's
//! register. The superinstruction pass can hide *some* of that behind
//! the `bin+copy` pattern, but the copy still costs a `Value` clone, a
//! register-stack write, and (when it separates two otherwise-adjacent
//! pattern constituents) a lost fusion opportunity.
//!
//! This pass eliminates the data movement outright: it computes
//! per-function liveness over the flat stream, builds a register
//! interference relation, and merges the source and destination of each
//! `copy dst = src` whose live ranges do not conflict — so the producer
//! writes directly into the consumer's slot. A coalesced `Copy` slot is
//! rewritten to [`DecodedOp::ElidedCopy`]: a retire-only op that ticks
//! the same `Move` machine op at the same pc (keeping every modeled
//! observable — cycles, instruction counts, PMU state, sampling IPs —
//! bit-identical to the reference engine) but moves no data and reads
//! no registers. Register numbers are then compacted, shrinking each
//! frame's register-stack window.
//!
//! ## Soundness
//!
//! Coalescing `dst` and `src` is safe iff their merged class is never
//! simultaneously live with conflicting values:
//!
//! - every op's destinations *interfere* with every register live-out
//!   of that op (writing one would clobber the other) — except the
//!   copy's own `dst`/`src` pair at the copy itself, where both hold
//!   the same value by construction;
//! - destinations written by the same op interfere pairwise;
//! - function parameters interfere pairwise and with everything
//!   live-in at entry (each holds a distinct caller-supplied value).
//!
//! Classes grow only through `Copy` ops, which the IR verifier
//! type-checks, so merged registers always carry one type — the
//! decoded engine's raw-`i64` lanes stay type-confusion-free. A read
//! of a never-written register sees the zero-initialized slot exactly
//! as before: any other class member's def inside the read's live
//! range would have recorded interference and blocked the merge.
//!
//! The pass runs before superinstruction fusion, so the peephole
//! matcher sees the coalesced stream and can fire patterns (e.g.
//! `inc+cmp+br`) across former `Copy` boundaries — elided slots are
//! transparent glue; see `fuse_func` in [`crate::decode`].

use crate::decode::{op_defs, op_reads, DecodedFunc, DecodedOp};
use mperf_ir::{Operand, Reg};

/// Decode-time register-allocation statistics, aggregated over all
/// functions and recorded on [`crate::decode::DecodedModule`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegallocStats {
    /// `Copy` ops in the pre-pass stream.
    pub copies_static: u64,
    /// `Copy` ops coalesced away (now [`DecodedOp::ElidedCopy`]).
    pub copies_coalesced: u64,
    /// Total register-file slots before the pass.
    pub regs_before: u64,
    /// Total register-file slots after compaction.
    pub regs_after: u64,
}

impl RegallocStats {
    /// Fraction of static `Copy` ops coalesced away.
    pub fn coalesce_rate(&self) -> f64 {
        if self.copies_static == 0 {
            return 0.0;
        }
        self.copies_coalesced as f64 / self.copies_static as f64
    }

    /// Fraction of register-file slots eliminated by compaction.
    pub fn reg_reduction(&self) -> f64 {
        if self.regs_before == 0 {
            return 0.0;
        }
        1.0 - self.regs_after as f64 / self.regs_before as f64
    }
}

/// Word-granular bitset helpers over `&[u64]` rows.
#[inline]
fn bit_set(row: &mut [u64], i: usize) {
    row[i / 64] |= 1 << (i % 64);
}

fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

fn for_each_bit(row: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in row.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            f(w * 64 + b);
            bits &= bits - 1;
        }
    }
}

/// Flat `rows × words` bit matrix.
struct BitMatrix {
    words: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(rows: usize, words: usize) -> BitMatrix {
        BitMatrix {
            words,
            bits: vec![0; rows * words],
        }
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }

    fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.bits[r * self.words..(r + 1) * self.words]
    }

    /// `row(dst) |= row(src)` for two distinct rows.
    fn or_row(&mut self, dst: usize, src: usize) {
        debug_assert_ne!(dst, src);
        let (lo, hi, dst_first) = if dst < src {
            (dst, src, true)
        } else {
            (src, dst, false)
        };
        let (a, b) = self.bits.split_at_mut(hi * self.words);
        let lo_row = &mut a[lo * self.words..(lo + 1) * self.words];
        let hi_row = &mut b[..self.words];
        if dst_first {
            for (d, s) in lo_row.iter_mut().zip(hi_row.iter()) {
                *d |= *s;
            }
        } else {
            for (d, s) in hi_row.iter_mut().zip(lo_row.iter()) {
                *d |= *s;
            }
        }
    }
}

/// Union-find with path halving.
fn find(parent: &mut [u32], mut r: u32) -> u32 {
    while parent[r as usize] != r {
        let g = parent[parent[r as usize] as usize];
        parent[r as usize] = g;
        r = g;
    }
    r
}

/// Flat-index successors of the op at `i` (`len` = stream length).
/// Non-terminators fall through; branches go to their pre-resolved
/// targets; `Ret` ends the walk. Traps abort execution entirely, so the
/// normal successor edge is the only one liveness needs.
#[inline]
fn successors(op: &DecodedOp, i: usize, mut f: impl FnMut(usize)) {
    match op {
        DecodedOp::Br { target } => f(*target as usize),
        DecodedOp::CondBr { t, f: fe, .. } => {
            f(*t as usize);
            f(*fe as usize);
        }
        DecodedOp::Ret { .. } => {}
        _ => f(i + 1),
    }
}

/// Run copy coalescing + register compaction over one flattened
/// function (pre-fusion: the stream must not contain [`DecodedOp::Fused`]
/// slots yet). Accumulates into `stats`.
pub(crate) fn regalloc_func(df: &mut DecodedFunc, stats: &mut RegallocStats) {
    let nregs = df.num_regs as usize;
    let len = df.ops.len();
    stats.regs_before += nregs as u64;
    let copies = df
        .ops
        .iter()
        .filter(|op| matches!(op, DecodedOp::Copy { .. }))
        .count() as u64;
    stats.copies_static += copies;
    if nregs == 0 || len == 0 {
        stats.regs_after += nregs as u64;
        return;
    }
    let words = nregs.div_ceil(64);

    // Per-op use/def bitsets.
    let mut use_b = BitMatrix::new(len, words);
    let mut def_b = BitMatrix::new(len, words);
    for (i, op) in df.ops.iter().enumerate() {
        op_reads(op, |r| bit_set(use_b.row_mut(i), r as usize));
        op_defs(op, |r| bit_set(def_b.row_mut(i), r as usize));
    }

    // Backward liveness to a fixpoint:
    // live_in(i) = use(i) ∪ (∪_succ live_in(succ) − def(i)).
    let mut live_in = BitMatrix::new(len, words);
    let mut out = vec![0u64; words];
    let mut new_in = vec![0u64; words];
    loop {
        let mut changed = false;
        for i in (0..len).rev() {
            out.iter_mut().for_each(|w| *w = 0);
            successors(&df.ops[i], i, |s| {
                debug_assert!(s < len, "validated streams end in terminators");
                for (o, w) in out.iter_mut().zip(live_in.row(s)) {
                    *o |= *w;
                }
            });
            for (((n, o), u), d) in new_in
                .iter_mut()
                .zip(&out)
                .zip(use_b.row(i))
                .zip(def_b.row(i))
            {
                *n = u | (o & !d);
            }
            let row = live_in.row_mut(i);
            if row != new_in.as_slice() {
                row.copy_from_slice(&new_in);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Interference: for each op, every destination conflicts with every
    // register live-out of the op (minus the copy's own dst/src pair),
    // and same-op destinations conflict pairwise. Parameters conflict
    // pairwise and with everything live-in at entry.
    let mut intf = BitMatrix::new(nregs, words);
    let mut defs: Vec<u32> = Vec::new();
    for i in 0..len {
        let op = &df.ops[i];
        out.iter_mut().for_each(|w| *w = 0);
        successors(op, i, |s| {
            for (o, w) in out.iter_mut().zip(live_in.row(s)) {
                *o |= *w;
            }
        });
        let copy_pair = match op {
            DecodedOp::Copy {
                dst,
                src: Operand::Reg(s),
            } => Some((*dst, s.index() as u32)),
            _ => None,
        };
        defs.clear();
        op_defs(op, |d| defs.push(d));
        for &d in &defs {
            for_each_bit(&out, |r| {
                if r != d as usize && copy_pair != Some((d, r as u32)) {
                    bit_set(intf.row_mut(d as usize), r);
                    bit_set(intf.row_mut(r), d as usize);
                }
            });
        }
        for (k, &d) in defs.iter().enumerate() {
            for &e in &defs[k + 1..] {
                if d != e {
                    bit_set(intf.row_mut(d as usize), e as usize);
                    bit_set(intf.row_mut(e as usize), d as usize);
                }
            }
        }
    }
    for (k, &p) in df.params.iter().enumerate() {
        for_each_bit(live_in.row(0), |r| {
            if r != p as usize {
                bit_set(intf.row_mut(p as usize), r);
                bit_set(intf.row_mut(r), p as usize);
            }
        });
        for &q in &df.params[k + 1..] {
            if p != q {
                bit_set(intf.row_mut(p as usize), q as usize);
                bit_set(intf.row_mut(q as usize), p as usize);
            }
        }
    }

    // Greedy coalescing in stream order. Class membership and class
    // interference live at the representative's rows and are merged on
    // union, so the conflict probe is one bitset intersection.
    let mut parent: Vec<u32> = (0..nregs as u32).collect();
    let mut members = BitMatrix::new(nregs, words);
    for r in 0..nregs {
        bit_set(members.row_mut(r), r);
    }
    for op in &df.ops {
        let DecodedOp::Copy {
            dst,
            src: Operand::Reg(s),
        } = op
        else {
            continue;
        };
        let a = find(&mut parent, *dst) as usize;
        let b = find(&mut parent, s.index() as u32) as usize;
        if a == b {
            continue;
        }
        // Interference was recorded symmetrically, so one direction
        // suffices: no member of `a`'s class conflicts with `b`'s.
        if intersects(intf.row(a), members.row(b)) {
            continue;
        }
        parent[b] = a as u32;
        members.or_row(a, b);
        intf.or_row(a, b);
    }

    // Compact: referenced classes get dense slots in first-use order.
    let mut referenced = vec![false; nregs];
    for op in &df.ops {
        op_reads(op, |r| referenced[r as usize] = true);
        op_defs(op, |r| referenced[r as usize] = true);
    }
    for &p in df.params.iter() {
        referenced[p as usize] = true;
    }
    let mut map = vec![u32::MAX; nregs];
    let mut next = 0u32;
    for r in 0..nregs as u32 {
        if !referenced[r as usize] {
            continue;
        }
        let rep = find(&mut parent, r) as usize;
        if map[rep] == u32::MAX {
            map[rep] = next;
            next += 1;
        }
        map[r as usize] = map[rep];
    }

    // Rewrite the stream through the map, elide no-op copies, and
    // shrink the register file.
    for op in df.ops.iter_mut() {
        rewrite_op(op, &map);
        if let DecodedOp::Copy {
            dst,
            src: Operand::Reg(s),
        } = op
        {
            if *dst == s.index() as u32 {
                *op = DecodedOp::ElidedCopy;
                stats.copies_coalesced += 1;
            }
        }
    }
    df.params = df.params.iter().map(|p| map[*p as usize]).collect();
    df.num_regs = next;
    stats.regs_after += next as u64;
}

#[inline]
fn remap(map: &[u32], r: u32) -> u32 {
    let m = map[r as usize];
    debug_assert_ne!(m, u32::MAX, "referenced register has a slot");
    m
}

fn rewrite_operand(o: &mut Operand, map: &[u32]) {
    if let Operand::Reg(r) = o {
        *r = Reg(remap(map, r.index() as u32));
    }
}

/// Remap every register field of `op` (reads and writes).
fn rewrite_op(op: &mut DecodedOp, map: &[u32]) {
    use DecodedOp as D;
    match op {
        D::Bin { dst, lhs, rhs, .. }
        | D::BinI { dst, lhs, rhs, .. }
        | D::Cmp { dst, lhs, rhs, .. }
        | D::CmpI { dst, lhs, rhs, .. } => {
            *dst = remap(map, *dst);
            rewrite_operand(lhs, map);
            rewrite_operand(rhs, map);
        }
        D::Un { dst, src, .. }
        | D::Cast { dst, src, .. }
        | D::Copy { dst, src }
        | D::Splat { dst, src, .. }
        | D::Reduce { dst, src, .. } => {
            *dst = remap(map, *dst);
            rewrite_operand(src, map);
        }
        D::Fma { dst, a, b, c, .. } => {
            *dst = remap(map, *dst);
            rewrite_operand(a, map);
            rewrite_operand(b, map);
            rewrite_operand(c, map);
        }
        D::Load {
            dst, addr, stride, ..
        } => {
            *dst = remap(map, *dst);
            rewrite_operand(addr, map);
            rewrite_operand(stride, map);
        }
        D::Store {
            addr, val, stride, ..
        } => {
            rewrite_operand(addr, map);
            rewrite_operand(val, map);
            rewrite_operand(stride, map);
        }
        D::PtrAdd { dst, base, offset } => {
            *dst = remap(map, *dst);
            rewrite_operand(base, map);
            rewrite_operand(offset, map);
        }
        D::Select { dst, cond, t, f } => {
            *dst = remap(map, *dst);
            rewrite_operand(cond, map);
            rewrite_operand(t, map);
            rewrite_operand(f, map);
        }
        D::CallFunc { dsts, args, .. } | D::CallHost { dsts, args, .. } => {
            for d in dsts.iter_mut() {
                *d = Reg(remap(map, d.index() as u32));
            }
            for a in args.iter_mut() {
                rewrite_operand(a, map);
            }
        }
        D::CondBr { cond, .. } => rewrite_operand(cond, map),
        D::Ret { vals } => {
            for v in vals.iter_mut() {
                rewrite_operand(v, map);
            }
        }
        D::ProfCount(_) | D::Br { .. } | D::ElidedCopy => {}
        D::Fused(_) => unreachable!("regalloc runs before fusion"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{DecodeConfig, DecodedModule};
    use mperf_ir::compile;

    fn decode_no_fuse(src: &str, optimize: bool) -> DecodedModule {
        let mut module = compile("t", src).unwrap();
        if optimize {
            mperf_ir::transform::PassManager::standard().run(&mut module);
        }
        DecodedModule::decode_cfg(
            &module,
            DecodeConfig {
                fuse: false,
                regalloc: true,
            },
        )
    }

    #[test]
    fn loop_assignment_copies_coalesce() {
        // Every `var = expr` copy in the loop body and back edge is
        // coalescible: the temporary dies at the copy.
        let src = r#"
            fn spin(n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    s = (s ^ i) + (i >> 2);
                }
                return s;
            }
        "#;
        let dec = decode_no_fuse(src, true);
        let st = &dec.regalloc;
        assert!(st.copies_static >= 2, "{st:?}");
        assert!(st.copies_coalesced >= 2, "{st:?}");
        assert!(st.regs_after < st.regs_before, "{st:?}");
        let f = &dec.funcs[0];
        // Every register-to-register copy coalesces (the loop-body and
        // back-edge assignments); only immediate-initializer copies may
        // survive as real data movement.
        assert!(
            !f.ops.iter().any(|op| matches!(
                op,
                DecodedOp::Copy {
                    src: Operand::Reg(_),
                    ..
                }
            )),
            "reg-to-reg copies all coalesce"
        );
        assert!(f.ops.iter().any(|op| matches!(op, DecodedOp::ElidedCopy)));
    }

    #[test]
    fn interfering_copy_survives() {
        // The Fibonacci shuffle: `t` snapshots `cur` before `cur` is
        // redefined while `t` is still live, and `prev` is redefined
        // while holding a value `t`'s def range overlaps — those ranges
        // conflict with different values, so at least one shuffle copy
        // must survive as real data movement.
        let src = r#"
            fn fib(n: i64) -> i64 {
                var prev: i64 = 0;
                var cur: i64 = 1;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    var t: i64 = cur;
                    cur = cur + prev;
                    prev = t;
                }
                return cur;
            }
        "#;
        let dec = decode_no_fuse(src, false);
        let f = &dec.funcs[0];
        assert!(
            f.ops.iter().any(|op| matches!(
                op,
                DecodedOp::Copy {
                    src: Operand::Reg(_),
                    ..
                }
            )),
            "interfering shuffle copy must survive: {:?}",
            dec.regalloc
        );
    }

    #[test]
    fn stream_shape_is_preserved() {
        // The pass rewrites in place: op count, pcs, and block entries
        // are untouched; only registers and Copy→ElidedCopy change.
        let src = r#"
            fn f(p: *i64, n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) { s = s + p[i % 8]; }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let plain = DecodedModule::decode_cfg(
            &module,
            DecodeConfig {
                fuse: false,
                regalloc: false,
            },
        );
        let ra = DecodedModule::decode_cfg(
            &module,
            DecodeConfig {
                fuse: false,
                regalloc: true,
            },
        );
        for (fp, fr) in plain.funcs.iter().zip(&ra.funcs) {
            assert_eq!(fp.ops.len(), fr.ops.len());
            assert_eq!(fp.pcs, fr.pcs);
            assert_eq!(fp.block_entry, fr.block_entry);
            assert!(fr.num_regs <= fp.num_regs);
            assert_eq!(fp.params.len(), fr.params.len());
        }
    }

    #[test]
    fn params_keep_distinct_slots() {
        let src = "fn f(a: i64, b: i64, c: i64) -> i64 { return a + b + c; }";
        let dec = decode_no_fuse(src, false);
        let f = &dec.funcs[0];
        let mut seen = std::collections::HashSet::new();
        for p in f.params.iter() {
            assert!(seen.insert(*p), "params must stay distinct: {:?}", f.params);
            assert!(*p < f.num_regs);
        }
    }
}
