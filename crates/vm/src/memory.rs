//! Flat guest memory with a bump allocator.

use crate::error::VmError;

/// Guest address space: a flat byte array. Address 0 is kept unmapped so
/// null-pointer dereferences trap.
#[derive(Debug, Clone)]
pub struct GuestMemory {
    bytes: Vec<u8>,
    /// Bump-allocation cursor.
    brk: u64,
}

/// Reserved low region (null guard).
const NULL_GUARD: u64 = 4096;

impl GuestMemory {
    /// A guest memory of `size` bytes.
    ///
    /// # Panics
    /// Panics if `size` is smaller than the null guard region.
    pub fn new(size: usize) -> GuestMemory {
        assert!(size as u64 > NULL_GUARD * 2, "guest memory too small");
        GuestMemory {
            bytes: vec![0; size],
            brk: NULL_GUARD,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Allocate `bytes` with `align` alignment; returns the guest address.
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] when the heap is exhausted.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64, VmError> {
        let align = align.max(1);
        let base = self.brk.div_ceil(align) * align;
        let end = base
            .checked_add(bytes)
            .ok_or(VmError::OutOfBounds { addr: base, bytes })?;
        if end > self.bytes.len() as u64 {
            return Err(VmError::OutOfBounds { addr: base, bytes });
        }
        self.brk = end;
        Ok(base)
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.brk - NULL_GUARD
    }

    /// Whether `[addr, addr + bytes)` is a mapped, non-null-guard range —
    /// i.e. whether a read or write there would succeed. Fused
    /// superinstructions use this as a pre-flight probe so a would-trap
    /// access bails to unfused execution *before* any state changes.
    #[inline]
    pub fn in_bounds(&self, addr: u64, bytes: u64) -> bool {
        match addr.checked_add(bytes) {
            Some(end) => addr >= NULL_GUARD && end <= self.bytes.len() as u64,
            None => false,
        }
    }

    fn check(&self, addr: u64, bytes: u64) -> Result<usize, VmError> {
        let end = addr
            .checked_add(bytes)
            .ok_or(VmError::OutOfBounds { addr, bytes })?;
        if addr < NULL_GUARD || end > self.bytes.len() as u64 {
            return Err(VmError::OutOfBounds { addr, bytes });
        }
        Ok(addr as usize)
    }

    /// Read `N` bytes at `addr`.
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region (incl. the null
    /// guard page).
    pub fn read<const N: usize>(&self, addr: u64) -> Result<[u8; N], VmError> {
        let i = self.check(addr, N as u64)?;
        Ok(self.bytes[i..i + N].try_into().expect("length checked"))
    }

    /// Write bytes at `addr`.
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), VmError> {
        let i = self.check(addr, data.len() as u64)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a byte slice (for host-side inspection).
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn slice(&self, addr: u64, len: u64) -> Result<&[u8], VmError> {
        let i = self.check(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Typed helpers.
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn read_u64(&self, addr: u64) -> Result<u64, VmError> {
        Ok(u64::from_le_bytes(self.read::<8>(addr)?))
    }

    /// See [`GuestMemory::read_u64`].
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), VmError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// See [`GuestMemory::read_u64`].
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn read_f32(&self, addr: u64) -> Result<f32, VmError> {
        Ok(f32::from_le_bytes(self.read::<4>(addr)?))
    }

    /// See [`GuestMemory::read_u64`].
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn write_f32(&mut self, addr: u64, v: f32) -> Result<(), VmError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// See [`GuestMemory::read_u64`].
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn read_f64(&self, addr: u64) -> Result<f64, VmError> {
        Ok(f64::from_le_bytes(self.read::<8>(addr)?))
    }

    /// See [`GuestMemory::read_u64`].
    ///
    /// # Errors
    /// [`VmError::OutOfBounds`] outside the mapped region.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), VmError> {
        self.write(addr, &v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_aligns_and_advances() {
        let mut m = GuestMemory::new(1 << 20);
        let a = m.alloc(10, 8).unwrap();
        assert_eq!(a % 8, 0);
        let b = m.alloc(16, 64).unwrap();
        assert_eq!(b % 64, 0);
        assert!(b > a);
        assert!(m.allocated() >= 26);
    }

    #[test]
    fn null_guard_traps() {
        let m = GuestMemory::new(1 << 20);
        assert!(m.read_u64(0).is_err());
        assert!(m.read_u64(8).is_err());
        assert!(m.read_u64(4096).is_ok());
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = GuestMemory::new(1 << 20);
        let end = m.size() as u64;
        assert!(m.read_u64(end - 4).is_err());
        assert!(m.write_u64(end, 1).is_err());
        assert!(m.read_u64(u64::MAX - 2).is_err(), "overflow-safe");
    }

    #[test]
    fn heap_exhaustion_errors() {
        let mut m = GuestMemory::new(64 * 1024);
        assert!(m.alloc(1 << 20, 8).is_err());
    }

    #[test]
    fn typed_roundtrips() {
        let mut m = GuestMemory::new(1 << 20);
        let a = m.alloc(64, 8).unwrap();
        m.write_u64(a, 0xdead_beef).unwrap();
        assert_eq!(m.read_u64(a).unwrap(), 0xdead_beef);
        m.write_f32(a + 8, 1.5).unwrap();
        assert_eq!(m.read_f32(a + 8).unwrap(), 1.5);
        m.write_f64(a + 16, -2.25).unwrap();
        assert_eq!(m.read_f64(a + 16).unwrap(), -2.25);
        assert_eq!(m.slice(a, 4).unwrap().len(), 4);
    }
}
