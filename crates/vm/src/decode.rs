//! One-time pre-decode of a [`Module`] into a flat, index-driven form.
//!
//! The reference interpreter re-resolves `module → func → block` and
//! clones each [`Inst`] (including the `Vec`-carrying `Call` payloads)
//! on every executed step. This pass pays those costs once per module:
//! each function's blocks are flattened into a dense `Vec<DecodedOp>`
//! with
//!
//! - precomputed synthetic `pc`s (bit-identical to the reference
//!   interpreter's `pc_of`, so PMU sample IPs and branch-predictor
//!   indexing are unchanged),
//! - pre-resolved jump targets as flat op indices,
//! - precomputed [`OpClass`] and FLOP counts,
//! - host callees pre-classified (the `mperf.*` notifications become
//!   enum variants; other host functions get dense name-table ids).
//!
//! The decoded program is immutable and borrows nothing from the module,
//! so it can be shared (`Arc`) across many short-lived [`crate::Vm`]s
//! executing the same workload — including VMs running concurrently on
//! sweep worker threads. [`decode_module`] produces that shared decode
//! directly, without constructing a throwaway VM.

use crate::interp::pc_of;
use std::sync::Arc;
use crate::lower::{bin_class, bin_flops, cast_class, un_class, un_flops};
use mperf_ir::{
    BinOp, BlockId, Callee, CastKind, CmpOp, FuncId, Inst, MemTy, Module, Operand, ProfCounts,
    Reg, ReduceOp, Term, Ty, UnOp,
};
use mperf_sim::machine_op::OpClass;

/// A pre-resolved host call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostTarget {
    /// `mperf.loop_begin(region_id)`.
    LoopBegin,
    /// `mperf.loop_end(region_id)`.
    LoopEnd,
    /// `mperf.is_instrumented()`.
    IsInstrumented,
    /// Any other host function: index into [`DecodedModule::host_names`].
    Named(u32),
}

/// One flattened operation. Terminators are ops too, so a function body
/// is a single dense `Vec` and the hot loop is one indexed fetch.
#[derive(Debug, Clone)]
pub enum DecodedOp {
    Bin {
        op: BinOp,
        class: OpClass,
        flops: u32,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    Cmp {
        op: CmpOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    Un {
        op: UnOp,
        class: OpClass,
        flops: u32,
        dst: u32,
        src: Operand,
    },
    Fma {
        class: OpClass,
        flops: u32,
        dst: u32,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    Load {
        class: OpClass,
        dst: u32,
        addr: Operand,
        mem: MemTy,
        lanes: u8,
        stride: Operand,
    },
    Store {
        class: OpClass,
        addr: Operand,
        val: Operand,
        mem: MemTy,
        lanes: u8,
        stride: Operand,
    },
    PtrAdd {
        dst: u32,
        base: Operand,
        offset: Operand,
    },
    Select {
        dst: u32,
        cond: Operand,
        t: Operand,
        f: Operand,
    },
    Cast {
        kind: CastKind,
        class: OpClass,
        dst_ty: Ty,
        dst: u32,
        src: Operand,
    },
    Copy {
        dst: u32,
        src: Operand,
    },
    Splat {
        elem: Ty,
        lanes: u8,
        dst: u32,
        src: Operand,
    },
    Reduce {
        op: ReduceOp,
        flops: u32,
        dst: u32,
        src: Operand,
    },
    CallFunc {
        callee: u32,
        dsts: Box<[Reg]>,
        args: Box<[Operand]>,
    },
    CallHost {
        target: HostTarget,
        dsts: Box<[Reg]>,
        args: Box<[Operand]>,
    },
    ProfCount(ProfCounts),
    Br {
        target: u32,
    },
    CondBr {
        cond: Operand,
        t: u32,
        f: u32,
    },
    Ret {
        vals: Box<[Operand]>,
    },
}

/// One flattened function.
#[derive(Debug, Clone)]
pub struct DecodedFunc {
    /// All blocks' instructions + terminators, flattened in block order.
    pub ops: Vec<DecodedOp>,
    /// Synthetic pc per op (parallel to `ops`); identical to the
    /// reference interpreter's `pc_of(func, block, idx)`.
    pub pcs: Vec<u64>,
    /// Flat op index of each block's first op.
    pub block_entry: Vec<u32>,
    /// Register-file size.
    pub num_regs: u32,
    /// Parameter register indices, in call-argument order.
    pub params: Box<[u32]>,
}

/// A fully pre-decoded module, ready for index-driven execution.
#[derive(Debug, Clone)]
pub struct DecodedModule {
    pub funcs: Vec<DecodedFunc>,
    /// Dense table of non-`mperf.*` host callee names.
    pub host_names: Vec<String>,
}

impl DecodedModule {
    /// Decode every function of `module`.
    pub fn decode(module: &Module) -> DecodedModule {
        let mut hosts = HostTable::default();
        let funcs = module
            .iter_funcs()
            .map(|(fid, _)| decode_func(module, fid, &mut hosts))
            .collect();
        DecodedModule {
            funcs,
            host_names: hosts.names,
        }
    }
}

/// Decode `module` once into the `Arc`-shared form every VM (and every
/// sweep worker thread) executing it can reuse via
/// [`crate::Vm::set_decoded`]. This is the sweep entry point: callers
/// decode each workload exactly once, then fan its phase/platform jobs
/// out over threads that all share this one decode.
pub fn decode_module(module: &Module) -> Arc<DecodedModule> {
    Arc::new(DecodedModule::decode(module))
}

#[derive(Default)]
struct HostTable {
    names: Vec<String>,
}

impl HostTable {
    fn resolve(&mut self, name: &str) -> HostTarget {
        match name {
            "mperf.loop_begin" => HostTarget::LoopBegin,
            "mperf.loop_end" => HostTarget::LoopEnd,
            "mperf.is_instrumented" => HostTarget::IsInstrumented,
            _ => {
                let id = match self.names.iter().position(|n| n == name) {
                    Some(i) => i,
                    None => {
                        self.names.push(name.to_string());
                        self.names.len() - 1
                    }
                };
                HostTarget::Named(id as u32)
            }
        }
    }
}

fn decode_func(module: &Module, fid: FuncId, hosts: &mut HostTable) -> DecodedFunc {
    let f = module.func(fid);
    // Pass 1: flat entry offset of every block (insts + its terminator).
    let mut block_entry = Vec::with_capacity(f.num_blocks());
    let mut off = 0u32;
    for b in &f.blocks {
        block_entry.push(off);
        off += b.insts.len() as u32 + 1;
    }

    // Pass 2: emit ops with pre-resolved targets and classes.
    let mut ops = Vec::with_capacity(off as usize);
    let mut pcs = Vec::with_capacity(off as usize);
    for (bidx, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bidx as u32);
        for (idx, inst) in b.insts.iter().enumerate() {
            pcs.push(pc_of(fid, bid, idx));
            ops.push(decode_inst(f, inst, hosts));
        }
        pcs.push(pc_of(fid, bid, b.insts.len()));
        ops.push(decode_term(&b.term, &block_entry));
    }

    DecodedFunc {
        ops,
        pcs,
        block_entry,
        num_regs: f.num_regs() as u32,
        params: f.params.iter().map(|p| p.index() as u32).collect(),
    }
}

fn decode_inst(f: &mperf_ir::Function, inst: &Inst, hosts: &mut HostTable) -> DecodedOp {
    match inst {
        Inst::Bin { op, ty, dst, lhs, rhs } => DecodedOp::Bin {
            op: *op,
            class: bin_class(*op, *ty),
            flops: bin_flops(*op, *ty),
            dst: dst.index() as u32,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Cmp { op, dst, lhs, rhs, .. } => DecodedOp::Cmp {
            op: *op,
            dst: dst.index() as u32,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Un { op, ty, dst, src } => DecodedOp::Un {
            op: *op,
            class: un_class(*op, *ty),
            flops: un_flops(*op, *ty),
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Fma { ty, dst, a, b, c } => DecodedOp::Fma {
            class: if ty.is_vector() {
                OpClass::VecFma
            } else {
                OpClass::FpFma
            },
            flops: 2 * ty.lanes() as u32,
            dst: dst.index() as u32,
            a: *a,
            b: *b,
            c: *c,
        },
        Inst::Load { dst, addr, mem, lanes, stride } => DecodedOp::Load {
            class: if *lanes > 1 {
                OpClass::VecLoad
            } else {
                OpClass::Load
            },
            dst: dst.index() as u32,
            addr: *addr,
            mem: *mem,
            lanes: *lanes,
            stride: *stride,
        },
        Inst::Store { addr, val, mem, lanes, stride } => DecodedOp::Store {
            class: if *lanes > 1 {
                OpClass::VecStore
            } else {
                OpClass::Store
            },
            addr: *addr,
            val: *val,
            mem: *mem,
            lanes: *lanes,
            stride: *stride,
        },
        Inst::PtrAdd { dst, base, offset } => DecodedOp::PtrAdd {
            dst: dst.index() as u32,
            base: *base,
            offset: *offset,
        },
        Inst::Select { dst, cond, t, f, .. } => DecodedOp::Select {
            dst: dst.index() as u32,
            cond: *cond,
            t: *t,
            f: *f,
        },
        Inst::Cast { kind, dst, src } => DecodedOp::Cast {
            kind: *kind,
            class: cast_class(*kind),
            dst_ty: f.ty_of(*dst),
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Copy { dst, src, .. } => DecodedOp::Copy {
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Splat { ty, dst, src } => DecodedOp::Splat {
            elem: ty.elem(),
            lanes: ty.lanes(),
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Reduce { op, dst, src } => DecodedOp::Reduce {
            op: *op,
            // The reference interpreter derives this from the runtime
            // value's lane count; types are enforced by the verifier, so
            // the static operand type gives the identical number.
            flops: match op {
                ReduceOp::FAdd => (f.operand_ty(*src).lanes() as u32).saturating_sub(1),
                ReduceOp::Add => 0,
            },
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Call { dsts, callee, args } => {
            let dsts: Box<[Reg]> = dsts.clone().into_boxed_slice();
            let args: Box<[Operand]> = args.clone().into_boxed_slice();
            match callee {
                Callee::Func(fid) => DecodedOp::CallFunc {
                    callee: fid.0,
                    dsts,
                    args,
                },
                Callee::Host(name) => DecodedOp::CallHost {
                    target: hosts.resolve(name),
                    dsts,
                    args,
                },
            }
        }
        Inst::ProfCount(counts) => DecodedOp::ProfCount(*counts),
    }
}

fn decode_term(term: &Term, block_entry: &[u32]) -> DecodedOp {
    match term {
        Term::Br(b) => DecodedOp::Br {
            target: block_entry[b.index()],
        },
        Term::CondBr { cond, t, f } => DecodedOp::CondBr {
            cond: *cond,
            t: block_entry[t.index()],
            f: block_entry[f.index()],
        },
        Term::Ret(vals) => DecodedOp::Ret {
            vals: vals.clone().into_boxed_slice(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mperf_ir::compile;

    #[test]
    fn flattening_covers_every_block_and_terminator() {
        let src = r#"
            fn f(n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) { s = s + i; }
                return s;
            }
        "#;
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode(&module);
        let f = module.func_by_name("f").unwrap();
        let d = &dec.funcs[module.func_id("f").unwrap().index()];
        let expected: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
        assert_eq!(d.ops.len(), expected);
        assert_eq!(d.pcs.len(), expected);
        assert_eq!(d.block_entry.len(), f.num_blocks());
        assert_eq!(d.num_regs as usize, f.num_regs());
    }

    #[test]
    fn jump_targets_resolve_to_block_entries() {
        let src = "fn f(c: bool) -> i64 { if (c) { return 1; } return 2; }";
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode(&module);
        let d = &dec.funcs[0];
        for op in &d.ops {
            match op {
                DecodedOp::Br { target } => {
                    assert!(d.block_entry.contains(target));
                }
                DecodedOp::CondBr { t, f, .. } => {
                    assert!(d.block_entry.contains(t));
                    assert!(d.block_entry.contains(f));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn host_targets_pre_resolve() {
        let src = r#"
            extern fn helper(v: i64) -> i64;
            fn f(x: i64) -> i64 { return helper(x); }
        "#;
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode(&module);
        assert_eq!(dec.host_names, vec!["helper".to_string()]);
        let named = dec.funcs[0].ops.iter().any(|op| {
            matches!(
                op,
                DecodedOp::CallHost {
                    target: HostTarget::Named(0),
                    ..
                }
            )
        });
        assert!(named, "helper call resolves to dense id 0");
    }
}
