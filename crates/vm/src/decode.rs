//! One-time pre-decode of a [`Module`] into a flat, index-driven form.
//!
//! The reference interpreter re-resolves `module → func → block` and
//! clones each [`Inst`] (including the `Vec`-carrying `Call` payloads)
//! on every executed step. This pass pays those costs once per module:
//! each function's blocks are flattened into a dense `Vec<DecodedOp>`
//! with
//!
//! - precomputed synthetic `pc`s (bit-identical to the reference
//!   interpreter's `pc_of`, so PMU sample IPs and branch-predictor
//!   indexing are unchanged),
//! - pre-resolved jump targets as flat op indices,
//! - precomputed [`OpClass`] and FLOP counts,
//! - host callees pre-classified (the `mperf.*` notifications become
//!   enum variants; other host functions get dense name-table ids).
//!
//! The decoded program is immutable and borrows nothing from the module,
//! so it can be shared (`Arc`) across many short-lived [`crate::Vm`]s
//! executing the same workload — including VMs running concurrently on
//! sweep worker threads. [`decode_module`] produces that shared decode
//! directly, without constructing a throwaway VM.
//!
//! ## Register allocation
//!
//! After flattening, the copy-coalescing pass ([`crate::regalloc`])
//! merges the source and destination registers of every `copy` whose
//! live ranges do not interfere — the producer then writes directly
//! into the consumer's slot, and the `Copy` slot is rewritten to the
//! data-free [`DecodedOp::ElidedCopy`] (same `Move` retire at the same
//! pc, so observables are untouched). [`RegallocStats`] on the decode
//! records the static coalescing rate; `DecodeConfig { regalloc }` /
//! `--no-regalloc` is the escape hatch.
//!
//! ## Superinstruction fusion
//!
//! After register allocation, a peephole pass ([`fuse_func`]) rewrites
//! the hottest adjacent op pairs/triples into superinstructions
//! ([`Fused`], wrapped in a [`FusedSite`] that records the covered slot
//! window): slot `i` becomes [`DecodedOp::Fused`] pointing into a
//! per-function side table, while slots `i+1..i+width` *keep their
//! original unfused ops*. That layout preserves every pre-resolved
//! branch target (targets always land on pattern starts — see the
//! mid-pattern ineligibility check) and gives the interpreter a bail
//! path: when a superinstruction cannot take its fast path (fuel about
//! to run out, a memory access that would trap, or a PMU counter near
//! overflow), it executes just its first constituent unfused and lets
//! the main loop resume at the original `i+1` op — bit-identical to
//! never having fused.
//!
//! Elided copies are *transparent glue* to the matcher: a pattern's
//! constituents may be separated by (or followed by) `ElidedCopy`
//! slots, which join the superinstruction's retire batch as `Move`
//! ticks at their own pcs — so `inc+cmp+br` fires across a coalesced
//! back-edge copy, and a `bin` whose former copy was elided still
//! batches as `bin+copy`. The [`FusedSite::elided`] mask records which
//! covered slots are elided.
//!
//! A decode-time read-count analysis decides which intermediate register
//! writes a fused handler may skip: a pattern-internal destination is
//! elided only when *every* read of that register in the function is one
//! the handler substitutes locally. [`FusionStats`] records per-pattern
//! site counts, static op coverage, and candidates rejected because a
//! branch target lands mid-pattern. See the `mperf-vm` crate docs for
//! the pattern table and the observables-invariance contract.
//!
//! ## Stream validation
//!
//! [`validate_func`] checks every index the decoded interpreter uses
//! without bounds checks — jump targets, register numbers, callee ids,
//! host ids, fused-table indices, and the terminator-last invariant —
//! once per decode, so the hot loop's unchecked fetches are sound.

use crate::interp::pc_of;
use crate::lower::{bin_class, bin_flops, cast_class, un_class, un_flops};
use crate::regalloc::{regalloc_func, RegallocStats};
use mperf_ir::{
    BinOp, BlockId, Callee, CastKind, CmpOp, FuncId, Inst, MemTy, Module, Operand, ProfCounts,
    ReduceOp, Reg, Term, Ty, UnOp,
};
use mperf_sim::machine_op::OpClass;
use std::sync::Arc;

/// A pre-resolved host call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostTarget {
    /// `mperf.loop_begin(region_id)`.
    LoopBegin,
    /// `mperf.loop_end(region_id)`.
    LoopEnd,
    /// `mperf.is_instrumented()`.
    IsInstrumented,
    /// Any other host function: index into [`DecodedModule::host_names`].
    Named(u32),
}

/// One flattened operation. Terminators are ops too, so a function body
/// is a single dense `Vec` and the hot loop is one indexed fetch.
#[derive(Debug, Clone)]
pub enum DecodedOp {
    Bin {
        op: BinOp,
        class: OpClass,
        flops: u32,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// Type-specialized scalar-integer binary op (`ty ∈ {i64, ptr}`): the
    /// handler moves raw `i64`s instead of cloning `Value` enums. The
    /// dominant op of compiled integer code.
    BinI {
        op: BinOp,
        class: OpClass,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    Cmp {
        op: CmpOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// Type-specialized scalar-integer compare (`ty ∈ {i64, ptr}`).
    CmpI {
        op: CmpOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    Un {
        op: UnOp,
        class: OpClass,
        flops: u32,
        dst: u32,
        src: Operand,
    },
    Fma {
        class: OpClass,
        flops: u32,
        dst: u32,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    Load {
        class: OpClass,
        dst: u32,
        addr: Operand,
        mem: MemTy,
        lanes: u8,
        stride: Operand,
    },
    Store {
        class: OpClass,
        addr: Operand,
        val: Operand,
        mem: MemTy,
        lanes: u8,
        stride: Operand,
    },
    PtrAdd {
        dst: u32,
        base: Operand,
        offset: Operand,
    },
    Select {
        dst: u32,
        cond: Operand,
        t: Operand,
        f: Operand,
    },
    Cast {
        kind: CastKind,
        class: OpClass,
        dst_ty: Ty,
        dst: u32,
        src: Operand,
    },
    Copy {
        dst: u32,
        src: Operand,
    },
    Splat {
        elem: Ty,
        lanes: u8,
        dst: u32,
        src: Operand,
    },
    Reduce {
        op: ReduceOp,
        flops: u32,
        dst: u32,
        src: Operand,
    },
    CallFunc {
        callee: u32,
        dsts: Box<[Reg]>,
        args: Box<[Operand]>,
    },
    CallHost {
        target: HostTarget,
        dsts: Box<[Reg]>,
        args: Box<[Operand]>,
    },
    ProfCount(ProfCounts),
    /// A `Copy` whose source and destination registers were coalesced
    /// by the register-allocation pass: the data movement is gone, but
    /// the op still retires the same `Move` machine op at the same pc,
    /// keeping instruction counts, cycles, PMU state, and sampling IPs
    /// bit-identical to the uncoalesced stream. Reads and writes no
    /// registers.
    ElidedCopy,
    Br {
        target: u32,
    },
    CondBr {
        cond: Operand,
        t: u32,
        f: u32,
    },
    Ret {
        vals: Box<[Operand]>,
    },
    /// A fused superinstruction: index into [`DecodedFunc::fused`]. The
    /// constituent ops' original slots (`i+1..i+width`) keep their
    /// unfused forms so a bailing handler can fall back to op-at-a-time
    /// execution without any recovery table.
    Fused(u32),
}

/// The superinstruction patterns the decode-time peephole pass fuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusePattern {
    /// `ptradd` + scalar `load` through the computed address.
    AddrLoad,
    /// `ptradd` + scalar `store` through the computed address.
    AddrStore,
    /// `cmp` + `condbr` on its result (compare-and-branch).
    CmpBranch,
    /// Scalar `load` + binary op consuming the loaded value.
    LoadOp,
    /// Binary op + `copy` of its result (every `var = expr` assignment).
    BinCopy,
    /// Scalar integer `add`/`sub` + `cmp` + `condbr`: the counted-loop
    /// back-edge (increment/decrement, test, branch).
    IncCmpBranch,
    /// `ptradd` + scalar `load` + binary op: the full indexed-read chain.
    AddrLoadOp,
}

impl FusePattern {
    /// Number of patterns (table size).
    pub const COUNT: usize = 7;

    /// All patterns, in [`FusePattern::index`] order.
    pub const ALL: [FusePattern; FusePattern::COUNT] = [
        FusePattern::AddrLoad,
        FusePattern::AddrStore,
        FusePattern::CmpBranch,
        FusePattern::LoadOp,
        FusePattern::BinCopy,
        FusePattern::IncCmpBranch,
        FusePattern::AddrLoadOp,
    ];

    /// Dense index for stat tables.
    pub fn index(self) -> usize {
        match self {
            FusePattern::AddrLoad => 0,
            FusePattern::AddrStore => 1,
            FusePattern::CmpBranch => 2,
            FusePattern::LoadOp => 3,
            FusePattern::BinCopy => 4,
            FusePattern::IncCmpBranch => 5,
            FusePattern::AddrLoadOp => 6,
        }
    }

    /// Stable short name (reports, BENCH json).
    pub fn name(self) -> &'static str {
        match self {
            FusePattern::AddrLoad => "addr+load",
            FusePattern::AddrStore => "addr+store",
            FusePattern::CmpBranch => "cmp+br",
            FusePattern::LoadOp => "load+op",
            FusePattern::BinCopy => "bin+copy",
            FusePattern::IncCmpBranch => "inc+cmp+br",
            FusePattern::AddrLoadOp => "addr+load+op",
        }
    }

    /// Number of constituent ops the pattern covers.
    pub fn width(self) -> usize {
        match self {
            FusePattern::IncCmpBranch | FusePattern::AddrLoadOp => 3,
            _ => 2,
        }
    }
}

/// Decode-time fusion statistics, recorded on [`DecodedModule`].
/// `sites`/`ops_fused` describe the *static* stream; dynamic coverage
/// (fraction of executed MIR ops that ran fused) is tracked per-VM in
/// [`crate::interp::FusionDynamics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Fusion sites created, per pattern ([`FusePattern::index`] order).
    pub sites: [u64; FusePattern::COUNT],
    /// Total decoded ops across all functions (pre-fusion view).
    pub ops_total: u64,
    /// Ops covered by fusion sites (each site covers its width).
    pub ops_fused: u64,
    /// Pattern candidates rejected because a branch target lands in the
    /// pattern's interior. With the current block flattening this cannot
    /// occur (patterns never span a terminator, and targets only resolve
    /// to block entries), but the pass counts rather than silently skips
    /// so coverage stays explainable if a future layout relaxes that.
    pub ineligible_mid_target: u64,
}

impl FusionStats {
    /// Total fusion sites across all patterns.
    pub fn total_sites(&self) -> u64 {
        self.sites.iter().sum()
    }

    /// Fraction of static ops covered by fusion sites.
    pub fn static_coverage(&self) -> f64 {
        if self.ops_total == 0 {
            return 0.0;
        }
        self.ops_fused as f64 / self.ops_total as f64
    }
}

/// One fused superinstruction's pre-resolved payload. Fields mirror the
/// constituent [`DecodedOp`]s; `write_*` flags mark intermediate
/// destinations that must still be written because something outside the
/// pattern reads them (when `false`, the only readers are substituted
/// locally by the handler, so the register-stack write is skipped).
///
/// Only trap-free interiors are fused: integer `Div`/`Rem` never fuses,
/// loads/stores fuse only in scalar (`lanes == 1`) form and their fast
/// path pre-checks bounds, bailing to unfused execution on a would-trap
/// access so trap points and partial state stay bit-identical.
#[derive(Debug, Clone)]
pub enum Fused {
    /// `ptradd a_dst = base + offset; load dst = [a_dst]`.
    AddrLoad {
        a_dst: u32,
        base: Operand,
        offset: Operand,
        write_addr: bool,
        dst: u32,
        mem: MemTy,
    },
    /// `ptradd a_dst = base + offset; store [a_dst] = val`.
    AddrStore {
        a_dst: u32,
        base: Operand,
        offset: Operand,
        write_addr: bool,
        val: Operand,
        mem: MemTy,
    },
    /// `cmp c_dst = lhs <op> rhs; condbr c_dst ? t : f`. `int` marks a
    /// scalar-integer compare (from [`DecodedOp::CmpI`]): the handler
    /// compares raw `i64`s without `Value` clones.
    CmpBranch {
        op: CmpOp,
        c_dst: u32,
        lhs: Operand,
        rhs: Operand,
        int: bool,
        write_cmp: bool,
        t: u32,
        f: u32,
    },
    /// `load l_dst = [addr]; bin b_dst = lhs <op> rhs` (bin reads l_dst).
    /// `int` = integer memory type consumed by an integer bin: the whole
    /// chain runs on raw `i64`s.
    LoadOp {
        l_dst: u32,
        addr: Operand,
        mem: MemTy,
        int: bool,
        write_load: bool,
        op: BinOp,
        class: OpClass,
        flops: u32,
        b_dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `bin b_dst = lhs <op> rhs; copy dst = b_dst`.
    BinCopy {
        op: BinOp,
        class: OpClass,
        flops: u32,
        int: bool,
        b_dst: u32,
        lhs: Operand,
        rhs: Operand,
        write_bin: bool,
        dst: u32,
    },
    /// `bin i_dst = i_lhs ± i_rhs; cmp c_dst = ...; condbr c_dst` — the
    /// counted-loop back edge. The induction register is always written
    /// (it survives iterations by construction); `c_int` marks an
    /// integer test.
    IncCmpBranch {
        i_op: BinOp,
        i_dst: u32,
        i_lhs: Operand,
        i_rhs: Operand,
        c_op: CmpOp,
        c_dst: u32,
        c_lhs: Operand,
        c_rhs: Operand,
        c_int: bool,
        write_cmp: bool,
        t: u32,
        f: u32,
    },
    /// `ptradd; load; bin` — the full indexed-read chain.
    AddrLoadOp {
        a_dst: u32,
        base: Operand,
        offset: Operand,
        write_addr: bool,
        l_dst: u32,
        mem: MemTy,
        int: bool,
        write_load: bool,
        op: BinOp,
        class: OpClass,
        flops: u32,
        b_dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
}

impl Fused {
    /// The pattern this superinstruction instantiates.
    pub fn pattern(&self) -> FusePattern {
        match self {
            Fused::AddrLoad { .. } => FusePattern::AddrLoad,
            Fused::AddrStore { .. } => FusePattern::AddrStore,
            Fused::CmpBranch { .. } => FusePattern::CmpBranch,
            Fused::LoadOp { .. } => FusePattern::LoadOp,
            Fused::BinCopy { .. } => FusePattern::BinCopy,
            Fused::IncCmpBranch { .. } => FusePattern::IncCmpBranch,
            Fused::AddrLoadOp { .. } => FusePattern::AddrLoadOp,
        }
    }
}

/// Maximum slots one fused site may cover (constituents plus
/// interleaved/trailing elided copies). Must not exceed the batch shape
/// [`mperf_sim::core::MAX_FUSED_BATCH`] assumes for its conservative
/// PMU event bound.
pub const MAX_FUSE_WIDTH: usize = 6;
const _: () = assert!(MAX_FUSE_WIDTH <= mperf_sim::core::MAX_FUSED_BATCH);

/// One fusion site in a function's side table: the superinstruction
/// payload plus the slot window it covers. `width` counts *all* covered
/// slots — pattern constituents and any [`DecodedOp::ElidedCopy`] glue
/// between/after them; each covered slot retires exactly one machine
/// op, so `width` is also the batch's machine-op count.
#[derive(Debug, Clone)]
pub struct FusedSite {
    /// The superinstruction payload.
    pub op: Fused,
    /// Total consecutive slots covered, starting at the fused slot.
    pub width: u8,
    /// Bit `k` set (`1 ≤ k < width`) ⇒ slot `ip + k` is an
    /// [`DecodedOp::ElidedCopy`], retiring a `Move` at its own pc inside
    /// the batch; clear ⇒ the slot holds the next pattern constituent.
    /// Bit 0 is always clear.
    pub elided: u8,
}

impl FusedSite {
    /// Number of elided-copy slots inside this site's window.
    pub fn elided_count(&self) -> u32 {
        self.elided.count_ones()
    }
}

/// One flattened function.
#[derive(Debug, Clone)]
pub struct DecodedFunc {
    /// All blocks' instructions + terminators, flattened in block order.
    /// After fusion, a pattern's first slot holds [`DecodedOp::Fused`]
    /// and the remaining slots keep their original ops (bail targets).
    pub ops: Vec<DecodedOp>,
    /// Synthetic pc per op (parallel to `ops`); identical to the
    /// reference interpreter's `pc_of(func, block, idx)`. Fusion does not
    /// disturb this table — a fused handler reads its constituents' pcs
    /// at `ip`, `ip+1`, `ip+2`.
    pub pcs: Vec<u64>,
    /// Flat op index of each block's first op.
    pub block_entry: Vec<u32>,
    /// Superinstruction sites referenced by [`DecodedOp::Fused`].
    pub fused: Vec<FusedSite>,
    /// Register-file size.
    pub num_regs: u32,
    /// Parameter register indices, in call-argument order.
    pub params: Box<[u32]>,
}

/// Which decode-time optimization passes run. Every combination is
/// observably identical — passes change speed, never measurements; the
/// `false` settings are the `--no-fuse` / `--no-regalloc` escape
/// hatches for bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeConfig {
    /// Run the superinstruction fusion peephole.
    pub fuse: bool,
    /// Run copy coalescing + register compaction before fusion.
    pub regalloc: bool,
}

impl Default for DecodeConfig {
    /// The production default: both passes on.
    fn default() -> DecodeConfig {
        DecodeConfig {
            fuse: true,
            regalloc: true,
        }
    }
}

/// A fully pre-decoded module, ready for index-driven execution.
#[derive(Debug, Clone)]
pub struct DecodedModule {
    pub funcs: Vec<DecodedFunc>,
    /// Per-function threaded template form (parallel to `funcs`):
    /// pre-bound op thunks + superblock table, compiled once here so
    /// `Arc`-sharing a decode also shares the template compile (see
    /// [`crate::threaded`]).
    pub threaded: Vec<crate::threaded::ThreadedFunc>,
    /// Dense table of non-`mperf.*` host callee names.
    pub host_names: Vec<String>,
    /// Decode-time fusion statistics (all zero when `fused` is false).
    pub fusion: FusionStats,
    /// Decode-time register-allocation statistics (`copies_coalesced`
    /// and the reg deltas are zero when `coalesced` is false).
    pub regalloc: RegallocStats,
    /// Whether the superinstruction fusion pass ran.
    pub fused: bool,
    /// Whether the copy-coalescing pass ran.
    pub coalesced: bool,
}

impl DecodedModule {
    /// Decode every function of `module` with the default passes
    /// (register allocation + superinstruction fusion).
    pub fn decode(module: &Module) -> DecodedModule {
        DecodedModule::decode_cfg(module, DecodeConfig::default())
    }

    /// Decode every function of `module`; `fuse` selects whether the
    /// superinstruction pass runs (`false` is the `--no-fuse` escape
    /// hatch); register allocation stays on. See
    /// [`DecodedModule::decode_cfg`] for full control.
    pub fn decode_with(module: &Module, fuse: bool) -> DecodedModule {
        DecodedModule::decode_cfg(
            module,
            DecodeConfig {
                fuse,
                ..DecodeConfig::default()
            },
        )
    }

    /// Decode every function of `module` with an explicit pass
    /// configuration. Observable behaviour is identical for every
    /// configuration; only speed differs.
    pub fn decode_cfg(module: &Module, cfg: DecodeConfig) -> DecodedModule {
        let mut hosts = HostTable::default();
        let mut fusion = FusionStats::default();
        let mut regalloc = RegallocStats::default();
        let mut funcs: Vec<DecodedFunc> = module
            .iter_funcs()
            .map(|(fid, _)| decode_func(module, fid, &mut hosts))
            .collect();
        for f in &mut funcs {
            fusion.ops_total += f.ops.len() as u64;
            if cfg.regalloc {
                regalloc_func(f, &mut regalloc);
            }
            if cfg.fuse {
                fuse_func(f, &mut fusion);
            }
        }
        let mut dm = DecodedModule {
            funcs,
            threaded: Vec::new(),
            host_names: hosts.names,
            fusion,
            regalloc,
            fused: cfg.fuse,
            coalesced: cfg.regalloc,
        };
        // One linear pass pinning every invariant the interpreter's
        // unchecked dispatch relies on.
        for f in &dm.funcs {
            validate_func(f, dm.funcs.len(), dm.host_names.len());
        }
        // Template compilation runs last, over the validated stream —
        // the threaded engine's thunks inherit the same pinned indices.
        dm.threaded = dm.funcs.iter().map(crate::threaded::compile_func).collect();
        dm
    }
}

/// Decode `module` once into the `Arc`-shared form every VM (and every
/// sweep worker thread) executing it can reuse via
/// [`crate::Vm::set_decoded`]. This is the sweep entry point: callers
/// decode each workload exactly once, then fan its phase/platform jobs
/// out over threads that all share this one decode.
pub fn decode_module(module: &Module) -> Arc<DecodedModule> {
    Arc::new(DecodedModule::decode(module))
}

/// [`decode_module`] with fusion selectable (`false` = `--no-fuse`).
pub fn decode_module_with(module: &Module, fuse: bool) -> Arc<DecodedModule> {
    Arc::new(DecodedModule::decode_with(module, fuse))
}

/// [`decode_module`] with every pass selectable.
pub fn decode_module_cfg(module: &Module, cfg: DecodeConfig) -> Arc<DecodedModule> {
    Arc::new(DecodedModule::decode_cfg(module, cfg))
}

#[derive(Default)]
struct HostTable {
    names: Vec<String>,
}

impl HostTable {
    fn resolve(&mut self, name: &str) -> HostTarget {
        match name {
            "mperf.loop_begin" => HostTarget::LoopBegin,
            "mperf.loop_end" => HostTarget::LoopEnd,
            "mperf.is_instrumented" => HostTarget::IsInstrumented,
            _ => {
                let id = match self.names.iter().position(|n| n == name) {
                    Some(i) => i,
                    None => {
                        self.names.push(name.to_string());
                        self.names.len() - 1
                    }
                };
                HostTarget::Named(id as u32)
            }
        }
    }
}

fn decode_func(module: &Module, fid: FuncId, hosts: &mut HostTable) -> DecodedFunc {
    let f = module.func(fid);
    // Pass 1: flat entry offset of every block (insts + its terminator).
    let mut block_entry = Vec::with_capacity(f.num_blocks());
    let mut off = 0u32;
    for b in &f.blocks {
        block_entry.push(off);
        off += b.insts.len() as u32 + 1;
    }

    // Pass 2: emit ops with pre-resolved targets and classes.
    let mut ops = Vec::with_capacity(off as usize);
    let mut pcs = Vec::with_capacity(off as usize);
    for (bidx, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bidx as u32);
        for (idx, inst) in b.insts.iter().enumerate() {
            pcs.push(pc_of(fid, bid, idx));
            ops.push(decode_inst(f, inst, hosts));
        }
        pcs.push(pc_of(fid, bid, b.insts.len()));
        ops.push(decode_term(&b.term, &block_entry));
    }

    DecodedFunc {
        ops,
        pcs,
        block_entry,
        fused: Vec::new(),
        num_regs: f.num_regs() as u32,
        params: f.params.iter().map(|p| p.index() as u32).collect(),
    }
}

/// Visit every register an op *reads* (operand registers; destinations
/// are writes and excluded). Drives the liveness analysis in
/// [`crate::regalloc`] and the read-count analysis that decides which
/// intermediate writes a fused handler may skip.
pub(crate) fn op_reads(op: &DecodedOp, mut f: impl FnMut(u32)) {
    let mut rd = |o: &Operand| {
        if let Operand::Reg(r) = o {
            f(r.index() as u32);
        }
    };
    match op {
        DecodedOp::Bin { lhs, rhs, .. }
        | DecodedOp::BinI { lhs, rhs, .. }
        | DecodedOp::Cmp { lhs, rhs, .. }
        | DecodedOp::CmpI { lhs, rhs, .. } => {
            rd(lhs);
            rd(rhs);
        }
        DecodedOp::Un { src, .. }
        | DecodedOp::Cast { src, .. }
        | DecodedOp::Copy { src, .. }
        | DecodedOp::Splat { src, .. }
        | DecodedOp::Reduce { src, .. } => rd(src),
        DecodedOp::Fma { a, b, c, .. } => {
            rd(a);
            rd(b);
            rd(c);
        }
        DecodedOp::Load { addr, stride, .. } => {
            rd(addr);
            rd(stride);
        }
        DecodedOp::Store {
            addr, val, stride, ..
        } => {
            rd(addr);
            rd(val);
            rd(stride);
        }
        DecodedOp::PtrAdd { base, offset, .. } => {
            rd(base);
            rd(offset);
        }
        DecodedOp::Select { cond, t, f, .. } => {
            rd(cond);
            rd(t);
            rd(f);
        }
        DecodedOp::CallFunc { args, .. } | DecodedOp::CallHost { args, .. } => {
            for a in args.iter() {
                rd(a);
            }
        }
        DecodedOp::CondBr { cond, .. } => rd(cond),
        DecodedOp::Ret { vals } => {
            for v in vals.iter() {
                rd(v);
            }
        }
        DecodedOp::ProfCount(_) | DecodedOp::Br { .. } | DecodedOp::ElidedCopy => {}
        DecodedOp::Fused(_) => unreachable!("read counting runs pre-fusion"),
    }
}

/// Visit every register an op *writes* (destinations, including call
/// return slots). The def half of the liveness analysis in
/// [`crate::regalloc`].
pub(crate) fn op_defs(op: &DecodedOp, mut f: impl FnMut(u32)) {
    match op {
        DecodedOp::Bin { dst, .. }
        | DecodedOp::BinI { dst, .. }
        | DecodedOp::Cmp { dst, .. }
        | DecodedOp::CmpI { dst, .. }
        | DecodedOp::Un { dst, .. }
        | DecodedOp::Fma { dst, .. }
        | DecodedOp::Load { dst, .. }
        | DecodedOp::PtrAdd { dst, .. }
        | DecodedOp::Select { dst, .. }
        | DecodedOp::Cast { dst, .. }
        | DecodedOp::Copy { dst, .. }
        | DecodedOp::Splat { dst, .. }
        | DecodedOp::Reduce { dst, .. } => f(*dst),
        DecodedOp::CallFunc { dsts, .. } | DecodedOp::CallHost { dsts, .. } => {
            for d in dsts.iter() {
                f(d.index() as u32);
            }
        }
        DecodedOp::Store { .. }
        | DecodedOp::ProfCount(_)
        | DecodedOp::Br { .. }
        | DecodedOp::CondBr { .. }
        | DecodedOp::Ret { .. }
        | DecodedOp::ElidedCopy => {}
        DecodedOp::Fused(_) => unreachable!("def counting runs pre-fusion"),
    }
}

/// Count how often operand `o` reads register `r`.
fn reads_of(o: &Operand, r: u32) -> u64 {
    matches!(o, Operand::Reg(reg) if reg.index() as u32 == r) as u64
}

/// Whether a decoded binary op may sit inside a superinstruction: scalar
/// only (vector values make the event bound and handlers heavier for no
/// dynamic win) and trap-free (integer `Div`/`Rem` can fault mid-pattern,
/// which would desynchronize the retire stream from the unfused engine).
fn fuseable_bin(op: BinOp, class: OpClass) -> bool {
    !matches!(op, BinOp::Div | BinOp::Rem)
        && matches!(
            class,
            OpClass::IntAlu | OpClass::IntMul | OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv
        )
}

/// Normalized view over [`DecodedOp::Bin`] / [`DecodedOp::BinI`]
/// (`int` ⇒ `flops == 0`).
struct BinView {
    op: BinOp,
    class: OpClass,
    flops: u32,
    int: bool,
    dst: u32,
    lhs: Operand,
    rhs: Operand,
}

fn as_bin(op: &DecodedOp) -> Option<BinView> {
    match op {
        DecodedOp::Bin {
            op,
            class,
            flops,
            dst,
            lhs,
            rhs,
        } => Some(BinView {
            op: *op,
            class: *class,
            flops: *flops,
            int: false,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        }),
        DecodedOp::BinI {
            op,
            class,
            dst,
            lhs,
            rhs,
        } => Some(BinView {
            op: *op,
            class: *class,
            flops: 0,
            int: true,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        }),
        _ => None,
    }
}

/// Normalized view over [`DecodedOp::Cmp`] / [`DecodedOp::CmpI`].
struct CmpView {
    op: CmpOp,
    int: bool,
    dst: u32,
    lhs: Operand,
    rhs: Operand,
}

fn as_cmp(op: &DecodedOp) -> Option<CmpView> {
    match op {
        DecodedOp::Cmp { op, dst, lhs, rhs } => Some(CmpView {
            op: *op,
            int: false,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        }),
        DecodedOp::CmpI { op, dst, lhs, rhs } => Some(CmpView {
            op: *op,
            int: true,
            dst: *dst,
            lhs: *lhs,
            rhs: *rhs,
        }),
        _ => None,
    }
}

/// Whether a scalar load of `mem` consumed by an integer bin runs the
/// whole chain on raw `i64`s.
fn int_chain(mem: MemTy, bin_int: bool) -> bool {
    bin_int && matches!(mem, MemTy::I8 | MemTy::I16 | MemTy::I32 | MemTy::I64)
}

/// Try to match a fusion pattern over the *effective* op window: `op1`
/// is the candidate first constituent, `op2`/`op3` the next ops with
/// elided copies skipped, and `elided_next` whether the slot directly
/// after `op1` is an [`DecodedOp::ElidedCopy`] (enabling the bare
/// `bin + elided-copy` form of [`FusePattern::BinCopy`]). Returns the
/// payload plus the number of effective constituents consumed (1–3).
///
/// `reads[r]` is the function-wide read count of register `r`; a
/// `write_*` flag is cleared only when every read of that register is
/// one the handler substitutes locally (reads *inside the pattern after
/// the write*), so skipping the register-stack write is unobservable.
fn pattern_at(
    op1: &DecodedOp,
    op2: Option<&DecodedOp>,
    op3: Option<&DecodedOp>,
    elided_next: bool,
    reads: &[u64],
) -> Option<(Fused, usize)> {
    use DecodedOp as D;
    if let Some(b) = as_bin(op1) {
        // inc/dec + test + branch (counted-loop back edge).
        if matches!(b.op, BinOp::Add | BinOp::Sub) && b.class == OpClass::IntAlu {
            if let (Some(c), Some(D::CondBr { cond, t, f })) = (op2.and_then(as_cmp), op3) {
                if reads_of(cond, c.dst) == 1
                    && (reads_of(&c.lhs, b.dst) + reads_of(&c.rhs, b.dst) > 0)
                {
                    return Some((
                        Fused::IncCmpBranch {
                            i_op: b.op,
                            i_dst: b.dst,
                            i_lhs: b.lhs,
                            i_rhs: b.rhs,
                            c_op: c.op,
                            c_dst: c.dst,
                            c_lhs: c.lhs,
                            c_rhs: c.rhs,
                            c_int: c.int,
                            write_cmp: reads[c.dst as usize] > 1,
                            t: *t,
                            f: *f,
                        },
                        3,
                    ));
                }
            }
        }
        // bin + copy (every `var = expr` assignment).
        if fuseable_bin(b.op, b.class) {
            if let Some(D::Copy { dst: c_dst, src }) = op2 {
                if reads_of(src, b.dst) == 1 {
                    return Some((
                        Fused::BinCopy {
                            op: b.op,
                            class: b.class,
                            flops: b.flops,
                            int: b.int,
                            b_dst: b.dst,
                            lhs: b.lhs,
                            rhs: b.rhs,
                            write_bin: reads[b.dst as usize] > 1,
                            dst: *c_dst,
                        },
                        2,
                    ));
                }
            }
            // bin whose former copy was coalesced away: the elided slot
            // joins the batch as a `Move` tick, so the `var = expr`
            // assignment still retires as one superinstruction.
            if elided_next {
                return Some((
                    Fused::BinCopy {
                        op: b.op,
                        class: b.class,
                        flops: b.flops,
                        int: b.int,
                        b_dst: b.dst,
                        lhs: b.lhs,
                        rhs: b.rhs,
                        write_bin: false,
                        dst: b.dst,
                    },
                    1,
                ));
            }
        }
        return None;
    }
    if let Some(c) = as_cmp(op1) {
        // compare-and-branch.
        if let Some(D::CondBr { cond, t, f }) = op2 {
            if reads_of(cond, c.dst) == 1 {
                return Some((
                    Fused::CmpBranch {
                        op: c.op,
                        c_dst: c.dst,
                        lhs: c.lhs,
                        rhs: c.rhs,
                        int: c.int,
                        write_cmp: reads[c.dst as usize] > 1,
                        t: *t,
                        f: *f,
                    },
                    2,
                ));
            }
        }
        return None;
    }
    match op1 {
        // ptradd + load (+ bin), or ptradd + store.
        D::PtrAdd {
            dst: a_dst,
            base,
            offset,
        } => match op2 {
            Some(D::Load {
                dst: l_dst,
                addr,
                mem,
                lanes: 1,
                ..
            }) if reads_of(addr, *a_dst) == 1 => {
                // Extend to the full indexed-read chain when a fuseable
                // bin consumes the loaded value.
                if let Some(b) = op3.and_then(as_bin) {
                    let l_reads = reads_of(&b.lhs, *l_dst) + reads_of(&b.rhs, *l_dst);
                    if l_reads > 0 && fuseable_bin(b.op, b.class) {
                        let a_in = 1 + reads_of(&b.lhs, *a_dst) + reads_of(&b.rhs, *a_dst);
                        return Some((
                            Fused::AddrLoadOp {
                                a_dst: *a_dst,
                                base: *base,
                                offset: *offset,
                                write_addr: reads[*a_dst as usize] > a_in,
                                l_dst: *l_dst,
                                mem: *mem,
                                int: int_chain(*mem, b.int),
                                write_load: reads[*l_dst as usize] > l_reads,
                                op: b.op,
                                class: b.class,
                                flops: b.flops,
                                b_dst: b.dst,
                                lhs: b.lhs,
                                rhs: b.rhs,
                            },
                            3,
                        ));
                    }
                }
                Some((
                    Fused::AddrLoad {
                        a_dst: *a_dst,
                        base: *base,
                        offset: *offset,
                        write_addr: reads[*a_dst as usize] > 1,
                        dst: *l_dst,
                        mem: *mem,
                    },
                    2,
                ))
            }
            Some(D::Store {
                addr,
                val,
                mem,
                lanes: 1,
                ..
            }) if reads_of(addr, *a_dst) == 1 => Some((
                Fused::AddrStore {
                    a_dst: *a_dst,
                    base: *base,
                    offset: *offset,
                    write_addr: reads[*a_dst as usize] > 1 + reads_of(val, *a_dst),
                    val: *val,
                    mem: *mem,
                },
                2,
            )),
            _ => None,
        },
        // scalar load + bin consuming the loaded value.
        D::Load {
            dst: l_dst,
            addr,
            mem,
            lanes: 1,
            ..
        } => {
            let b = op2.and_then(as_bin)?;
            let l_reads = reads_of(&b.lhs, *l_dst) + reads_of(&b.rhs, *l_dst);
            if l_reads > 0 && fuseable_bin(b.op, b.class) {
                Some((
                    Fused::LoadOp {
                        l_dst: *l_dst,
                        addr: *addr,
                        mem: *mem,
                        int: int_chain(*mem, b.int),
                        write_load: reads[*l_dst as usize] > l_reads,
                        op: b.op,
                        class: b.class,
                        flops: b.flops,
                        b_dst: b.dst,
                        lhs: b.lhs,
                        rhs: b.rhs,
                    },
                    2,
                ))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Index of the next non-[`DecodedOp::ElidedCopy`] op in `from..limit`.
fn next_constituent(ops: &[DecodedOp], from: usize, limit: usize) -> Option<usize> {
    (from..limit.min(ops.len())).find(|&j| !matches!(ops[j], DecodedOp::ElidedCopy))
}

/// The decode-time peephole pass: greedy left-to-right, longest match
/// first (the triple patterns are tried before their pair prefixes by
/// [`pattern_at`]'s structure), non-overlapping. Replaces each match's
/// first slot with [`DecodedOp::Fused`]; trailing slots keep their
/// original ops as the bail path.
///
/// Elided copies are transparent: constituents are matched over the
/// stream with [`DecodedOp::ElidedCopy`] slots skipped (within a
/// [`MAX_FUSE_WIDTH`] window), and for value-producing patterns any
/// directly trailing elided copies are absorbed too — each covered
/// elided slot joins the site's retire batch as a `Move` tick at its
/// own pc.
fn fuse_func(df: &mut DecodedFunc, stats: &mut FusionStats) {
    // Function-wide register read counts over the pre-fusion stream.
    let mut reads = vec![0u64; df.num_regs as usize];
    for op in &df.ops {
        op_reads(op, |r| reads[r as usize] += 1);
    }
    let mut is_entry = vec![false; df.ops.len()];
    for e in &df.block_entry {
        is_entry[*e as usize] = true;
    }
    let len = df.ops.len();
    let mut i = 0;
    while i < len {
        if matches!(df.ops[i], DecodedOp::ElidedCopy) {
            i += 1;
            continue;
        }
        let limit = i + MAX_FUSE_WIDTH;
        let j2 = next_constituent(&df.ops, i + 1, limit);
        let j3 = j2.and_then(|j| next_constituent(&df.ops, j + 1, limit));
        let elided_next = i + 1 < len && matches!(df.ops[i + 1], DecodedOp::ElidedCopy);
        let Some((fused, ncons)) = pattern_at(
            &df.ops[i],
            j2.map(|j| &df.ops[j]),
            j3.map(|j| &df.ops[j]),
            elided_next,
            &reads,
        ) else {
            i += 1;
            continue;
        };
        let pat = fused.pattern();
        let last = match ncons {
            1 => i,
            2 => j2.expect("2-constituent match saw an op there"),
            _ => j3.expect("3-constituent match saw an op there"),
        };
        let mut width = last - i + 1;
        // Value-producing patterns absorb directly trailing elided
        // copies into the batch; branch-ending patterns transfer
        // control and cannot.
        if !matches!(pat, FusePattern::CmpBranch | FusePattern::IncCmpBranch) {
            while i + width < len
                && width < MAX_FUSE_WIDTH
                && matches!(df.ops[i + width], DecodedOp::ElidedCopy)
                && !is_entry[i + width]
            {
                width += 1;
            }
        }
        // A bare `bin` is only a site when it actually absorbed its
        // elided copy (an entry slot directly after can prevent that).
        if width < 2 {
            i += 1;
            continue;
        }
        // A branch target landing mid-pattern would let control enter
        // between constituents; count and skip instead of fusing.
        if (i + 1..i + width).any(|k| is_entry[k]) {
            stats.ineligible_mid_target += 1;
            i += 1;
            continue;
        }
        let mut elided = 0u8;
        for k in 1..width {
            if matches!(df.ops[i + k], DecodedOp::ElidedCopy) {
                elided |= 1 << k;
            }
        }
        df.fused.push(FusedSite {
            op: fused,
            width: width as u8,
            elided,
        });
        df.ops[i] = DecodedOp::Fused((df.fused.len() - 1) as u32);
        stats.sites[pat.index()] += 1;
        stats.ops_fused += width as u64;
        i += width;
    }
}

/// Panic unless every index the decoded interpreter dereferences without
/// bounds checks is in range: the soundness gate for the hot loop's
/// `get_unchecked` fetches. Runs once per decode.
fn validate_func(df: &DecodedFunc, num_funcs: usize, num_hosts: usize) {
    let len = df.ops.len();
    assert_eq!(df.pcs.len(), len, "pcs parallel to ops");
    let reg_ok = |r: u32| assert!(r < df.num_regs, "register {r} out of range");
    let tgt_ok = |t: u32| assert!((t as usize) < len, "jump target {t} out of range");
    let op_ok = |op: &DecodedOp, i: usize| {
        op_reads_checked(op, &mut |r| reg_ok(r));
        match op {
            DecodedOp::Bin { dst, .. }
            | DecodedOp::BinI { dst, .. }
            | DecodedOp::Cmp { dst, .. }
            | DecodedOp::CmpI { dst, .. }
            | DecodedOp::Un { dst, .. }
            | DecodedOp::Fma { dst, .. }
            | DecodedOp::Load { dst, .. }
            | DecodedOp::PtrAdd { dst, .. }
            | DecodedOp::Select { dst, .. }
            | DecodedOp::Cast { dst, .. }
            | DecodedOp::Copy { dst, .. }
            | DecodedOp::Splat { dst, .. }
            | DecodedOp::Reduce { dst, .. } => reg_ok(*dst),
            DecodedOp::Store { .. }
            | DecodedOp::ProfCount(_)
            | DecodedOp::Ret { .. }
            | DecodedOp::ElidedCopy => {}
            DecodedOp::CallFunc { callee, dsts, .. } => {
                assert!((*callee as usize) < num_funcs, "callee out of range");
                for d in dsts.iter() {
                    reg_ok(d.index() as u32);
                }
            }
            DecodedOp::CallHost { target, dsts, .. } => {
                if let HostTarget::Named(id) = target {
                    assert!((*id as usize) < num_hosts, "host id out of range");
                }
                for d in dsts.iter() {
                    reg_ok(d.index() as u32);
                }
            }
            DecodedOp::Br { target } => tgt_ok(*target),
            DecodedOp::CondBr { t, f, .. } => {
                tgt_ok(*t);
                tgt_ok(*f);
            }
            DecodedOp::Fused(idx) => {
                let site = df.fused.get(*idx as usize).expect("fused index in range");
                let fu = &site.op;
                let width = site.width as usize;
                assert!(
                    (2..=MAX_FUSE_WIDTH).contains(&width),
                    "fused width {width} out of range"
                );
                assert!(i + width <= len, "fused window exceeds stream");
                assert_eq!(site.elided & 1, 0, "first slot is never elided");
                assert_eq!(site.elided >> width, 0, "elided bits outside the window");
                // Every covered slot holds what the site claims: elided
                // bits mark `ElidedCopy` slots (retired as `Move`s) and
                // the clear bits the pattern's surviving constituents —
                // the bail path executes these originals one at a time.
                let mut tail: Vec<&DecodedOp> = Vec::new();
                for k in 1..width {
                    if site.elided & (1 << k) != 0 {
                        assert!(
                            matches!(df.ops[i + k], DecodedOp::ElidedCopy),
                            "elided bit over a non-elided slot"
                        );
                    } else {
                        tail.push(&df.ops[i + k]);
                    }
                }
                constituents_ok(fu.pattern(), &tail);
                let o_ok = |o: &Operand| {
                    if let Operand::Reg(r) = o {
                        reg_ok(r.index() as u32);
                    }
                };
                match fu {
                    Fused::AddrLoad {
                        a_dst,
                        base,
                        offset,
                        dst,
                        ..
                    } => {
                        reg_ok(*a_dst);
                        reg_ok(*dst);
                        o_ok(base);
                        o_ok(offset);
                    }
                    Fused::AddrStore {
                        a_dst,
                        base,
                        offset,
                        val,
                        ..
                    } => {
                        reg_ok(*a_dst);
                        o_ok(base);
                        o_ok(offset);
                        o_ok(val);
                    }
                    Fused::CmpBranch {
                        c_dst,
                        lhs,
                        rhs,
                        t,
                        f,
                        ..
                    } => {
                        reg_ok(*c_dst);
                        o_ok(lhs);
                        o_ok(rhs);
                        tgt_ok(*t);
                        tgt_ok(*f);
                    }
                    Fused::LoadOp {
                        l_dst,
                        addr,
                        b_dst,
                        lhs,
                        rhs,
                        ..
                    } => {
                        reg_ok(*l_dst);
                        reg_ok(*b_dst);
                        o_ok(addr);
                        o_ok(lhs);
                        o_ok(rhs);
                    }
                    Fused::BinCopy {
                        b_dst,
                        lhs,
                        rhs,
                        dst,
                        ..
                    } => {
                        reg_ok(*b_dst);
                        reg_ok(*dst);
                        o_ok(lhs);
                        o_ok(rhs);
                    }
                    Fused::IncCmpBranch {
                        i_dst,
                        i_lhs,
                        i_rhs,
                        c_dst,
                        c_lhs,
                        c_rhs,
                        t,
                        f,
                        ..
                    } => {
                        reg_ok(*i_dst);
                        reg_ok(*c_dst);
                        o_ok(i_lhs);
                        o_ok(i_rhs);
                        o_ok(c_lhs);
                        o_ok(c_rhs);
                        tgt_ok(*t);
                        tgt_ok(*f);
                    }
                    Fused::AddrLoadOp {
                        a_dst,
                        base,
                        offset,
                        l_dst,
                        b_dst,
                        lhs,
                        rhs,
                        ..
                    } => {
                        reg_ok(*a_dst);
                        reg_ok(*l_dst);
                        reg_ok(*b_dst);
                        o_ok(base);
                        o_ok(offset);
                        o_ok(lhs);
                        o_ok(rhs);
                    }
                }
            }
        }
    };
    for (i, op) in df.ops.iter().enumerate() {
        op_ok(op, i);
    }
    for p in df.params.iter() {
        reg_ok(*p);
    }
    for e in &df.block_entry {
        assert!((*e as usize) < len, "block entry out of range");
    }
    // The last op must end the function: non-branching ops advance to
    // ip+1, and branch-ending fused ops never fall through — so only a
    // terminator (or a branch-ending superinstruction) may sit last.
    match df.ops.last() {
        Some(DecodedOp::Ret { .. } | DecodedOp::Br { .. } | DecodedOp::CondBr { .. }) => {}
        Some(DecodedOp::Fused(idx)) => {
            let fu = &df.fused[*idx as usize].op;
            assert!(
                matches!(fu, Fused::CmpBranch { .. } | Fused::IncCmpBranch { .. }),
                "function must end in a terminator"
            );
        }
        other => panic!("function must end in a terminator, found {other:?}"),
    }
}

/// Assert the surviving (non-elided) tail slots of a fused site hold
/// exactly the ops its pattern expects — the bail path and the batch
/// assembly both rely on this layout.
fn constituents_ok(pat: FusePattern, tail: &[&DecodedOp]) {
    use DecodedOp as D;
    let ok = match pat {
        FusePattern::CmpBranch => {
            matches!(tail, [D::CondBr { .. }])
        }
        FusePattern::IncCmpBranch => {
            matches!(tail, [D::Cmp { .. } | D::CmpI { .. }, D::CondBr { .. }])
        }
        // The copy itself may have been coalesced away (bare
        // `bin + elided` form) — then the tail is all elided.
        FusePattern::BinCopy => matches!(tail, [] | [D::Copy { .. }]),
        FusePattern::AddrLoad => matches!(tail, [D::Load { .. }]),
        FusePattern::AddrStore => matches!(tail, [D::Store { .. }]),
        FusePattern::LoadOp => matches!(tail, [D::Bin { .. } | D::BinI { .. }]),
        FusePattern::AddrLoadOp => {
            matches!(tail, [D::Load { .. }, D::Bin { .. } | D::BinI { .. }])
        }
    };
    assert!(ok, "{pat:?} site tail does not match its pattern: {tail:?}");
}

/// [`op_reads`] wrapper usable post-fusion: fused slots are skipped here
/// because their payload operands are range-checked explicitly in
/// `validate_func`'s `Fused` arm (the trailing constituent slots keep
/// their original ops and are validated as normal ops).
fn op_reads_checked(op: &DecodedOp, f: &mut impl FnMut(u32)) {
    if !matches!(op, DecodedOp::Fused(_)) {
        op_reads(op, f);
    }
}

fn decode_inst(f: &mperf_ir::Function, inst: &Inst, hosts: &mut HostTable) -> DecodedOp {
    match inst {
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } if matches!(ty, Ty::I64 | Ty::Ptr) => DecodedOp::BinI {
            op: *op,
            class: bin_class(*op, *ty),
            dst: dst.index() as u32,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => DecodedOp::Bin {
            op: *op,
            class: bin_class(*op, *ty),
            flops: bin_flops(*op, *ty),
            dst: dst.index() as u32,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Cmp {
            op,
            ty: Ty::I64 | Ty::Ptr,
            dst,
            lhs,
            rhs,
        } => DecodedOp::CmpI {
            op: *op,
            dst: dst.index() as u32,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Cmp {
            op, dst, lhs, rhs, ..
        } => DecodedOp::Cmp {
            op: *op,
            dst: dst.index() as u32,
            lhs: *lhs,
            rhs: *rhs,
        },
        Inst::Un { op, ty, dst, src } => DecodedOp::Un {
            op: *op,
            class: un_class(*op, *ty),
            flops: un_flops(*op, *ty),
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Fma { ty, dst, a, b, c } => DecodedOp::Fma {
            class: if ty.is_vector() {
                OpClass::VecFma
            } else {
                OpClass::FpFma
            },
            flops: 2 * ty.lanes() as u32,
            dst: dst.index() as u32,
            a: *a,
            b: *b,
            c: *c,
        },
        Inst::Load {
            dst,
            addr,
            mem,
            lanes,
            stride,
        } => DecodedOp::Load {
            class: if *lanes > 1 {
                OpClass::VecLoad
            } else {
                OpClass::Load
            },
            dst: dst.index() as u32,
            addr: *addr,
            mem: *mem,
            lanes: *lanes,
            stride: *stride,
        },
        Inst::Store {
            addr,
            val,
            mem,
            lanes,
            stride,
        } => DecodedOp::Store {
            class: if *lanes > 1 {
                OpClass::VecStore
            } else {
                OpClass::Store
            },
            addr: *addr,
            val: *val,
            mem: *mem,
            lanes: *lanes,
            stride: *stride,
        },
        Inst::PtrAdd { dst, base, offset } => DecodedOp::PtrAdd {
            dst: dst.index() as u32,
            base: *base,
            offset: *offset,
        },
        Inst::Select {
            dst, cond, t, f, ..
        } => DecodedOp::Select {
            dst: dst.index() as u32,
            cond: *cond,
            t: *t,
            f: *f,
        },
        Inst::Cast { kind, dst, src } => DecodedOp::Cast {
            kind: *kind,
            class: cast_class(*kind),
            dst_ty: f.ty_of(*dst),
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Copy { dst, src, .. } => DecodedOp::Copy {
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Splat { ty, dst, src } => DecodedOp::Splat {
            elem: ty.elem(),
            lanes: ty.lanes(),
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Reduce { op, dst, src } => DecodedOp::Reduce {
            op: *op,
            // The reference interpreter derives this from the runtime
            // value's lane count; types are enforced by the verifier, so
            // the static operand type gives the identical number.
            flops: match op {
                ReduceOp::FAdd => (f.operand_ty(*src).lanes() as u32).saturating_sub(1),
                ReduceOp::Add => 0,
            },
            dst: dst.index() as u32,
            src: *src,
        },
        Inst::Call { dsts, callee, args } => {
            let dsts: Box<[Reg]> = dsts.clone().into_boxed_slice();
            let args: Box<[Operand]> = args.clone().into_boxed_slice();
            match callee {
                Callee::Func(fid) => DecodedOp::CallFunc {
                    callee: fid.0,
                    dsts,
                    args,
                },
                Callee::Host(name) => DecodedOp::CallHost {
                    target: hosts.resolve(name),
                    dsts,
                    args,
                },
            }
        }
        Inst::ProfCount(counts) => DecodedOp::ProfCount(*counts),
    }
}

fn decode_term(term: &Term, block_entry: &[u32]) -> DecodedOp {
    match term {
        Term::Br(b) => DecodedOp::Br {
            target: block_entry[b.index()],
        },
        Term::CondBr { cond, t, f } => DecodedOp::CondBr {
            cond: *cond,
            t: block_entry[t.index()],
            f: block_entry[f.index()],
        },
        Term::Ret(vals) => DecodedOp::Ret {
            vals: vals.clone().into_boxed_slice(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mperf_ir::compile;

    #[test]
    fn flattening_covers_every_block_and_terminator() {
        let src = r#"
            fn f(n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) { s = s + i; }
                return s;
            }
        "#;
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode(&module);
        let f = module.func_by_name("f").unwrap();
        let d = &dec.funcs[module.func_id("f").unwrap().index()];
        let expected: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
        assert_eq!(d.ops.len(), expected);
        assert_eq!(d.pcs.len(), expected);
        assert_eq!(d.block_entry.len(), f.num_blocks());
        // Register allocation may only shrink the register file.
        assert!(d.num_regs as usize <= f.num_regs());
    }

    #[test]
    fn jump_targets_resolve_to_block_entries() {
        let src = "fn f(c: bool) -> i64 { if (c) { return 1; } return 2; }";
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode(&module);
        let d = &dec.funcs[0];
        for op in &d.ops {
            match op {
                DecodedOp::Br { target } => {
                    assert!(d.block_entry.contains(target));
                }
                DecodedOp::CondBr { t, f, .. } => {
                    assert!(d.block_entry.contains(t));
                    assert!(d.block_entry.contains(f));
                }
                // Fusion must preserve pre-resolved targets: a fused
                // compare-and-branch's edges still land on block entries.
                DecodedOp::Fused(idx) => match &d.fused[*idx as usize].op {
                    Fused::CmpBranch { t, f, .. } | Fused::IncCmpBranch { t, f, .. } => {
                        assert!(d.block_entry.contains(t));
                        assert!(d.block_entry.contains(f));
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }

    #[test]
    fn counted_loop_fuses_cmp_branch_and_bin_copy() {
        // The canonical compiled loop shape without register
        // allocation: header `cmp; condbr`, body assignments as
        // `bin; copy`, back edge `br`.
        let src = r#"
            fn spin(n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    s = (s ^ i) + (i >> 2);
                }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let dec = DecodedModule::decode_cfg(
            &module,
            DecodeConfig {
                fuse: true,
                regalloc: false,
            },
        );
        assert!(dec.fused);
        let st = &dec.fusion;
        assert!(
            st.sites[FusePattern::CmpBranch.index()] >= 1,
            "loop header fuses: {st:?}"
        );
        assert!(
            st.sites[FusePattern::BinCopy.index()] >= 2,
            "assignments fuse: {st:?}"
        );
        assert_eq!(st.ineligible_mid_target, 0);
        assert!(st.static_coverage() > 0.3, "{}", st.static_coverage());
        // Layout invariant: a fused slot is followed by its original
        // constituents (the bail path), and the stream length is
        // unchanged.
        let df = &dec.funcs[0];
        assert_eq!(df.ops.len() as u64, st.ops_total);
        for (i, op) in df.ops.iter().enumerate() {
            if let DecodedOp::Fused(idx) = op {
                let site = &df.fused[*idx as usize];
                match &site.op {
                    Fused::CmpBranch { .. } => {
                        assert!(matches!(df.ops[i + 1], DecodedOp::CondBr { .. }));
                    }
                    Fused::BinCopy { .. } => {
                        assert!(matches!(df.ops[i + 1], DecodedOp::Copy { .. }));
                    }
                    other => panic!("unexpected pattern in spin: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn regalloc_lets_patterns_fire_across_copy_boundaries() {
        // With register allocation on, assignment copies are elided, so
        // a `bin` whose copy is gone still batches as `bin+copy`
        // (bare form), and the `inc; i = ...; if (i >= n)` chain fuses
        // as `inc+cmp+br` across the former copy boundary — a shape the
        // adjacency-only matcher could never fuse.
        let src = r#"
            fn spin(n: i64) -> i64 {
                var s: i64 = 0;
                var i: i64 = 0;
                while (true) {
                    i = i + 1;
                    if (i >= n) { return s; }
                    s = (s ^ i) + (i >> 2);
                }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        // Without regalloc the copy blocks the triple pattern outright.
        let plain = DecodedModule::decode_cfg(
            &module,
            DecodeConfig {
                fuse: true,
                regalloc: false,
            },
        );
        assert_eq!(
            plain.fusion.sites[FusePattern::IncCmpBranch.index()],
            0,
            "copy boundary blocks the unallocated stream: {:?}",
            plain.fusion
        );
        let dec = DecodedModule::decode(&module);
        assert!(dec.fused && dec.coalesced);
        let ra = &dec.regalloc;
        assert!(ra.copies_static >= 2, "{ra:?}");
        assert!(ra.copies_coalesced >= 2, "{ra:?}");
        let st = &dec.fusion;
        assert!(
            st.sites[FusePattern::IncCmpBranch.index()] >= 1,
            "inc+cmp+br fuses across the elided copy: {st:?}"
        );
        assert!(
            st.sites[FusePattern::BinCopy.index()] >= 1,
            "assignment fuses as bin + elided copy: {st:?}"
        );
        // Every fused site covering elided slots records them, and the
        // covered slots really are ElidedCopy ops.
        let df = &dec.funcs[0];
        let mut elided_in_sites = 0;
        for (i, op) in df.ops.iter().enumerate() {
            if let DecodedOp::Fused(idx) = op {
                let site = &df.fused[*idx as usize];
                for k in 1..site.width as usize {
                    if site.elided & (1 << k) != 0 {
                        elided_in_sites += 1;
                        assert!(matches!(df.ops[i + k], DecodedOp::ElidedCopy));
                    }
                }
            }
        }
        assert!(elided_in_sites >= 2, "elided slots ride inside sites");
    }

    #[test]
    fn indexed_reads_fuse_the_full_chain() {
        let src = r#"
            fn sum(p: *i64, n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    s = s + p[i];
                }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let dec = DecodedModule::decode(&module);
        assert!(
            dec.fusion.sites[FusePattern::AddrLoadOp.index()] >= 1,
            "ptradd+load+add fuses: {:?}",
            dec.fusion
        );
    }

    #[test]
    fn no_fuse_decode_has_no_superinstructions() {
        let src = "fn f(n: i64) -> i64 { var s: i64 = 0; for (var i: i64 = 0; i < n; i = i + 1) { s = s + i; } return s; }";
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode_with(&module, false);
        assert!(!dec.fused);
        assert_eq!(dec.fusion.total_sites(), 0);
        assert_eq!(dec.fusion.ops_fused, 0);
        assert!(dec.fusion.ops_total > 0, "ops still counted");
        for f in &dec.funcs {
            assert!(f.fused.is_empty());
            assert!(!f.ops.iter().any(|op| matches!(op, DecodedOp::Fused(_))));
        }
    }

    #[test]
    fn write_flags_track_external_reads() {
        // First loop: the compare result only feeds the branch → its
        // write is skipped. A `select` consuming a compare later keeps
        // that compare's write.
        let src = r#"
            fn f(n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) { s = s + 1; }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let dec = DecodedModule::decode(&module);
        let cmp_writes: Vec<bool> = dec.funcs[0]
            .fused
            .iter()
            .filter_map(|f| match &f.op {
                Fused::CmpBranch { write_cmp, .. } | Fused::IncCmpBranch { write_cmp, .. } => {
                    Some(*write_cmp)
                }
                _ => None,
            })
            .collect();
        assert!(
            cmp_writes.iter().any(|w| !w),
            "branch-only compare results skip the register write: {cmp_writes:?}"
        );
    }

    /// A branch target landing inside a pattern window must be counted
    /// as ineligible, not silently skipped (satellite: explainable
    /// coverage). The current flattening cannot produce this shape —
    /// patterns never span a terminator — so the test handcrafts one.
    #[test]
    fn mid_pattern_branch_target_counts_ineligible() {
        let ops = vec![
            DecodedOp::CmpI {
                op: CmpOp::Lt,
                dst: 1,
                lhs: Operand::Reg(Reg(0)),
                rhs: Operand::I64(5),
            },
            DecodedOp::CondBr {
                cond: Operand::Reg(Reg(1)),
                t: 0,
                f: 1,
            },
        ];
        let mut df = DecodedFunc {
            pcs: vec![0, 1],
            // Index 1 (the CondBr) is a block entry: control can land
            // between the compare and the branch.
            block_entry: vec![0, 1],
            fused: Vec::new(),
            num_regs: 2,
            params: Box::new([]),
            ops,
        };
        let mut stats = FusionStats::default();
        fuse_func(&mut df, &mut stats);
        assert_eq!(stats.ineligible_mid_target, 1, "{stats:?}");
        assert_eq!(stats.total_sites(), 0);
        assert!(df.fused.is_empty());
        assert!(matches!(df.ops[0], DecodedOp::CmpI { .. }), "left unfused");
    }

    #[test]
    fn host_targets_pre_resolve() {
        let src = r#"
            extern fn helper(v: i64) -> i64;
            fn f(x: i64) -> i64 { return helper(x); }
        "#;
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode(&module);
        assert_eq!(dec.host_names, vec!["helper".to_string()]);
        let named = dec.funcs[0].ops.iter().any(|op| {
            matches!(
                op,
                DecodedOp::CallHost {
                    target: HostTarget::Named(0),
                    ..
                }
            )
        });
        assert!(named, "helper call resolves to dense id 0");
    }
}
