//! Execution failures.

use std::fmt;

/// A guest trap or engine limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Memory access outside the guest address space.
    OutOfBounds { addr: u64, bytes: u64 },
    /// Integer division or remainder by zero.
    DivisionByZero { pc: u64 },
    /// Call to a host function with no registered handler.
    UnknownHost(String),
    /// Guest call stack exceeded the depth limit.
    StackOverflow { depth: usize },
    /// The operation budget ran out (guards against runaway loops).
    OutOfFuel { executed: u64 },
    /// A host handler reported a failure.
    HostFault(String),
    /// Entry function not found or arity mismatch.
    BadEntry(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { addr, bytes } => {
                write!(
                    f,
                    "guest access of {bytes} byte(s) at {addr:#x} out of bounds"
                )
            }
            VmError::DivisionByZero { pc } => write!(f, "division by zero at pc {pc:#x}"),
            VmError::UnknownHost(name) => write!(f, "call to unknown host function `{name}`"),
            VmError::StackOverflow { depth } => write!(f, "guest stack overflow at depth {depth}"),
            VmError::OutOfFuel { executed } => {
                write!(f, "operation budget exhausted after {executed} ops")
            }
            VmError::HostFault(msg) => write!(f, "host fault: {msg}"),
            VmError::BadEntry(msg) => write!(f, "bad entry point: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

impl VmError {
    /// The faulting pc embedded in the error itself, when the variant
    /// carries one (the most precise location available).
    pub fn embedded_pc(&self) -> Option<u64> {
        match self {
            VmError::DivisionByZero { pc } => Some(*pc),
            _ => None,
        }
    }
}

/// Where a propagated trap fired: the synthetic pc of the faulting
/// operation and the guest function containing it. Captured by the
/// engines on the cold error path only (see [`crate::Vm::trap_info`])
/// so a failed sweep cell reports *where* it died, not just the trap
/// kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapInfo {
    /// Synthetic pc (`func << 32 | block << 16 | idx`) of the faulting
    /// operation — exact when the error carries its own pc or the
    /// engine noted the faulting site, otherwise the nearest frame
    /// position known to the engine.
    pub pc: u64,
    /// Name of the guest function the trap fired in.
    pub func: String,
}

impl fmt::Display for TrapInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc {:#x} in `{}`", self.pc, self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = VmError::OutOfBounds {
            addr: 0x100,
            bytes: 8,
        };
        assert!(e.to_string().contains("0x100"));
        assert!(VmError::DivisionByZero { pc: 4 }
            .to_string()
            .contains("division"));
    }
}
