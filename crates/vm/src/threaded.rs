//! Threaded template compilation: the baseline template-JIT layer over
//! the coalesced + fused decoded stream.
//!
//! [`compile_func`] lowers each function's validated, regalloc'd, fused
//! `DecodedOp` stream into a flat array of pre-bound [`Template`]s — a
//! `fn` pointer paired with a packed operand struct ([`TArgs`]) — so the
//! threaded engine's hot loop in `crate::interp` is
//! `loop { (templates[ip].fn)(...) }` with **no `match` on op kind and
//! no enum payload unpacking**: operands (register indices, immediates,
//! jump targets, fused-site refs) are resolved at compile time into
//! per-op monomorphic thunks.
//!
//! ## Template binding rules
//!
//! - **Slot encoding**: operand immediates are materialized into
//!   per-function constant pools ([`ThreadedFunc::consts`] /
//!   [`ThreadedFunc::consts_i64`]) and every operand becomes one `u32`
//!   slot — a register-stack index, or (high bit [`SLOT_CONST`] set) a
//!   pool index. Reads are `Vm::tval*`: one predictable branch, no
//!   `Operand` match.
//! - **Type-specialized `i64` lanes get their own templates**: `BinI` /
//!   `CmpI` bind one monomorphic thunk per operator (`t_bini::<B_ADD>`,
//!   …), scalar loads/stores one per [`MemTy`] — the op kind is a const
//!   generic, folded at compile time.
//! - **Each fusion pattern gets its own template** (`t_fused_*`),
//!   binding directly to the per-pattern one-tick handlers shared with
//!   the decoded engine (`Vm::fused_*`), and [`DecodedOp::ElidedCopy`]
//!   binds its own retire-only thunk. Inside a superblock a fused
//!   site's `block` entry is instead the template of its *first
//!   constituent* (reconstructed from the payload): the block already
//!   batches the PMU tick, so constituent templates are both faster
//!   and trivially bit-identical (they are the site's bail path).
//! - Payload-carrying cold ops (calls, `Ret` with 2+ values, vector
//!   memory, FP-lane ops) keep a dec-bound thunk: a monomorphic handler
//!   that reads its own `DecodedOp` (irrefutable match) — still no
//!   dispatch `match`.
//! - Every template also pre-binds its synthetic `pc`, so the hot loop
//!   never touches the `pcs` table.
//!
//! ## Superblock formation
//!
//! On top of the template stream, [`form_blocks`] forms straight-line
//! superblocks at compile time: maximal runs of block-eligible units
//! (everything except calls, returns, and vector memory ops) that no
//! jump target lands inside, optionally ending in a branch. Each block
//! precomputes its machine-op total, scalar-memory-reference count,
//! branch count, and FLOP total — the shape
//! [`mperf_sim::Core::block_ready`] turns into a conservative PMU event
//! bound checked **once** against the watermark headroom, so a block of
//! 6–20 ops ticks the PMU a single time via
//! [`mperf_sim::Core::retire_block`] instead of per op.
//!
//! **The observable-invariance contract** is the same as fusion's and
//! regalloc's: cycles, instructions, PMU counter files, sampling
//! IPs/callchains, and traps landing mid-block are bit-identical to the
//! decoded and reference engines. Three mechanisms enforce it: the
//! block-entry guard (whole-block fuel + PMU headroom, falling back to
//! per-op template execution near a counter wrap), eager timing with
//! deferred ticks (so `Core::cycles` stays exact mid-block and a
//! mid-block trap commits the partial accumulator — additive counters
//! make the split unobservable), and constituent-wise execution of
//! fused sites inside blocks (identical to their bail path, so traps
//! land exactly as in the decoded engine).
//!
//! **Adding a template for a new `DecodedOp`**: give it a thunk
//! (generic over `const DEFER: bool` — `false` retires per op, `true`
//! defers the PMU tick into the open block accumulator — dispatched via
//! the `single`/`block` entries of its [`Template`]), bind it in
//! [`bind`], and
//! classify it in [`unit_cost`] (blockable? how many machine ops /
//! memory refs / branches / FLOPs?). The cross-engine equivalence
//! properties in `tests/properties.rs` then gate the observables.

use crate::decode::{DecodedFunc, DecodedModule, DecodedOp, Fused, HostTarget};
use crate::error::VmError;
use crate::interp::{eval_bin, eval_cast, eval_cmp, eval_fma, DFrame, Step, TCtx, Vm};
use crate::value::{LanesF32, LanesF64, LanesI64, Value};
use mperf_ir::{BinOp, CmpOp, MemTy, Operand, ReduceOp, Ty, UnOp};
use mperf_sim::machine_op::{MachineOp, MemRef, OpClass};
use std::fmt;

/// High bit of an operand slot: set ⇒ the low bits index the function's
/// constant pool; clear ⇒ they index the frame's register window.
pub const SLOT_CONST: u32 = 1 << 31;

/// Packed pre-bound operands of one template: four generic `u32` fields
/// (register/pool slots, jump targets, fused-site index — meaning fixed
/// per thunk) plus the op's synthetic pc.
#[derive(Debug, Clone, Copy, Default)]
pub struct TArgs {
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub d: u32,
    pub pc: u64,
}

/// One template thunk: `(vm, decoded module, this function's threaded
/// form, pre-bound args, frame cursor) -> control`.
pub(crate) type ThunkFn = for<'a, 'm> fn(
    &'a mut Vm<'m>,
    &'a DecodedModule,
    &'a ThreadedFunc,
    &'a TArgs,
    &'a mut TCtx,
) -> Result<Step, VmError>;

/// One pre-bound op: a tick-per-op entry point (`single`), a
/// deferred-tick entry point for superblock execution (`block` —
/// usually the same thunk monomorphized with `DEFER = true`; for fused
/// sites, the first constituent's template), and the packed operands.
#[derive(Clone, Copy)]
pub struct Template {
    pub(crate) single: ThunkFn,
    pub(crate) block: ThunkFn,
    pub args: TArgs,
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Template")
            .field("args", &self.args)
            .finish()
    }
}

/// One straight-line superblock over the template stream. All fields are
/// compile-time constants of the stream; `machine_ops` is exact (every
/// covered slot retires a fixed machine-op count), the rest are the
/// shape [`mperf_sim::Core::block_ready`] bounds events with.
#[derive(Debug, Clone, Copy)]
pub struct BlockInfo {
    /// First covered op index.
    pub start: u32,
    /// Final covered slot index — the driver stops after dispatching
    /// the template at (or past) this slot.
    pub last: u32,
    /// Total machine ops the block retires.
    pub machine_ops: u32,
    /// Scalar (≤ 2-line) memory references inside the block.
    pub mem_refs: u32,
    /// Branch ops inside the block (0 or 1, always last).
    pub branches: u32,
    /// Architectural FLOPs inside the block.
    pub flops: u32,
}

/// The threaded form of one function: templates parallel to the decoded
/// op array (so pre-resolved jump targets stay valid), superblock table,
/// and the operand constant pools.
#[derive(Debug, Clone, Default)]
pub struct ThreadedFunc {
    /// One pre-bound template per decoded op slot.
    pub templates: Vec<Template>,
    /// Superblocks; entered only at their first slot.
    pub blocks: Vec<BlockInfo>,
    /// Per-slot superblock index (`u32::MAX` = no block starts here).
    pub block_at: Vec<u32>,
    /// Value-lane immediates referenced by [`SLOT_CONST`] slots.
    pub consts: Vec<Value>,
    /// Raw-`i64` immediates for the type-specialized integer lanes.
    pub consts_i64: Vec<i64>,
}

/// Compile one decoded (validated, regalloc'd, fused) function into its
/// threaded template form. Runs once per decode, after `validate_func`
/// — the thunks' unchecked register accesses rely on the same pinned
/// invariants as the decoded engine's.
pub(crate) fn compile_func(df: &DecodedFunc) -> ThreadedFunc {
    let mut tf = ThreadedFunc {
        templates: Vec::with_capacity(df.ops.len()),
        ..ThreadedFunc::default()
    };
    for (ip, op) in df.ops.iter().enumerate() {
        let t = bind(op, df, &mut tf, df.pcs[ip]);
        tf.templates.push(t);
    }
    form_blocks(df, &mut tf);
    debug_assert_eq!(tf.templates.len(), df.ops.len());
    debug_assert_eq!(tf.block_at.len(), df.ops.len());
    tf
}

// ---------------------------------------------------------------------
// Operand slot binding.

fn vconst(pool: &mut Vec<Value>, v: Value) -> u32 {
    let idx = pool.iter().position(|p| p == &v).unwrap_or_else(|| {
        pool.push(v);
        pool.len() - 1
    });
    assert!((idx as u32) < SLOT_CONST, "constant pool overflow");
    idx as u32 | SLOT_CONST
}

/// Value-lane operand → slot.
fn vslot(o: &Operand, pool: &mut Vec<Value>) -> u32 {
    match o {
        Operand::Reg(r) => r.index() as u32,
        Operand::I64(v) => vconst(pool, Value::I64(*v)),
        Operand::F32(v) => vconst(pool, Value::F32(*v)),
        Operand::F64(v) => vconst(pool, Value::F64(*v)),
        Operand::Bool(v) => vconst(pool, Value::Bool(*v)),
    }
}

/// Raw-`i64`-lane operand → slot (verifier guarantees the type).
fn islot(o: &Operand, pool: &mut Vec<i64>) -> u32 {
    match o {
        Operand::Reg(r) => r.index() as u32,
        Operand::I64(v) => {
            let idx = pool.iter().position(|p| p == v).unwrap_or_else(|| {
                pool.push(*v);
                pool.len() - 1
            });
            assert!((idx as u32) < SLOT_CONST, "constant pool overflow");
            idx as u32 | SLOT_CONST
        }
        other => unreachable!("verifier admits i64 operand, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Template binding.

/// Build a two-entry template from a `const DEFER: bool` thunk, or a
/// three-param thunk carrying an extra const (op kind, memory type).
macro_rules! tpl {
    ($f:ident, $args:expr) => {
        Template {
            single: $f::<false>,
            block: $f::<true>,
            args: $args,
        }
    };
    ($f:ident, $c:expr, $args:expr) => {
        Template {
            single: $f::<{ $c }, false>,
            block: $f::<{ $c }, true>,
            args: $args,
        }
    };
}

/// A template whose op can never sit inside a superblock (calls,
/// returns): both entries point at the tick-per-op thunk.
fn single_only(f: ThunkFn, args: TArgs) -> Template {
    Template {
        single: f,
        block: f,
        args,
    }
}

// Const-generic op-kind encodings (folded inside the monomorphic
// thunks; never decoded at runtime).
const B_ADD: u8 = 0;
const B_SUB: u8 = 1;
const B_MUL: u8 = 2;
const B_DIV: u8 = 3;
const B_REM: u8 = 4;
const B_AND: u8 = 5;
const B_OR: u8 = 6;
const B_XOR: u8 = 7;
const B_SHL: u8 = 8;
const B_SHR: u8 = 9;

const C_EQ: u8 = 0;
const C_NE: u8 = 1;
const C_LT: u8 = 2;
const C_LE: u8 = 3;
const C_GT: u8 = 4;
const C_GE: u8 = 5;

const M_I8: u8 = 0;
const M_I16: u8 = 1;
const M_I32: u8 = 2;
const M_I64: u8 = 3;
const M_F32: u8 = 4;
const M_F64: u8 = 5;

const fn mem_of(mt: u8) -> MemTy {
    match mt {
        M_I8 => MemTy::I8,
        M_I16 => MemTy::I16,
        M_I32 => MemTy::I32,
        M_I64 => MemTy::I64,
        M_F32 => MemTy::F32,
        _ => MemTy::F64,
    }
}

fn bini_template(op: BinOp, args: TArgs) -> Template {
    match op {
        BinOp::Add => tpl!(t_bini, B_ADD, args),
        BinOp::Sub => tpl!(t_bini, B_SUB, args),
        BinOp::Mul => tpl!(t_bini, B_MUL, args),
        BinOp::Div => tpl!(t_bini, B_DIV, args),
        BinOp::Rem => tpl!(t_bini, B_REM, args),
        BinOp::And => tpl!(t_bini, B_AND, args),
        BinOp::Or => tpl!(t_bini, B_OR, args),
        BinOp::Xor => tpl!(t_bini, B_XOR, args),
        BinOp::Shl => tpl!(t_bini, B_SHL, args),
        BinOp::Shr => tpl!(t_bini, B_SHR, args),
        other => unreachable!("verifier admits integer {other:?}"),
    }
}

fn cmpi_template(op: CmpOp, args: TArgs) -> Template {
    match op {
        CmpOp::Eq => tpl!(t_cmpi, C_EQ, args),
        CmpOp::Ne => tpl!(t_cmpi, C_NE, args),
        CmpOp::Lt => tpl!(t_cmpi, C_LT, args),
        CmpOp::Le => tpl!(t_cmpi, C_LE, args),
        CmpOp::Gt => tpl!(t_cmpi, C_GT, args),
        CmpOp::Ge => tpl!(t_cmpi, C_GE, args),
    }
}

fn load_template(mem: MemTy, args: TArgs) -> Template {
    match mem {
        MemTy::I8 => tpl!(t_load_scalar, M_I8, args),
        MemTy::I16 => tpl!(t_load_scalar, M_I16, args),
        MemTy::I32 => tpl!(t_load_scalar, M_I32, args),
        MemTy::I64 => tpl!(t_load_scalar, M_I64, args),
        MemTy::F32 => tpl!(t_load_scalar, M_F32, args),
        MemTy::F64 => tpl!(t_load_scalar, M_F64, args),
    }
}

fn store_template(mem: MemTy, args: TArgs) -> Template {
    match mem {
        MemTy::I8 => tpl!(t_store_scalar, M_I8, args),
        MemTy::I16 => tpl!(t_store_scalar, M_I16, args),
        MemTy::I32 => tpl!(t_store_scalar, M_I32, args),
        MemTy::I64 => tpl!(t_store_scalar, M_I64, args),
        MemTy::F32 => tpl!(t_store_scalar, M_F32, args),
        MemTy::F64 => tpl!(t_store_scalar, M_F64, args),
    }
}

/// Bind one decoded op to its template.
fn bind(op: &DecodedOp, df: &DecodedFunc, tf: &mut ThreadedFunc, pc: u64) -> Template {
    use DecodedOp as D;
    let args0 = TArgs {
        pc,
        ..TArgs::default()
    };
    match op {
        D::BinI {
            op, dst, lhs, rhs, ..
        } => bini_template(
            *op,
            TArgs {
                a: *dst,
                b: islot(lhs, &mut tf.consts_i64),
                c: islot(rhs, &mut tf.consts_i64),
                d: 0,
                pc,
            },
        ),
        D::CmpI { op, dst, lhs, rhs } => cmpi_template(
            *op,
            TArgs {
                a: *dst,
                b: islot(lhs, &mut tf.consts_i64),
                c: islot(rhs, &mut tf.consts_i64),
                d: 0,
                pc,
            },
        ),
        D::PtrAdd { dst, base, offset } => tpl!(
            t_ptradd,
            TArgs {
                a: *dst,
                b: islot(base, &mut tf.consts_i64),
                c: islot(offset, &mut tf.consts_i64),
                d: 0,
                pc,
            }
        ),
        D::Select { dst, cond, t, f } => tpl!(
            t_select,
            TArgs {
                a: *dst,
                b: vslot(cond, &mut tf.consts),
                c: vslot(t, &mut tf.consts),
                d: vslot(f, &mut tf.consts),
                pc,
            }
        ),
        D::Copy { dst, src } => tpl!(
            t_copy,
            TArgs {
                a: *dst,
                b: vslot(src, &mut tf.consts),
                d: 0,
                c: 0,
                pc,
            }
        ),
        D::ElidedCopy => tpl!(t_elided, args0),
        D::Load {
            lanes: 1,
            dst,
            addr,
            mem,
            ..
        } => load_template(
            *mem,
            TArgs {
                a: *dst,
                b: islot(addr, &mut tf.consts_i64),
                c: 0,
                d: 0,
                pc,
            },
        ),
        D::Store {
            lanes: 1,
            addr,
            val,
            mem,
            ..
        } => store_template(
            *mem,
            TArgs {
                a: islot(addr, &mut tf.consts_i64),
                b: vslot(val, &mut tf.consts),
                c: 0,
                d: 0,
                pc,
            },
        ),
        D::Load { .. } => tpl!(t_load_vec, args0),
        D::Store { .. } => tpl!(t_store_vec, args0),
        D::Bin { .. } => tpl!(t_bin, args0),
        D::Cmp { .. } => tpl!(t_cmp, args0),
        D::Un { .. } => tpl!(t_un, args0),
        D::Fma { .. } => tpl!(t_fma, args0),
        D::Cast { .. } => tpl!(t_cast, args0),
        D::Splat { .. } => tpl!(t_splat, args0),
        D::Reduce { .. } => tpl!(t_reduce, args0),
        D::ProfCount(_) => tpl!(t_profcount, args0),
        D::CallHost { .. } => tpl!(t_callhost, args0),
        D::CallFunc { .. } => single_only(t_callfunc, args0),
        D::Br { target } => tpl!(
            t_br,
            TArgs {
                a: *target,
                b: 0,
                c: 0,
                d: 0,
                pc,
            }
        ),
        D::CondBr { cond, t, f } => tpl!(
            t_condbr,
            TArgs {
                a: vslot(cond, &mut tf.consts),
                b: *t,
                c: *f,
                d: 0,
                pc,
            }
        ),
        D::Ret { vals } => match vals.len() {
            0 => single_only(t_ret0, args0),
            1 => single_only(
                t_ret1,
                TArgs {
                    a: vslot(&vals[0], &mut tf.consts),
                    b: 0,
                    c: 0,
                    d: 0,
                    pc,
                },
            ),
            _ => single_only(t_retn, args0),
        },
        D::Fused(fi) => {
            let site = &df.fused[*fi as usize];
            // Outside superblocks the site runs its one-tick fused
            // handler; inside, it executes as constituent templates
            // (identical to its bail path, hence bit-identical): the
            // `block` entry is the template of the site's *first
            // constituent*, reconstructed from the payload, and the
            // tail slots keep their own templates.
            let single: ThunkFn = match &site.op {
                Fused::CmpBranch { .. } => t_fused_cmp_branch as ThunkFn,
                Fused::IncCmpBranch { .. } => t_fused_inc_cmp_branch as ThunkFn,
                Fused::BinCopy { .. } => t_fused_bin_copy as ThunkFn,
                Fused::AddrLoad { .. } => t_fused_addr_load as ThunkFn,
                Fused::AddrStore { .. } => t_fused_addr_store as ThunkFn,
                Fused::LoadOp { .. } => t_fused_load_op as ThunkFn,
                Fused::AddrLoadOp { .. } => t_fused_addr_load_op as ThunkFn,
            };
            let cons_op = first_constituent(site);
            match cons_op {
                // FP-lane constituents bind dec-bound templates, which
                // read their own op from the stream — but the stream
                // slot holds `Fused`. Those (rare, FP) sites are
                // excluded from superblocks by `unit_cost`, so their
                // `block` entry is never driven; point it at the fused
                // handler defensively (like calls).
                DecodedOp::Bin { .. } | DecodedOp::Cmp { .. } => Template {
                    single,
                    block: single,
                    args: TArgs {
                        pc,
                        ..TArgs::default()
                    },
                },
                _ => {
                    let cons = bind(&cons_op, df, tf, pc);
                    Template {
                        single,
                        block: cons.block,
                        args: cons.args,
                    }
                }
            }
        }
    }
}

/// Reconstruct the *first constituent* op of a fused site — exactly the
/// op that sat at the site's slot before fusion replaced it (the same
/// op the bail path executes). Inside a superblock the site runs this
/// template and then the tail slots' own templates: bit-identical to
/// the unfused stream, which is bit-identical to the fused one.
fn first_constituent(site: &crate::decode::FusedSite) -> DecodedOp {
    match &site.op {
        Fused::CmpBranch {
            op,
            c_dst,
            lhs,
            rhs,
            int,
            ..
        } => {
            if *int {
                DecodedOp::CmpI {
                    op: *op,
                    dst: *c_dst,
                    lhs: *lhs,
                    rhs: *rhs,
                }
            } else {
                DecodedOp::Cmp {
                    op: *op,
                    dst: *c_dst,
                    lhs: *lhs,
                    rhs: *rhs,
                }
            }
        }
        Fused::IncCmpBranch {
            i_op,
            i_dst,
            i_lhs,
            i_rhs,
            ..
        } => DecodedOp::BinI {
            op: *i_op,
            class: OpClass::IntAlu,
            dst: *i_dst,
            lhs: *i_lhs,
            rhs: *i_rhs,
        },
        Fused::BinCopy {
            op,
            class,
            flops,
            int,
            b_dst,
            lhs,
            rhs,
            ..
        } => {
            if *int {
                DecodedOp::BinI {
                    op: *op,
                    class: *class,
                    dst: *b_dst,
                    lhs: *lhs,
                    rhs: *rhs,
                }
            } else {
                DecodedOp::Bin {
                    op: *op,
                    class: *class,
                    flops: *flops,
                    dst: *b_dst,
                    lhs: *lhs,
                    rhs: *rhs,
                }
            }
        }
        Fused::AddrLoad {
            a_dst,
            base,
            offset,
            ..
        }
        | Fused::AddrStore {
            a_dst,
            base,
            offset,
            ..
        }
        | Fused::AddrLoadOp {
            a_dst,
            base,
            offset,
            ..
        } => DecodedOp::PtrAdd {
            dst: *a_dst,
            base: *base,
            offset: *offset,
        },
        // The scalar-load template never reads the stride operand, so a
        // synthesized unit stride is unobservable (the original stride
        // was evaluated and discarded for `lanes == 1`).
        Fused::LoadOp {
            l_dst, addr, mem, ..
        } => DecodedOp::Load {
            class: OpClass::Load,
            dst: *l_dst,
            addr: *addr,
            mem: *mem,
            lanes: 1,
            stride: Operand::I64(mem.bytes() as i64),
        },
    }
}

// ---------------------------------------------------------------------
// Superblock formation.

struct Unit {
    width: u32,
    machine_ops: u32,
    mem_refs: u32,
    branches: u32,
    flops: u32,
    term: bool,
}

/// Classify one op slot as a block unit, or `None` when it cannot sit
/// inside a superblock (frame transfers, vector memory — their event
/// footprint is unbounded by the block shape).
fn unit_cost(op: &DecodedOp, df: &DecodedFunc) -> Option<Unit> {
    use DecodedOp as D;
    let unit = |machine_ops, mem_refs, branches, flops, term| Unit {
        width: 1,
        machine_ops,
        mem_refs,
        branches,
        flops,
        term,
    };
    Some(match op {
        D::CallFunc { .. } | D::Ret { .. } => return None,
        D::Load { lanes, .. } | D::Store { lanes, .. } if *lanes > 1 => return None,
        D::Br { .. } => unit(1, 0, 0, 0, true),
        D::CondBr { .. } => unit(1, 0, 1, 0, true),
        D::CallHost { .. } => unit(4, 0, 0, 0, false),
        D::ProfCount(_) => unit(5, 2, 0, 0, false),
        D::Bin { flops, .. }
        | D::Un { flops, .. }
        | D::Fma { flops, .. }
        | D::Reduce { flops, .. } => unit(1, 0, 0, *flops, false),
        D::Load { .. } | D::Store { .. } => unit(1, 1, 0, 0, false),
        D::Fused(fi) => {
            let site = &df.fused[*fi as usize];
            let w = site.width as u32;
            let (mem_refs, branches, flops, term) = match &site.op {
                // FP-first-constituent sites have no slot-bound
                // constituent template (their first op would be a
                // dec-bound FP thunk, and the slot holds `Fused`), so
                // they stay outside blocks and run their one-tick fused
                // handler — an eager tick *inside* a block would
                // double-count the telescoped cycles.
                Fused::CmpBranch { int: false, .. } | Fused::BinCopy { int: false, .. } => {
                    return None
                }
                Fused::CmpBranch { .. } | Fused::IncCmpBranch { .. } => (0, 1, 0, true),
                Fused::BinCopy { flops, .. } => (0, 0, *flops, false),
                Fused::AddrLoad { .. } | Fused::AddrStore { .. } => (1, 0, 0, false),
                Fused::LoadOp { flops, .. } | Fused::AddrLoadOp { flops, .. } => {
                    (1, 0, *flops, false)
                }
            };
            Unit {
                width: w,
                machine_ops: w,
                mem_refs,
                branches,
                flops,
                term,
            }
        }
        // BinI, Cmp, CmpI, PtrAdd, Select, Cast, Copy, ElidedCopy, Splat.
        _ => unit(1, 0, 0, 0, false),
    })
}

/// Form maximal straight-line superblocks: runs of blockable units no
/// jump target lands inside, ending at a branch, a non-blockable op, or
/// a block entry. Single-unit runs get no block (the per-op path is
/// already optimal for them).
fn form_blocks(df: &DecodedFunc, tf: &mut ThreadedFunc) {
    let len = df.ops.len();
    tf.block_at = vec![u32::MAX; len];
    let mut is_entry = vec![false; len];
    for e in &df.block_entry {
        is_entry[*e as usize] = true;
    }
    let mut i = 0usize;
    while i < len {
        let Some(first) = unit_cost(&df.ops[i], df) else {
            i += 1;
            continue;
        };
        let start = i;
        let (mut mo, mut mem, mut br, mut fl) = (0u32, 0u32, 0u32, 0u32);
        let mut j = i;
        loop {
            if j >= len || (j > start && is_entry[j]) {
                break;
            }
            let Some(u) = unit_cost(&df.ops[j], df) else {
                break;
            };
            mo += u.machine_ops;
            mem += u.mem_refs;
            br += u.branches;
            fl += u.flops;
            j += u.width as usize;
            if u.term {
                break;
            }
        }
        // A block needs at least two machine ops to amortize its entry
        // guard — which includes a lone multi-op fused site (a loop
        // back edge at a block entry runs as a one-unit superblock).
        if mo >= 2 {
            tf.block_at[start] = tf.blocks.len() as u32;
            tf.blocks.push(BlockInfo {
                start: start as u32,
                // The final covered *slot*: in-block execution advances
                // slot by slot (fused sites run their constituents), so
                // the driver stops after dispatching this slot.
                last: (j - 1) as u32,
                machine_ops: mo,
                mem_refs: mem,
                branches: br,
                flops: fl,
            });
            i = j;
        } else {
            i = start + first.width.max(1) as usize;
        }
    }
}

// ---------------------------------------------------------------------
// Thunks. Every thunk assumes the driver pre-incremented `ctx.cur.ip`
// (so `ctx.cur.ip - 1` is this op's slot), mirrors the decoded engine's
// order of effects (evaluate → trap → write → retire) exactly, and
// retires through `Vm::retire_*::<DEFER>` — per-op ticks when driven
// singly, deferred accumulation inside a guarded superblock.

/// This thunk's own `DecodedOp` (for the payload-carrying cold ops).
#[inline(always)]
fn cur_op<'a>(dec: &'a DecodedModule, ctx: &TCtx) -> &'a DecodedOp {
    // SAFETY: the driver validated `func`/`ip` exactly as the decoded
    // engine does (validated stream, terminator-last invariant).
    unsafe {
        dec.funcs
            .get_unchecked(ctx.cur.func as usize)
            .ops
            .get_unchecked(ctx.cur.ip as usize - 1)
    }
}

#[inline(always)]
fn bini_eval<const OP: u8>(x: i64, y: i64, pc: u64) -> Result<i64, VmError> {
    Ok(match OP {
        B_ADD => x.wrapping_add(y),
        B_SUB => x.wrapping_sub(y),
        B_MUL => x.wrapping_mul(y),
        B_DIV => {
            if y == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            x.wrapping_div(y)
        }
        B_REM => {
            if y == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            x.wrapping_rem(y)
        }
        B_AND => x & y,
        B_OR => x | y,
        B_XOR => x ^ y,
        B_SHL => x.wrapping_shl(y as u32 & 63),
        _ => x.wrapping_shr(y as u32 & 63),
    })
}

fn t_bini<const OP: u8, const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let x = vm.tval_i64(base, ta.b, &tf.consts_i64);
    let y = vm.tval_i64(base, ta.c, &tf.consts_i64);
    let v = bini_eval::<OP>(x, y, ta.pc)?;
    vm.dset(base, ta.a, Value::I64(v));
    let class = match OP {
        B_MUL => OpClass::IntMul,
        B_DIV | B_REM => OpClass::IntDiv,
        _ => OpClass::IntAlu,
    };
    vm.retire_class::<DEFER>(class, ta.pc);
    Ok(Step::Continue)
}

fn t_cmpi<const OP: u8, const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let x = vm.tval_i64(base, ta.b, &tf.consts_i64);
    let y = vm.tval_i64(base, ta.c, &tf.consts_i64);
    let c = match OP {
        C_EQ => x == y,
        C_NE => x != y,
        C_LT => x < y,
        C_LE => x <= y,
        C_GT => x > y,
        _ => x >= y,
    };
    vm.dset(base, ta.a, Value::Bool(c));
    vm.retire_class::<DEFER>(OpClass::IntAlu, ta.pc);
    Ok(Step::Continue)
}

fn t_ptradd<const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let b = vm.tval_i64(base, ta.b, &tf.consts_i64);
    let o = vm.tval_i64(base, ta.c, &tf.consts_i64);
    vm.dset(base, ta.a, Value::I64(b.wrapping_add(o)));
    vm.retire_class::<DEFER>(OpClass::AddrCalc, ta.pc);
    Ok(Step::Continue)
}

fn t_select<const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let c = vm.tval_bool(base, ta.b, &tf.consts);
    let v = if c {
        vm.tval(base, ta.c, &tf.consts)
    } else {
        vm.tval(base, ta.d, &tf.consts)
    };
    vm.dset(base, ta.a, v);
    vm.retire_class::<DEFER>(OpClass::IntAlu, ta.pc);
    Ok(Step::Continue)
}

fn t_copy<const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let v = vm.tval(base, ta.b, &tf.consts);
    vm.dset(base, ta.a, v);
    vm.regalloc_dyn.copies_moved += 1;
    vm.retire_class::<DEFER>(OpClass::Move, ta.pc);
    Ok(Step::Continue)
}

fn t_elided<const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    _ctx: &mut TCtx,
) -> Result<Step, VmError> {
    // A coalesced copy: only the modeled `Move` retires — same machine
    // op, same pc, no data movement.
    vm.stats.mir_ops += 1;
    vm.regalloc_dyn.copies_elided += 1;
    vm.retire_class::<DEFER>(OpClass::Move, ta.pc);
    Ok(Step::Continue)
}

fn t_load_scalar<const MT: u8, const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let addr = vm.tval_i64(base, ta.b, &tf.consts_i64) as u64;
    let mem = mem_of(MT);
    let v = vm.load_scalar(addr, mem)?;
    vm.dset(base, ta.a, v);
    vm.retire_one::<DEFER>(
        MachineOp::simple(OpClass::Load, ta.pc).with_mem(MemRef::scalar(
            addr,
            mem.bytes() as u32,
            false,
        )),
    );
    Ok(Step::Continue)
}

fn t_store_scalar<const MT: u8, const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let addr = vm.tval_i64(base, ta.a, &tf.consts_i64) as u64;
    let mem = mem_of(MT);
    let v = vm.tval(base, ta.b, &tf.consts);
    vm.store_scalar(addr, mem, &v)?;
    vm.retire_one::<DEFER>(
        MachineOp::simple(OpClass::Store, ta.pc).with_mem(MemRef::scalar(
            addr,
            mem.bytes() as u32,
            true,
        )),
    );
    Ok(Step::Continue)
}

fn t_load_vec<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Load {
        class,
        dst,
        addr,
        mem,
        lanes,
        stride,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Load")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let a = vm.deval_i64(base, *addr) as u64;
    let st = vm.deval_i64(base, *stride);
    let v = vm.load_value(a, *mem, *lanes, st)?;
    vm.dset(base, *dst, v);
    let mref = MemRef {
        addr: a,
        bytes: mem.bytes() as u32,
        lanes: *lanes as u32,
        stride: st,
        is_store: false,
    };
    vm.retire_one::<DEFER>(MachineOp::simple(*class, ta.pc).with_mem(mref));
    Ok(Step::Continue)
}

fn t_store_vec<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Store {
        class,
        addr,
        val,
        mem,
        lanes,
        stride,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Store")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let a = vm.deval_i64(base, *addr) as u64;
    let st = vm.deval_i64(base, *stride);
    let v = vm.deval(base, *val);
    vm.store_value(a, *mem, *lanes, st, &v)?;
    let mref = MemRef {
        addr: a,
        bytes: mem.bytes() as u32,
        lanes: *lanes as u32,
        stride: st,
        is_store: true,
    };
    vm.retire_one::<DEFER>(MachineOp::simple(*class, ta.pc).with_mem(mref));
    Ok(Step::Continue)
}

fn t_bin<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Bin {
        op,
        class,
        flops,
        dst,
        lhs,
        rhs,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Bin")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let a = vm.deval(base, *lhs);
    let b = vm.deval(base, *rhs);
    let v = eval_bin(*op, &a, &b, ta.pc)?;
    vm.dset(base, *dst, v);
    vm.retire_one::<DEFER>(MachineOp::simple(*class, ta.pc).with_flops(*flops));
    Ok(Step::Continue)
}

fn t_cmp<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Cmp { op, dst, lhs, rhs } = cur_op(dec, ctx) else {
        unreachable!("bound to Cmp")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let a = vm.deval(base, *lhs);
    let b = vm.deval(base, *rhs);
    vm.dset(base, *dst, Value::Bool(eval_cmp(*op, &a, &b)));
    vm.retire_class::<DEFER>(OpClass::IntAlu, ta.pc);
    Ok(Step::Continue)
}

fn t_un<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Un {
        op,
        class,
        flops,
        dst,
        src,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Un")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let v = vm.deval(base, *src);
    let r = match (op, v) {
        (UnOp::Neg, Value::I64(x)) => Value::I64(x.wrapping_neg()),
        (UnOp::FNeg, Value::F32(x)) => Value::F32(-x),
        (UnOp::FNeg, Value::F64(x)) => Value::F64(-x),
        (UnOp::FNeg, Value::VF32(x)) => Value::VF32(x.iter().map(|l| -l).collect()),
        (UnOp::FNeg, Value::VF64(x)) => Value::VF64(x.iter().map(|l| -l).collect()),
        (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
        (o, v) => unreachable!("verifier admits {o:?} of {v:?}"),
    };
    vm.dset(base, *dst, r);
    vm.retire_one::<DEFER>(MachineOp::simple(*class, ta.pc).with_flops(*flops));
    Ok(Step::Continue)
}

fn t_fma<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Fma {
        class,
        flops,
        dst,
        a,
        b,
        c,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Fma")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let va = vm.deval(base, *a);
    let vb = vm.deval(base, *b);
    let vc = vm.deval(base, *c);
    let r = eval_fma(va, vb, vc);
    vm.dset(base, *dst, r);
    vm.retire_one::<DEFER>(MachineOp::simple(*class, ta.pc).with_flops(*flops));
    Ok(Step::Continue)
}

fn t_cast<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Cast {
        kind,
        class,
        dst_ty,
        dst,
        src,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Cast")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let v = vm.deval(base, *src);
    let r = eval_cast(*kind, &v, *dst_ty);
    vm.dset(base, *dst, r);
    vm.retire_class::<DEFER>(*class, ta.pc);
    Ok(Step::Continue)
}

fn t_splat<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Splat {
        elem,
        lanes,
        dst,
        src,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Splat")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let v = vm.deval(base, *src);
    let n = *lanes as usize;
    let r = match (elem, v) {
        (Ty::F32, Value::F32(x)) => Value::VF32(LanesF32::splat(x, n)),
        (Ty::F64, Value::F64(x)) => Value::VF64(LanesF64::splat(x, n)),
        (Ty::I64, Value::I64(x)) => Value::VI64(LanesI64::splat(x, n)),
        (t, v) => unreachable!("verifier admits splat {t} of {v:?}"),
    };
    vm.dset(base, *dst, r);
    // Vector class: the vec-instruction event needs the full op path.
    vm.retire_one::<DEFER>(MachineOp::simple(OpClass::VecShuffle, ta.pc));
    Ok(Step::Continue)
}

fn t_reduce<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Reduce {
        op,
        flops,
        dst,
        src,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to Reduce")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let v = vm.deval(base, *src);
    let r = match (op, v) {
        (ReduceOp::FAdd, Value::VF32(x)) => Value::F32(x.iter().sum()),
        (ReduceOp::FAdd, Value::VF64(x)) => Value::F64(x.iter().sum()),
        (ReduceOp::Add, Value::VI64(x)) => {
            Value::I64(x.iter().fold(0i64, |a, b| a.wrapping_add(*b)))
        }
        (o, v) => unreachable!("verifier admits reduce {o:?} of {v:?}"),
    };
    vm.dset(base, *dst, r);
    vm.retire_one::<DEFER>(MachineOp::simple(OpClass::VecShuffle, ta.pc).with_flops(*flops));
    Ok(Step::Continue)
}

fn t_profcount<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::ProfCount(counts) = cur_op(dec, ctx) else {
        unreachable!("bound to ProfCount")
    };
    vm.stats.mir_ops += 1;
    vm.roofline.prof_count(*counts);
    // The counter update is real guest work: a handful of integer ops
    // plus a load/store to the counter block.
    let scratch = vm.prof_scratch;
    vm.retire_classes::<DEFER>(
        &[OpClass::IntAlu, OpClass::IntAlu, OpClass::IntAlu],
        &[ta.pc, ta.pc, ta.pc],
    );
    vm.retire_one::<DEFER>(
        MachineOp::simple(OpClass::Load, ta.pc).with_mem(MemRef::scalar(scratch, 8, false)),
    );
    vm.retire_one::<DEFER>(
        MachineOp::simple(OpClass::Store, ta.pc).with_mem(MemRef::scalar(scratch, 8, true)),
    );
    Ok(Step::Continue)
}

fn t_callhost<const DEFER: bool>(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::CallHost { target, dsts, args } = cur_op(dec, ctx) else {
        unreachable!("bound to CallHost")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let mut argv = std::mem::take(&mut vm.arg_scratch);
    argv.clear();
    for a in args.iter() {
        argv.push(vm.deval(base, *a));
    }
    vm.stats.calls += 1;
    // One call op plus a few instructions of real notification work
    // (mirrors the decoded engine's accounting).
    vm.retire_classes::<DEFER>(
        &[
            OpClass::CallRet,
            OpClass::IntAlu,
            OpClass::IntAlu,
            OpClass::IntAlu,
        ],
        &[ta.pc, ta.pc, ta.pc, ta.pc],
    );
    match target {
        HostTarget::LoopBegin => {
            let id = argv[0].as_i64() as u32;
            let now = vm.core.cycles();
            vm.roofline.loop_begin(id, now);
        }
        HostTarget::LoopEnd => {
            let id = argv[0].as_i64() as u32;
            let now = vm.core.cycles();
            vm.roofline.loop_end(id, now);
        }
        HostTarget::IsInstrumented => {
            let v = Value::Bool(vm.roofline.instrumented);
            if let Some(d) = dsts.first() {
                vm.dregs[base + d.index()] = v;
            }
        }
        HostTarget::Named(id) => {
            let name = &dec.host_names[*id as usize];
            let rets = match vm.host.get_mut(name) {
                Some(h) => h(&argv).map_err(VmError::HostFault)?,
                None => {
                    vm.arg_scratch = argv;
                    return Err(VmError::UnknownHost(name.clone()));
                }
            };
            for (d, v) in dsts.iter().zip(rets) {
                vm.dregs[base + d.index()] = v;
            }
        }
    }
    vm.arg_scratch = argv;
    Ok(Step::Continue)
}

/// Single-mode only (calls transfer frames, so they end superblocks).
fn t_callfunc(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::CallFunc {
        callee,
        dsts: _,
        args,
    } = cur_op(dec, ctx)
    else {
        unreachable!("bound to CallFunc")
    };
    vm.stats.mir_ops += 1;
    let base = ctx.cur.base as usize;
    let mut argv = std::mem::take(&mut vm.arg_scratch);
    argv.clear();
    for a in args.iter() {
        argv.push(vm.deval(base, *a));
    }
    vm.stats.calls += 1;
    vm.retire_d(MachineOp::simple(OpClass::CallRet, ta.pc));
    if vm.dstack.len() >= vm.max_depth {
        vm.arg_scratch = argv;
        return Err(VmError::StackOverflow {
            depth: vm.dstack.len(),
        });
    }
    // SAFETY: callee ids are validated at decode time.
    let cf = unsafe { dec.funcs.get_unchecked(*callee as usize) };
    let new_base = vm.dregs.len();
    vm.dregs
        .resize(new_base + cf.num_regs as usize, Value::I64(0));
    for (p, a) in cf.params.iter().zip(argv.drain(..)) {
        vm.dregs[new_base + *p as usize] = a;
    }
    vm.arg_scratch = argv;
    vm.dstack.last_mut().expect("caller frame").ip = ctx.cur.ip;
    ctx.cur = DFrame {
        func: *callee,
        base: new_base as u32,
        ip: 0,
        call_pc: ta.pc,
    };
    vm.dstack.push(ctx.cur);
    Ok(Step::Continue)
}

/// Shared frame-pop tail of the `Ret` templates.
#[inline(always)]
fn ret_with(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    ctx: &mut TCtx,
    mut out: Vec<Value>,
    pc: u64,
) -> Result<Step, VmError> {
    vm.retire_d(MachineOp::simple(OpClass::CallRet, pc));
    let base = ctx.cur.base as usize;
    vm.dstack.pop();
    if vm.dstack.len() == ctx.base_depth {
        vm.dregs.truncate(base);
        vm.ret_scratch = out;
        return Ok(Step::Finished);
    }
    ctx.cur = *vm.dstack.last().expect("caller frame");
    let pf = &dec.funcs[ctx.cur.func as usize];
    let dsts = match &pf.ops[ctx.cur.ip as usize - 1] {
        DecodedOp::CallFunc { dsts, .. } => dsts,
        other => unreachable!("return to non-call op {other:?}"),
    };
    for (d, v) in dsts.iter().zip(out.drain(..)) {
        vm.dregs[ctx.cur.base as usize + d.index()] = v;
    }
    vm.dregs.truncate(base);
    vm.ret_scratch = out;
    Ok(Step::Continue)
}

fn t_ret0(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let mut out = std::mem::take(&mut vm.ret_scratch);
    out.clear();
    ret_with(vm, dec, ctx, out, ta.pc)
}

fn t_ret1(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let mut out = std::mem::take(&mut vm.ret_scratch);
    out.clear();
    out.push(vm.tval(ctx.cur.base as usize, ta.a, &tf.consts));
    ret_with(vm, dec, ctx, out, ta.pc)
}

fn t_retn(
    vm: &mut Vm<'_>,
    dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let DecodedOp::Ret { vals } = cur_op(dec, ctx) else {
        unreachable!("bound to Ret")
    };
    let base = ctx.cur.base as usize;
    let mut out = std::mem::take(&mut vm.ret_scratch);
    out.clear();
    for v in vals.iter() {
        out.push(vm.deval(base, *v));
    }
    ret_with(vm, dec, ctx, out, ta.pc)
}

fn t_br<const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    _tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    vm.retire_class::<DEFER>(OpClass::Move, ta.pc);
    ctx.cur.ip = ta.a;
    Ok(Step::Continue)
}

fn t_condbr<const DEFER: bool>(
    vm: &mut Vm<'_>,
    _dec: &DecodedModule,
    tf: &ThreadedFunc,
    ta: &TArgs,
    ctx: &mut TCtx,
) -> Result<Step, VmError> {
    let base = ctx.cur.base as usize;
    let c = vm.tval_bool(base, ta.a, &tf.consts);
    if DEFER {
        vm.stats.machine_ops += 1;
        vm.core.block_apply_branch(ta.pc, c, &mut vm.block_acc);
    } else {
        vm.retire_d(MachineOp::simple(OpClass::Branch, ta.pc).with_taken(c));
    }
    ctx.cur.ip = if c { ta.b } else { ta.c };
    Ok(Step::Continue)
}

/// Per-pattern fused templates: bind straight to the handlers shared
/// with the decoded engine. Single-dispatch only — inside a superblock
/// a fused site executes as its constituent templates (the `block`
/// entry of its [`Template`] is the reconstructed first constituent),
/// because the block already batches the PMU tick. The site index is
/// recovered from the op stream; the template's `args` belong to the
/// constituent entry.
macro_rules! fused_thunk {
    ($name:ident, $method:ident) => {
        fn $name(
            vm: &mut Vm<'_>,
            dec: &DecodedModule,
            _tf: &ThreadedFunc,
            _ta: &TArgs,
            ctx: &mut TCtx,
        ) -> Result<Step, VmError> {
            let DecodedOp::Fused(fi) = cur_op(dec, ctx) else {
                unreachable!("bound to Fused")
            };
            // SAFETY: func/ip/fused indices validated at decode time.
            let df = unsafe { dec.funcs.get_unchecked(ctx.cur.func as usize) };
            let ip = ctx.cur.ip as usize - 1;
            let site = unsafe { df.fused.get_unchecked(*fi as usize) };
            let base = ctx.cur.base as usize;
            vm.$method(df, site, ip, base, &mut ctx.cur)?;
            Ok(Step::Continue)
        }
    };
}

fused_thunk!(t_fused_cmp_branch, fused_cmp_branch);
fused_thunk!(t_fused_inc_cmp_branch, fused_inc_cmp_branch);
fused_thunk!(t_fused_bin_copy, fused_bin_copy);
fused_thunk!(t_fused_addr_load, fused_addr_load);
fused_thunk!(t_fused_addr_store, fused_addr_store);
fused_thunk!(t_fused_load_op, fused_load_op);
fused_thunk!(t_fused_addr_load_op, fused_addr_load_op);

#[cfg(test)]
mod tests {
    use crate::decode::DecodedModule;
    use mperf_ir::compile;

    #[test]
    fn templates_parallel_the_op_stream() {
        let src = r#"
            fn f(p: *i64, n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) { s = s + p[i % 8]; }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let dec = DecodedModule::decode(&module);
        for (df, tf) in dec.funcs.iter().zip(&dec.threaded) {
            assert_eq!(tf.templates.len(), df.ops.len());
            assert_eq!(tf.block_at.len(), df.ops.len());
            for b in &tf.blocks {
                assert!((b.start as usize) < df.ops.len());
                assert!(b.start <= b.last && (b.last as usize) < df.ops.len());
                assert!(b.machine_ops >= 2, "single-unit runs form no block");
            }
            // Every block index in block_at points at a real block whose
            // start is that slot.
            for (ip, bi) in tf.block_at.iter().enumerate() {
                if *bi != u32::MAX {
                    assert_eq!(tf.blocks[*bi as usize].start as usize, ip);
                }
            }
        }
    }

    #[test]
    fn blocks_cover_the_hot_loop_body() {
        // The spin loop body (fused bin+copy, fused back edge) must form
        // at least one multi-op superblock with a branch at the end.
        let src = r#"
            fn spin(n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    s = (s ^ i) + (i >> 2);
                }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let dec = DecodedModule::decode(&module);
        let tf = &dec.threaded[0];
        assert!(!tf.blocks.is_empty(), "spin forms superblocks");
        // The loop body (two bins, a fused bin+elided-copy assignment,
        // and its terminator) collapses into one multi-op block — one
        // PMU tick instead of four-plus. The back-edge compare-and-
        // branch block is a jump target, so it stays its own unit.
        assert!(
            tf.blocks.iter().any(|b| b.machine_ops >= 5),
            "a multi-op body block exists: {:?}",
            tf.blocks
        );
    }

    /// A conditional inside a straight-line body keeps its fused
    /// compare-and-branch *inside* the superblock (branch-terminated
    /// block).
    #[test]
    fn branch_terminated_blocks_form() {
        let src = r#"
            fn f(p: *i64, n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    if (p[i % 8] > 3) { s = s + 1; }
                }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let dec = DecodedModule::decode(&module);
        let tf = &dec.threaded[0];
        assert!(
            tf.blocks
                .iter()
                .any(|b| b.branches == 1 && b.machine_ops >= 3),
            "a branch-terminated multi-op block exists: {:?}",
            tf.blocks
        );
    }

    #[test]
    fn immediates_land_in_constant_pools() {
        let src = "fn f(x: i64) -> i64 { return x + 41; }";
        let module = compile("t", src).unwrap();
        let dec = DecodedModule::decode(&module);
        let tf = &dec.threaded[0];
        assert!(
            tf.consts_i64.contains(&41),
            "immediate materialized: {:?}",
            tf.consts_i64
        );
    }
}
