//! Runtime values.

use mperf_ir::Ty;

/// A runtime value held in a virtual register.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    F32(f32),
    F64(f64),
    Bool(bool),
    /// Vector lanes (length = type's lane count).
    VF32(Vec<f32>),
    VF64(Vec<f64>),
    VI64(Vec<i64>),
}

impl Value {
    /// Zero value of a type.
    pub fn zero_of(ty: Ty) -> Value {
        match ty {
            Ty::I64 | Ty::Ptr => Value::I64(0),
            Ty::F32 => Value::F32(0.0),
            Ty::F64 => Value::F64(0.0),
            Ty::Bool => Value::Bool(false),
            Ty::VecF32(n) => Value::VF32(vec![0.0; n as usize]),
            Ty::VecF64(n) => Value::VF64(vec![0.0; n as usize]),
            Ty::VecI64(n) => Value::VI64(vec![0; n as usize]),
        }
    }

    /// The i64 payload (addresses are i64 at run time).
    ///
    /// # Panics
    /// Panics on non-integer values (a type-confusion bug — the verifier
    /// excludes it for well-formed modules).
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected i64, found {other:?}"),
        }
    }

    /// The f32 payload.
    ///
    /// # Panics
    /// Panics on other variants.
    pub fn as_f32(&self) -> f32 {
        match self {
            Value::F32(v) => *v,
            other => panic!("expected f32, found {other:?}"),
        }
    }

    /// The f64 payload.
    ///
    /// # Panics
    /// Panics on other variants.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            other => panic!("expected f64, found {other:?}"),
        }
    }

    /// The bool payload.
    ///
    /// # Panics
    /// Panics on other variants.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// Lane count (1 for scalars).
    pub fn lanes(&self) -> usize {
        match self {
            Value::VF32(v) => v.len(),
            Value::VF64(v) => v.len(),
            Value::VI64(v) => v.len(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_match_types() {
        assert_eq!(Value::zero_of(Ty::I64), Value::I64(0));
        assert_eq!(Value::zero_of(Ty::Ptr), Value::I64(0));
        assert_eq!(Value::zero_of(Ty::VecF32(8)).lanes(), 8);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(5).as_i64(), 5);
        assert_eq!(Value::F32(1.5).as_f32(), 1.5);
        assert!(Value::Bool(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "expected i64")]
    fn type_confusion_panics() {
        let _ = Value::F64(0.0).as_i64();
    }
}
