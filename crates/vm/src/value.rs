//! Runtime values.
//!
//! Vector values store their lanes *inline* (up to [`Lanes`]' capacity)
//! so that cloning a value in the interpreter's register file never
//! heap-allocates for the SIMD widths the vectorizer actually emits
//! (≤ 8×f32 / 4×f64 / 4×i64, i.e. 256-bit vectors). Wider values spill
//! to a heap buffer transparently, preserving semantics.

use mperf_ir::Ty;

/// Inline capacity for f32 lanes (256-bit vector).
pub const INLINE_F32: usize = 8;
/// Inline capacity for f64 lanes (256-bit vector).
pub const INLINE_F64: usize = 4;
/// Inline capacity for i64 lanes (256-bit vector).
pub const INLINE_I64: usize = 4;

/// A small-vector of SIMD lanes: inline up to `N` elements, heap beyond.
#[derive(Debug, Clone)]
pub enum Lanes<T: Copy + Default, const N: usize> {
    /// Lane data held inline in the value itself.
    Inline { len: u8, buf: [T; N] },
    /// Spill storage for lane counts above the inline capacity.
    Spill(Vec<T>),
}

pub type LanesF32 = Lanes<f32, INLINE_F32>;
pub type LanesF64 = Lanes<f64, INLINE_F64>;
pub type LanesI64 = Lanes<i64, INLINE_I64>;

impl<T: Copy + Default, const N: usize> Lanes<T, N> {
    /// All-default lanes of length `n`.
    pub fn zeroed(n: usize) -> Self {
        if n <= N {
            Lanes::Inline {
                len: n as u8,
                buf: [T::default(); N],
            }
        } else {
            Lanes::Spill(vec![T::default(); n])
        }
    }

    /// `n` copies of `x`.
    pub fn splat(x: T, n: usize) -> Self {
        if n <= N {
            Lanes::Inline {
                len: n as u8,
                buf: [x; N],
            }
        } else {
            Lanes::Spill(vec![x; n])
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        match self {
            Lanes::Inline { len, .. } => *len as usize,
            Lanes::Spill(v) => v.len(),
        }
    }

    /// Whether there are zero lanes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The lanes as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Lanes::Inline { len, buf } => &buf[..*len as usize],
            Lanes::Spill(v) => v,
        }
    }

    /// The lanes as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            Lanes::Inline { len, buf } => &mut buf[..*len as usize],
            Lanes::Spill(v) => v,
        }
    }

    /// Iterate over the lanes.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for Lanes<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(into: I) -> Self {
        let mut it = into.into_iter();
        let mut buf = [T::default(); N];
        let mut len = 0usize;
        for v in &mut it {
            if len < N {
                buf[len] = v;
                len += 1;
            } else {
                let mut spill = Vec::with_capacity(2 * N);
                spill.extend_from_slice(&buf);
                spill.push(v);
                spill.extend(it);
                return Lanes::Spill(spill);
            }
        }
        Lanes::Inline {
            len: len as u8,
            buf,
        }
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for Lanes<T, N> {
    fn from(v: Vec<T>) -> Self {
        v.into_iter().collect()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a Lanes<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for Lanes<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> core::ops::Index<usize> for Lanes<T, N> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

/// A runtime value held in a virtual register.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    F32(f32),
    F64(f64),
    Bool(bool),
    /// Vector lanes (length = type's lane count).
    VF32(LanesF32),
    VF64(LanesF64),
    VI64(LanesI64),
}

impl Value {
    /// Zero value of a type.
    pub fn zero_of(ty: Ty) -> Value {
        match ty {
            Ty::I64 | Ty::Ptr => Value::I64(0),
            Ty::F32 => Value::F32(0.0),
            Ty::F64 => Value::F64(0.0),
            Ty::Bool => Value::Bool(false),
            Ty::VecF32(n) => Value::VF32(LanesF32::zeroed(n as usize)),
            Ty::VecF64(n) => Value::VF64(LanesF64::zeroed(n as usize)),
            Ty::VecI64(n) => Value::VI64(LanesI64::zeroed(n as usize)),
        }
    }

    /// The i64 payload (addresses are i64 at run time).
    ///
    /// # Panics
    /// Panics on non-integer values (a type-confusion bug — the verifier
    /// excludes it for well-formed modules).
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected i64, found {other:?}"),
        }
    }

    /// The f32 payload.
    ///
    /// # Panics
    /// Panics on other variants.
    pub fn as_f32(&self) -> f32 {
        match self {
            Value::F32(v) => *v,
            other => panic!("expected f32, found {other:?}"),
        }
    }

    /// The f64 payload.
    ///
    /// # Panics
    /// Panics on other variants.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            other => panic!("expected f64, found {other:?}"),
        }
    }

    /// The bool payload.
    ///
    /// # Panics
    /// Panics on other variants.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// Lane count (1 for scalars).
    pub fn lanes(&self) -> usize {
        match self {
            Value::VF32(v) => v.len(),
            Value::VF64(v) => v.len(),
            Value::VI64(v) => v.len(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_match_types() {
        assert_eq!(Value::zero_of(Ty::I64), Value::I64(0));
        assert_eq!(Value::zero_of(Ty::Ptr), Value::I64(0));
        assert_eq!(Value::zero_of(Ty::VecF32(8)).lanes(), 8);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(5).as_i64(), 5);
        assert_eq!(Value::F32(1.5).as_f32(), 1.5);
        assert!(Value::Bool(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "expected i64")]
    fn type_confusion_panics() {
        let _ = Value::F64(0.0).as_i64();
    }

    #[test]
    fn lanes_inline_within_capacity() {
        let l: LanesF32 = (0..8).map(|i| i as f32).collect();
        assert!(matches!(l, Lanes::Inline { .. }));
        assert_eq!(l.len(), 8);
        assert_eq!(l[3], 3.0);
        assert_eq!(l.iter().sum::<f32>(), 28.0);
    }

    #[test]
    fn lanes_spill_beyond_capacity() {
        let l: LanesI64 = (0..9).collect();
        assert!(matches!(l, Lanes::Spill(_)));
        assert_eq!(l.len(), 9);
        assert_eq!(l.as_slice(), (0..9).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn lanes_equality_ignores_representation() {
        let a: LanesI64 = LanesI64::from(vec![1, 2, 3]);
        let b: LanesI64 = [1i64, 2, 3].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, LanesI64::splat(1, 3));
    }

    #[test]
    fn splat_and_zeroed() {
        assert_eq!(LanesF64::splat(2.5, 4).as_slice(), &[2.5; 4]);
        assert_eq!(LanesF64::zeroed(6).len(), 6);
        let mut m = LanesF32::zeroed(3);
        m.as_mut_slice()[1] = 7.0;
        assert_eq!(m[1], 7.0);
    }
}
