//! # mperf-vm — MIR execution engine over the simulated hardware
//!
//! Interprets [`mperf_ir`] modules, lowering each MIR instruction to
//! machine operations (with per-ISA expansion) that retire on a
//! [`mperf_sim::Core`]. This ties the two measurement paths of the paper
//! together on a single execution:
//!
//! - **PMU path**: every retired op advances the core's counters;
//!   overflow interrupts are routed to an attached
//!   [`mperf_event::PerfKernel`] together with the interrupted guest PC
//!   and call chain, so sampling profilers see real stacks.
//! - **Compiler path**: `ProfCount` instructions and the
//!   `mperf.loop_begin` / `mperf.loop_end` / `mperf.is_instrumented`
//!   host calls drive the [`RooflineRuntime`], accumulating the
//!   bytes/int-ops/FLOP tallies the instrumentation pass planted.
//!
//! The VM also maintains the guest call stack used for flame-graph
//! callchains, charges instrumentation overhead as real guest
//! instructions, and exposes a bump allocator so hosts can stage workload
//! data in guest memory.

pub mod error;
pub mod host;
pub mod interp;
pub mod lower;
pub mod memory;
pub mod value;

pub use error::VmError;
pub use host::{HostHandler, RegionStats, RooflineRuntime};
pub use interp::{ExecStats, Vm};
pub use memory::GuestMemory;
pub use value::Value;
