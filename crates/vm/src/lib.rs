//! # mperf-vm — MIR execution engine over the simulated hardware
//!
//! Executes [`mperf_ir`] modules, lowering each MIR instruction to
//! machine operations (with per-ISA expansion) that retire on a
//! [`mperf_sim::Core`]. This ties the two measurement paths of the paper
//! together on a single execution:
//!
//! - **PMU path**: every retired op advances the core's counters;
//!   overflow interrupts are routed to an attached
//!   [`mperf_event::PerfKernel`] together with the interrupted guest PC
//!   and call chain, so sampling profilers see real stacks.
//! - **Compiler path**: `ProfCount` instructions and the
//!   `mperf.loop_begin` / `mperf.loop_end` / `mperf.is_instrumented`
//!   host calls drive the [`RooflineRuntime`], accumulating the
//!   bytes/int-ops/FLOP tallies the instrumentation pass planted.
//!
//! ## The decode → execute pipeline
//!
//! Execution runs on one of three engines (see [`interp::Engine`]):
//!
//! 1. **Decode** ([`decode`]): a one-time pass flattens each function's
//!    blocks into a dense `Vec<DecodedOp>` with pre-resolved jump
//!    targets (flat op indices), precomputed synthetic pcs, op classes,
//!    and FLOP counts, and host callees resolved to dense ids — then
//!    runs register allocation, fusion, validation, and the threaded
//!    template compile (see *Threaded templates & superblocks*). The
//!    result ([`DecodedModule`]) borrows nothing and is `Arc`-shared
//!    across VMs sweeping the same workload — including VMs on other
//!    threads (see *The `Arc`/`Send` contract* below).
//! 2. **Execute** ([`Vm::call`]): the default **threaded** engine calls
//!    through each function's pre-bound template array and retires
//!    straight-line superblocks as one PMU batch; the **decoded**
//!    engine (the first-generation fast engine) dispatches over
//!    `&[DecodedOp]` by index with a dense `match`; the **reference**
//!    engine (the original structure-walking interpreter) stays the
//!    semantic baseline. All three produce bit-identical `ExecStats`,
//!    cycles, and PMU state; guest frames slice a contiguous register
//!    stack, so calls do not allocate on any engine.
//!
//! ## Register allocation
//!
//! Before fusion, a decode-time copy-coalescing pass ([`regalloc`])
//! attacks the dominant op the frontend emits: the `copy dst = src`
//! behind every `var = expr` assignment (~1/3 of the dynamic stream on
//! assignment-heavy code). Per function it:
//!
//! 1. computes backward **liveness** over the flat op stream (uses =
//!    operand registers, defs = destinations incl. call return slots;
//!    `Br`/`CondBr` follow their pre-resolved targets, `Ret` ends the
//!    walk) to a fixpoint;
//! 2. builds a register **interference** relation: each op's defs
//!    conflict with everything live-out of the op (minus the copy's
//!    own `dst`/`src` pair at the copy itself, where both hold the
//!    same value), same-op defs conflict pairwise, and parameters
//!    conflict pairwise and with everything live-in at entry;
//! 3. greedily **coalesces** each reg-to-reg copy whose source and
//!    destination classes don't interfere (union-find with per-class
//!    interference sets), then **compacts** register numbers so frames
//!    slice a smaller register-stack window.
//!
//! A copy is elidable exactly when its operands end up in one class:
//! the producer already wrote the shared slot, so the slot is
//! rewritten to [`decode::DecodedOp::ElidedCopy`] — a retire-only op.
//!
//! **The observable-invariance contract** (same as fusion's): the
//! elided copy still retires the same `Move` machine op at the same
//! pc, so cycle counts, instruction counts, PMU counter files, and
//! sampling IPs/callchains are bit-identical to the uncoalesced and
//! reference streams — coalescing removes *our* dispatch cost (the
//! `Value` clone and register write), never modeled work. Merged
//! classes always carry one value type (unions are driven only by
//! type-checked copies), so the raw-`i64` register lanes stay sound,
//! and reads of never-written registers still see the zero-initialized
//! slot (a def that could clobber it would have interfered). The
//! regalloc × fusion × engine equivalence matrix is property-tested in
//! `tests/properties.rs` on all four platform models, including traps
//! landing on elided-copy slots. Static coalescing rates live in
//! [`RegallocStats`] on the decode; dynamic copy traffic (moved vs
//! elided) in [`interp::RegallocDynamics`] on the VM. `--no-regalloc`
//! (CLI) / [`Vm::set_regalloc`] / [`DecodeConfig`] disable the pass
//! for bisection.
//!
//! ## Superinstruction fusion
//!
//! After register allocation, a decode-time peephole pass rewrites the
//! hottest adjacent op pairs/triples into superinstructions with
//! dedicated handlers ([`decode::Fused`]); the decoded hot loop itself
//! is shaped for jump-table dispatch with **no per-op bounds checks**
//! — every index (jump targets, register numbers, callee/host/fused
//! ids) is pinned once per decode by `validate_func`, and
//! scalar-integer ops are type-specialized at decode time
//! (`BinI`/`CmpI`) so the handlers move raw `i64`s instead of cloning
//! `Value` enums. Elided copies are transparent to the matcher:
//! constituents may be separated by (or trailed by) `ElidedCopy` slots,
//! which join the batch as `Move` ticks at their own pcs — so
//! `inc+cmp+br` fires across a coalesced copy and a bare
//! `bin + elided-copy` still batches as `bin+copy`
//! ([`decode::FusedSite`] records the covered window).
//!
//! | pattern ([`decode::FusePattern`]) | shape | width |
//! |---|---|---|
//! | `addr+load` | `ptradd` + scalar `load` | 2 |
//! | `addr+store` | `ptradd` + scalar `store` | 2 |
//! | `cmp+br` | `cmp` + `condbr` (compare-and-branch) | 2 |
//! | `load+op` | scalar `load` + bin consuming it | 2 |
//! | `bin+copy` | bin + `copy` of its result (assignments) | 2 |
//! | `inc+cmp+br` | `add/sub` + `cmp` + `condbr` (counted-loop back edge) | 3 |
//! | `addr+load+op` | `ptradd` + scalar `load` + bin | 3 |
//!
//! **The observables-invariance contract.** Fusion changes speed, never
//! observables: return values, [`ExecStats`], cycle counts, PMU counter
//! files, and the exact op at which an overflow interrupt fires (hence
//! sampling IPs/callchains) are bit-identical to the unfused and
//! reference engines — property-tested in `tests/properties.rs` on all
//! four platform models. Three mechanisms enforce it:
//!
//! - a fused batch retires through `Core::retire_fused*` only when
//!   `Core::fused_ready*` proves no PMU counter can wrap within a
//!   conservative event bound (the batched-PMU watermark, extended to
//!   multi-op batches); otherwise the superinstruction **bails** —
//!   executes its first constituent unfused and resumes at the original
//!   next op, which is still present in the stream (fusion replaces
//!   only the pattern's first slot);
//! - trap-capable interiors never fuse (`div`/`rem`) or pre-check
//!   (loads/stores probe bounds and bail on a would-trap access), so
//!   trap points and partial state match op-for-op; intermediate fuel
//!   exhaustion bails the same way;
//! - an intermediate register write is skipped only when decode-time
//!   read counting proves every read of that register is substituted
//!   inside the handler.
//!
//! **Adding a pattern**: extend [`decode::FusePattern`] (+ `ALL`,
//! `index`, `name`, `width`) and [`decode::Fused`], recognize the shape
//! in `pattern_at` (longest-first; compute `write_*` flags from the
//! read counts), validate its payload in `validate_func`, and give it a
//! handler in `interp::Vm::run_decoded` with a bail path that executes
//! exactly the first constituent. The equivalence properties then gate
//! the observables for free. Static site counts live in
//! [`decode::FusionStats`] on the decode; dynamic coverage in
//! [`interp::FusionDynamics`] on the VM (deliberately outside
//! `ExecStats`). `--no-fuse` (CLI) / [`Vm::set_fusion`] /
//! [`decode_module_cfg`] disable the pass for bisection.
//!
//! ## Threaded templates & superblocks
//!
//! The threaded engine (the default; [`threaded`]) is the baseline
//! template-JIT layer over the coalesced + fused stream — the substrate
//! a future native JIT would drop into (same compile point, same
//! observable contract, fn pointers swapped for emitted code).
//!
//! **Template binding rules.** At decode time every op slot is lowered
//! to a pre-bound template: a `fn` pointer plus a packed operand struct
//! (`threaded::TArgs`). Operand immediates are materialized into
//! per-function constant pools, so every operand is one `u32` slot
//! (register index, or pool index with the high bit set) and the hot
//! loop does no `Operand` enum unpacking; the synthetic pc rides in the
//! template. Type-specialized scalar-integer ops get one monomorphic
//! thunk per operator (`t_bini::<B_ADD>`, …) and scalar memory ops one
//! per `MemTy` — op kinds are const generics, folded at compile time.
//! Each fusion pattern binds its own template calling the one-tick
//! handlers shared with the decoded engine, and `ElidedCopy` binds a
//! retire-only thunk. Payload-carrying cold ops (calls, wide returns,
//! vector memory, FP-lane arithmetic) keep monomorphic thunks that read
//! their own `DecodedOp` — still no dispatch `match`.
//!
//! **Superblock formation.** The compile pass partitions each function
//! into straight-line superblocks: maximal runs of block-eligible
//! templates (no calls/returns/vector memory, no interior jump
//! targets), each with a precomputed shape (machine ops, scalar memory
//! references, branches, FLOPs). At run time a block whose fuel and
//! [`mperf_sim::Core::block_ready`] guards hold executes with eager
//! timing but a *deferred* PMU tick: every template applies its
//! cycle/cache/branch effects immediately (so `Core::cycles` stays
//! exact mid-block) while event deltas accumulate in a `BlockAcc`,
//! committed as one `Core::retire_block` tick — blocks of 6–20 ops tick
//! the PMU once instead of per op. Fused sites inside a block execute
//! as their *constituent templates* (exactly their bail path — the
//! block already batches the tick, so the one-tick fused retire adds
//! nothing); outside blocks they run the fused fast path.
//!
//! **The observable-invariance contract** (same as fusion's and
//! regalloc's): return values, `ExecStats`, cycles, instructions, PMU
//! counter files, and sampling IPs/callchains are bit-identical to the
//! decoded and reference engines — property-tested across the full
//! engine × fusion × regalloc matrix on all four platform models.
//! Near a counter wrap `block_ready` refuses the block and the
//! templates run one by one with per-op ticks (exact overflow
//! attribution, as everywhere else); a trap mid-block commits the
//! partial accumulator first (counters are additive, so the split is
//! unobservable) and propagates.
//!
//! **Adding a `DecodedOp`** now means: give it a template thunk
//! (generic over `const DEFER: bool` for the single/block retire
//! lanes), bind it in `threaded::bind`, and classify it in
//! `threaded::unit_cost`; the equivalence properties gate the
//! observables. `--engine threaded|decoded|reference` is wired through
//! `miniperf` and `bench_trajectory` for bisection.
//!
//! ## The `Arc`/`Send` contract
//!
//! The roofline methodology is a *sweep*: every chart multiplies
//! phases × platforms × workloads, and each combination is an
//! independent simulation. The execution stack is therefore `Send` end
//! to end, enforced by compile-time assertions in [`interp`]:
//!
//! - a [`Vm`] — together with its `Core` (PMU, caches, predictor), an
//!   attached `PerfKernel`, registered [`HostHandler`]s (the type
//!   requires `+ Send`), guest memory, and the [`RooflineRuntime`] —
//!   moves onto a sweep worker thread;
//! - one [`DecodedModule`] per workload is built up front with
//!   [`decode::decode_module`] (no throwaway VM needed) and shared
//!   read-only via `Arc` by every job of that workload, so worker
//!   threads never decode.
//!
//! New workloads plug into the sweep engine by compiling a module
//! (e.g. `mperf_workloads::compile_for`), decoding it once, and handing
//! `(module, Arc<DecodedModule>, setup-closure)` to the scheduler in
//! `mperf-sweep` / `miniperf::roofline_runner` — the setup closure runs
//! on the worker to stage guest data, so it must be `Send + Sync`; all
//! simulation state stays thread-local to the job. The same contract is
//! what a future JIT or threaded-code dispatch will run under.
//!
//! ## The exact-overflow watermark
//!
//! The hot retire path pairs with `mperf_sim`'s batched PMU: per-op
//! event deltas accumulate and the full 32-counter scan only runs when
//! the batch could reach the *watermark* — the minimum distance-to-wrap
//! over all armed counters. Since a counter advances by at most the
//! batch's total events, no overflow can occur below the watermark, and
//! the op that could cross it is ticked individually — so sampling
//! interrupts still fire on exactly the op that wraps. See
//! [`mperf_sim::Pmu::tick_batched`].
//!
//! The VM also maintains the guest call stack used for flame-graph
//! callchains (built into a reusable scratch buffer, keeping sampling
//! allocation-free), charges instrumentation overhead as real guest
//! instructions, and exposes a bump allocator so hosts can stage
//! workload data in guest memory.

pub mod decode;
pub mod error;
pub mod host;
pub mod interp;
pub mod lower;
pub mod memory;
pub mod regalloc;
pub mod threaded;
pub mod value;

pub use decode::{
    decode_module, decode_module_cfg, decode_module_with, DecodeConfig, DecodedModule, DecodedOp,
    FusePattern, Fused, FusedSite, FusionStats,
};
pub use error::{TrapInfo, VmError};
pub use host::{HostHandler, RegionStats, RooflineRuntime};
pub use interp::{Engine, ExecConfig, ExecStats, FusionDynamics, RegallocDynamics, Vm};
pub use memory::GuestMemory;
pub use regalloc::RegallocStats;
pub use value::{Lanes, Value};
