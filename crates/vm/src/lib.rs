//! # mperf-vm — MIR execution engine over the simulated hardware
//!
//! Executes [`mperf_ir`] modules, lowering each MIR instruction to
//! machine operations (with per-ISA expansion) that retire on a
//! [`mperf_sim::Core`]. This ties the two measurement paths of the paper
//! together on a single execution:
//!
//! - **PMU path**: every retired op advances the core's counters;
//!   overflow interrupts are routed to an attached
//!   [`mperf_event::PerfKernel`] together with the interrupted guest PC
//!   and call chain, so sampling profilers see real stacks.
//! - **Compiler path**: `ProfCount` instructions and the
//!   `mperf.loop_begin` / `mperf.loop_end` / `mperf.is_instrumented`
//!   host calls drive the [`RooflineRuntime`], accumulating the
//!   bytes/int-ops/FLOP tallies the instrumentation pass planted.
//!
//! ## The decode → execute pipeline
//!
//! Execution runs on one of two engines (see [`interp::Engine`]):
//!
//! 1. **Decode** ([`decode`]): a one-time pass flattens each function's
//!    blocks into a dense `Vec<DecodedOp>` with pre-resolved jump
//!    targets (flat op indices), precomputed synthetic pcs, op classes,
//!    and FLOP counts, and host callees resolved to dense ids. The
//!    result ([`DecodedModule`]) borrows nothing and is `Arc`-shared
//!    across VMs sweeping the same workload — including VMs on other
//!    threads (see *The `Arc`/`Send` contract* below).
//! 2. **Execute** ([`Vm::call`]): the default decoded engine dispatches
//!    over `&[DecodedOp]` by index with zero per-step cloning and no
//!    `module → func → block` lookups; guest frames slice a contiguous
//!    register stack, so calls do not allocate. The reference engine
//!    (the original structure-walking interpreter) stays available as
//!    the semantic baseline; both produce bit-identical `ExecStats`,
//!    cycles, and PMU state.
//!
//! ## The `Arc`/`Send` contract
//!
//! The roofline methodology is a *sweep*: every chart multiplies
//! phases × platforms × workloads, and each combination is an
//! independent simulation. The execution stack is therefore `Send` end
//! to end, enforced by compile-time assertions in [`interp`]:
//!
//! - a [`Vm`] — together with its `Core` (PMU, caches, predictor), an
//!   attached `PerfKernel`, registered [`HostHandler`]s (the type
//!   requires `+ Send`), guest memory, and the [`RooflineRuntime`] —
//!   moves onto a sweep worker thread;
//! - one [`DecodedModule`] per workload is built up front with
//!   [`decode::decode_module`] (no throwaway VM needed) and shared
//!   read-only via `Arc` by every job of that workload, so worker
//!   threads never decode.
//!
//! New workloads plug into the sweep engine by compiling a module
//! (e.g. `mperf_workloads::compile_for`), decoding it once, and handing
//! `(module, Arc<DecodedModule>, setup-closure)` to the scheduler in
//! `mperf-sweep` / `miniperf::roofline_runner` — the setup closure runs
//! on the worker to stage guest data, so it must be `Send + Sync`; all
//! simulation state stays thread-local to the job. The same contract is
//! what a future JIT or threaded-code dispatch will run under.
//!
//! ## The exact-overflow watermark
//!
//! The hot retire path pairs with `mperf_sim`'s batched PMU: per-op
//! event deltas accumulate and the full 32-counter scan only runs when
//! the batch could reach the *watermark* — the minimum distance-to-wrap
//! over all armed counters. Since a counter advances by at most the
//! batch's total events, no overflow can occur below the watermark, and
//! the op that could cross it is ticked individually — so sampling
//! interrupts still fire on exactly the op that wraps. See
//! [`mperf_sim::Pmu::tick_batched`].
//!
//! The VM also maintains the guest call stack used for flame-graph
//! callchains (built into a reusable scratch buffer, keeping sampling
//! allocation-free), charges instrumentation overhead as real guest
//! instructions, and exposes a bump allocator so hosts can stage
//! workload data in guest memory.

pub mod decode;
pub mod error;
pub mod host;
pub mod interp;
pub mod lower;
pub mod memory;
pub mod value;

pub use decode::{decode_module, DecodedModule, DecodedOp};
pub use error::VmError;
pub use host::{HostHandler, RegionStats, RooflineRuntime};
pub use interp::{Engine, ExecStats, Vm};
pub use memory::GuestMemory;
pub use value::{Lanes, Value};
