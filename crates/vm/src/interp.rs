//! The MIR execution engines.
//!
//! Two engines share one [`Vm`] and produce bit-identical observable
//! behaviour (return values, [`ExecStats`], cycle counts, PMU counter
//! values, and the op at which overflow interrupts fire):
//!
//! - the **reference** engine walks `module → func → block` structures
//!   directly, cloning each instruction as it executes — simple, and the
//!   semantic baseline;
//! - the **decoded** engine (the default) runs the flat
//!   [`DecodedModule`] form produced by [`crate::decode`]: an
//!   index-driven dispatch over `&[DecodedOp]` with pre-resolved jump
//!   targets, precomputed pcs/op classes/FLOP counts, a contiguous
//!   register stack (no per-call allocation), and zero per-step cloning.
//!
//! `tests/properties.rs` holds the cross-engine equivalence property;
//! `crates/bench` measures the throughput gap.

use crate::decode::{
    DecodeConfig, DecodedFunc, DecodedModule, DecodedOp, FusePattern, Fused, FusedSite, HostTarget,
    MAX_FUSE_WIDTH,
};
use crate::error::{TrapInfo, VmError};
use crate::host::{HostHandler, RooflineRuntime};
use crate::lower::{cast_class, inst_class, un_class, un_flops};
use crate::memory::GuestMemory;
use crate::threaded;
use crate::value::{LanesF32, LanesF64, LanesI64, Value};
use mperf_event::{OverflowCtx, PerfKernel};
use mperf_ir::{
    BinOp, BlockId, Callee, CastKind, CmpOp, FuncId, Inst, MemTy, Module, Operand, ReduceOp, Reg,
    Term, Ty, UnOp,
};
use mperf_sim::machine_op::{MachineOp, MemRef, OpClass};
use mperf_sim::{BlockAcc, Core};
use std::collections::HashMap;
use std::sync::Arc;

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// MIR instructions interpreted.
    pub mir_ops: u64,
    /// Machine ops retired on the core.
    pub machine_ops: u64,
    /// Guest function calls executed.
    pub calls: u64,
}

struct Frame {
    func: FuncId,
    regs: Vec<Value>,
    block: BlockId,
    idx: usize,
    /// Registers in the caller to receive return values.
    ret_dsts: Vec<Reg>,
    /// PC of the call site (for callchains).
    call_pc: u64,
}

/// A decoded-engine frame: registers live in the VM's contiguous
/// register stack starting at `base`, and `ip` indexes the function's
/// flat op array. Shared with the threaded engine (same frame layout,
/// same register stack).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DFrame {
    pub(crate) func: u32,
    /// First register-stack slot of this frame.
    pub(crate) base: u32,
    /// Next op to execute (flat index).
    pub(crate) ip: u32,
    /// PC of the call site (for callchains; 0 for entry frames).
    pub(crate) call_pc: u64,
}

/// What a threaded-engine template thunk tells the driver loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// Keep dispatching at the (already updated) `cur.ip`.
    Continue,
    /// A `Ret` popped the entry frame; the return values are parked in
    /// the VM's `ret_scratch` buffer.
    Finished,
}

/// Per-invocation state the threaded driver threads through thunks.
pub(crate) struct TCtx {
    /// The active frame (cursor-cached, like `run_decoded`'s `cur`).
    pub(crate) cur: DFrame,
    /// Frame-stack depth at which this invocation returns.
    pub(crate) base_depth: usize,
}

/// Which execution engine [`Vm::call`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pre-bound template dispatch with superblock PMU retire (the fast
    /// default; see [`crate::threaded`]).
    #[default]
    Threaded,
    /// Flat pre-decoded dispatch (`match`-driven; the first-generation
    /// fast engine, kept for bisection).
    Decoded,
    /// Structure-walking interpreter (the semantic baseline).
    Reference,
}

/// Execution-engine configuration bundle: which engine drives the VM
/// and which decode-time passes (superinstruction fusion, register
/// allocation) its decodes run. Every combination is observably
/// identical; only speed differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    pub engine: Engine,
    pub fuse: bool,
    pub regalloc: bool,
}

impl Default for ExecConfig {
    /// The fast default: threaded engine with fusion and register
    /// allocation on.
    fn default() -> ExecConfig {
        ExecConfig {
            engine: Engine::Threaded,
            fuse: true,
            regalloc: true,
        }
    }
}

impl ExecConfig {
    /// The decode-pass half of this configuration.
    pub fn decode(self) -> DecodeConfig {
        DecodeConfig {
            fuse: self.fuse,
            regalloc: self.regalloc,
        }
    }

    /// Human-readable form for report headers (`engine=decoded fuse=on
    /// regalloc=on`), so printed measurements are self-describing.
    pub fn describe(&self) -> String {
        let on = |b: bool| if b { "on" } else { "off" };
        format!(
            "engine={} fuse={} regalloc={}",
            match self.engine {
                Engine::Threaded => "threaded",
                Engine::Decoded => "decoded",
                Engine::Reference => "reference",
            },
            on(self.fuse),
            on(self.regalloc),
        )
    }
}

/// Runtime superinstruction statistics: how often each pattern executed
/// on its fused fast path, and how many MIR ops that covered. Tracked
/// outside [`ExecStats`] on purpose — fusion must leave every observable
/// (including `ExecStats`) bit-identical, and these counters exist
/// precisely to report how much of the dynamic stream ran fused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionDynamics {
    /// Fast-path executions per pattern ([`FusePattern::index`] order).
    /// Bailed executions (fuel, would-trap access, PMU near overflow)
    /// are not counted — they ran unfused.
    pub executed: [u64; FusePattern::COUNT],
    /// MIR ops covered by those fast-path executions, in
    /// [`ExecStats::mir_ops`] accounting (terminators don't count).
    pub mir_ops_fused: u64,
}

impl FusionDynamics {
    /// Fraction of `total_mir_ops` that executed inside a fused fast
    /// path (pass [`ExecStats::mir_ops`]).
    pub fn coverage(&self, total_mir_ops: u64) -> f64 {
        if total_mir_ops == 0 {
            return 0.0;
        }
        self.mir_ops_fused as f64 / total_mir_ops as f64
    }

    /// Total fast-path executions across all patterns.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// Runtime copy-traffic statistics: how many executed `Copy` ops moved
/// data versus having been coalesced away by the decode-time register
/// allocator. Like [`FusionDynamics`], tracked outside [`ExecStats`] on
/// purpose — register allocation must leave every observable
/// bit-identical, and these counters exist precisely to report how much
/// copy traffic it removed (the `regalloc` section of
/// `BENCH_interp.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegallocDynamics {
    /// Executed `Copy` ops that moved data (standalone `Copy` dispatch
    /// or the real-copy constituent of a fused `bin+copy` batch).
    pub copies_moved: u64,
    /// Executed elided copies: retire-only `Move` ticks with no data
    /// movement (standalone `ElidedCopy` dispatch or elided slots
    /// riding inside fused batches).
    pub copies_elided: u64,
}

impl RegallocDynamics {
    /// Fraction of dynamic copy traffic that was elided.
    pub fn elision_rate(&self) -> f64 {
        let total = self.copies_moved + self.copies_elided;
        if total == 0 {
            return 0.0;
        }
        self.copies_elided as f64 / total as f64
    }
}

/// The execution engine. Owns the core, optional perf kernel, guest
/// memory, and the roofline runtime.
pub struct Vm<'m> {
    module: &'m Module,
    /// The simulated hart.
    pub core: Core,
    /// Attached perf subsystem (overflow interrupts route here).
    pub kernel: Option<PerfKernel>,
    /// Guest memory.
    pub mem: GuestMemory,
    /// Roofline notification runtime.
    pub roofline: RooflineRuntime,
    pub(crate) host: HashMap<String, HostHandler>,
    stack: Vec<Frame>,
    pub(crate) fuel: u64,
    pub(crate) stats: ExecStats,
    pub(crate) max_depth: usize,
    /// Guest scratch address used by instrumentation counter updates.
    pub(crate) prof_scratch: u64,
    /// Which engine `call`/`call_id` run on.
    engine: Engine,
    /// Lazily-built flat form of `module` (shareable across VMs and
    /// across sweep worker threads).
    decoded: Option<Arc<DecodedModule>>,
    /// Decoded/threaded-engine frame stack.
    pub(crate) dstack: Vec<DFrame>,
    /// Decoded/threaded-engine contiguous register stack (frames slice
    /// into it).
    pub(crate) dregs: Vec<Value>,
    /// Reusable call-argument buffer (decoded/threaded engines).
    pub(crate) arg_scratch: Vec<Value>,
    /// Reusable return-value buffer (decoded/threaded engines).
    pub(crate) ret_scratch: Vec<Value>,
    /// Reusable callchain buffer for overflow samples, so sampling does
    /// not allocate on the measured path.
    chain_scratch: Vec<u64>,
    /// The open superblock's deferred-retire accumulator (threaded
    /// engine; idle outside a block fast path).
    pub(crate) block_acc: BlockAcc,
    /// Whether `decoded()` builds with superinstruction fusion.
    fuse: bool,
    /// Whether `decoded()` builds with register allocation.
    regalloc: bool,
    /// Runtime fusion coverage (not part of the observable contract).
    pub(crate) fused_dyn: FusionDynamics,
    /// Runtime copy-traffic split (not part of the observable contract).
    pub(crate) regalloc_dyn: RegallocDynamics,
    /// Trap-site note from the engine loops: the pc of the faulting op,
    /// set on the cold error path only (see [`Vm::trap_info`]).
    trap_pc: Option<u64>,
    /// Where the last error returned by [`Vm::call`] fired (pc + guest
    /// function), finalized when the error leaves the engine.
    last_trap: Option<TrapInfo>,
}

// The sweep engine's contract, enforced at compile time: a fully-loaded
// `Vm` (core + PMU, attached perf kernel, registered host handlers,
// roofline runtime, guest memory) moves onto a worker thread, and one
// `DecodedModule` is shared read-only by workers decoding nothing.
// Anything reintroducing `Rc`/`RefCell`/raw-pointer state into this
// stack breaks the build here, not at a distant spawn site.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Vm<'static>>();
    assert_send::<Core>();
    assert_send::<PerfKernel>();
    assert_sync::<DecodedModule>();
    assert_sync::<Module>();
};

/// Encode the synthetic program counter for an instruction position.
/// Shared with the decode pass so both engines emit identical pcs.
pub(crate) fn pc_of(func: FuncId, block: BlockId, idx: usize) -> u64 {
    ((func.0 as u64) << 32) | ((block.0 as u64) << 16) | (idx as u64 & 0xffff)
}

/// Extract the function id from a synthetic PC.
pub fn func_of_pc(pc: u64) -> FuncId {
    FuncId((pc >> 32) as u32)
}

impl<'m> Vm<'m> {
    /// Create a VM over `module` on `core` with 64 MiB of guest memory.
    pub fn new(module: &'m Module, core: Core) -> Vm<'m> {
        Vm::with_memory(module, core, 64 << 20)
    }

    /// Create a VM with a custom guest memory size.
    pub fn with_memory(module: &'m Module, core: Core, mem_bytes: usize) -> Vm<'m> {
        let mut mem = GuestMemory::new(mem_bytes);
        let prof_scratch = mem.alloc(64, 64).expect("fresh memory fits scratch");
        Vm {
            module,
            core,
            kernel: None,
            mem,
            roofline: RooflineRuntime::new(),
            host: HashMap::new(),
            stack: Vec::new(),
            fuel: u64::MAX,
            stats: ExecStats::default(),
            max_depth: 1 << 14,
            prof_scratch,
            engine: Engine::default(),
            decoded: None,
            dstack: Vec::new(),
            dregs: Vec::new(),
            arg_scratch: Vec::new(),
            ret_scratch: Vec::new(),
            chain_scratch: Vec::new(),
            block_acc: BlockAcc::default(),
            fuse: true,
            regalloc: true,
            fused_dyn: FusionDynamics::default(),
            regalloc_dyn: RegallocDynamics::default(),
            trap_pc: None,
            last_trap: None,
        }
    }

    /// Select the execution engine (both are observably identical; see
    /// the module docs).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The engine `call` currently drives.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Apply an [`ExecConfig`] bundle (engine + fusion + regalloc).
    pub fn configure(&mut self, cfg: ExecConfig) {
        self.set_engine(cfg.engine);
        self.set_fusion(cfg.fuse);
        self.set_regalloc(cfg.regalloc);
    }

    /// Enable/disable decode-time superinstruction fusion (on by
    /// default; the `--no-fuse` escape hatch). Observable behaviour is
    /// identical either way — fusion changes speed, never observables.
    /// Takes effect on the next decode: a cached decode of the other
    /// flavour is dropped.
    pub fn set_fusion(&mut self, on: bool) {
        self.fuse = on;
        if self.decoded.as_ref().is_some_and(|d| d.fused != on) {
            self.decoded = None;
        }
    }

    /// Whether `decoded()` builds with superinstruction fusion.
    pub fn fusion(&self) -> bool {
        self.fuse
    }

    /// Enable/disable decode-time register allocation / copy coalescing
    /// (on by default; the `--no-regalloc` escape hatch). Observable
    /// behaviour is identical either way. Takes effect on the next
    /// decode: a cached decode of the other flavour is dropped.
    pub fn set_regalloc(&mut self, on: bool) {
        self.regalloc = on;
        if self.decoded.as_ref().is_some_and(|d| d.coalesced != on) {
            self.decoded = None;
        }
    }

    /// Whether `decoded()` builds with register allocation.
    pub fn regalloc(&self) -> bool {
        self.regalloc
    }

    /// Runtime superinstruction coverage accumulated so far (zeroes on
    /// the reference engine or with fusion disabled).
    pub fn fusion_dynamics(&self) -> FusionDynamics {
        self.fused_dyn
    }

    /// Runtime copy-traffic split accumulated so far (the elided lane is
    /// zero on the reference engine or with register allocation off).
    pub fn regalloc_dynamics(&self) -> RegallocDynamics {
        self.regalloc_dyn
    }

    /// The flat decoded form of the module, building (and caching) it on
    /// first use. The result is `Arc`-shared: hand it to other VMs over
    /// the same module via [`Vm::set_decoded`] — including VMs running
    /// on other sweep worker threads — to skip re-decoding. To decode
    /// without constructing a throwaway VM, use
    /// [`crate::decode::decode_module`].
    pub fn decoded(&mut self) -> Arc<DecodedModule> {
        if let Some(d) = &self.decoded {
            return Arc::clone(d);
        }
        let d = Arc::new(DecodedModule::decode_cfg(
            self.module,
            DecodeConfig {
                fuse: self.fuse,
                regalloc: self.regalloc,
            },
        ));
        self.decoded = Some(Arc::clone(&d));
        d
    }

    /// Install a pre-built decode of this VM's module (it must come from
    /// an identical module, e.g. via [`crate::decode::decode_module`] or
    /// [`Vm::decoded`] on a sibling VM). The decode's pass flavour wins:
    /// the VM's fusion and regalloc flags are synced to it.
    pub fn set_decoded(&mut self, decoded: Arc<DecodedModule>) {
        assert_eq!(
            decoded.funcs.len(),
            self.module.num_funcs(),
            "decoded form does not match this module"
        );
        self.fuse = decoded.fused;
        self.regalloc = decoded.coalesced;
        self.decoded = Some(decoded);
    }

    /// Attach a perf kernel (overflow interrupts start flowing to it).
    pub fn attach_kernel(&mut self, kernel: PerfKernel) {
        self.kernel = Some(kernel);
    }

    /// Register a host function by name.
    pub fn register_host(&mut self, name: impl Into<String>, handler: HostHandler) {
        self.host.insert(name.into(), handler);
    }

    /// Limit the number of machine ops executed (guards runaway loops).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The module being executed.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Call a guest function by name.
    ///
    /// # Errors
    /// [`VmError::BadEntry`] for unknown names/arity mismatches, plus any
    /// guest trap ([`VmError`]) raised during execution.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Vec<Value>, VmError> {
        let fid = self
            .module
            .func_id(name)
            .ok_or_else(|| VmError::BadEntry(format!("no function `{name}`")))?;
        self.call_id(fid, args)
    }

    /// Call a guest function by id.
    ///
    /// # Errors
    /// See [`Vm::call`].
    pub fn call_id(&mut self, fid: FuncId, args: &[Value]) -> Result<Vec<Value>, VmError> {
        let f = self.module.func(fid);
        if f.params.len() != args.len() {
            return Err(VmError::BadEntry(format!(
                "`{}` takes {} argument(s), got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        self.trap_pc = None;
        self.last_trap = None;
        match self.engine {
            Engine::Threaded => self.call_id_flat(fid, args, true),
            Engine::Decoded => self.call_id_flat(fid, args, false),
            Engine::Reference => self.call_id_reference(fid, args),
        }
    }

    /// Where the last error returned by [`Vm::call`] / [`Vm::call_id`]
    /// fired: faulting pc plus guest function name. `None` until a call
    /// fails; cleared on the next call. Capture happens only on the cold
    /// error path, so the hot loops pay nothing for it.
    pub fn trap_info(&self) -> Option<&TrapInfo> {
        self.last_trap.as_ref()
    }

    /// Renders a [`VmError`] together with the captured trap site, e.g.
    /// `"division by zero at pc 0x... (pc 0x... in \`triad\`)"`.
    pub fn describe_error(&self, err: &VmError) -> String {
        match self.trap_info() {
            Some(t) => format!("{err} ({t})"),
            None => err.to_string(),
        }
    }

    /// Notes the pc of a faulting op. Set-if-unset so the innermost
    /// (first-noting) site wins when the error unwinds through callers.
    #[cold]
    fn note_trap(&mut self, pc: u64) {
        if self.trap_pc.is_none() {
            self.trap_pc = Some(pc);
        }
    }

    /// Passes `r` through, noting `pc` as the trap site on `Err`. The
    /// `Ok` path is a single already-present branch; the note is `#[cold]`.
    #[inline]
    fn trap_at<T>(&mut self, r: Result<T, VmError>, pc: u64) -> Result<T, VmError> {
        if r.is_err() {
            self.note_trap(pc);
        }
        r
    }

    /// Builds [`TrapInfo`] from the error's embedded pc (most precise),
    /// falling back to the pc noted by the engine loop, then to a frame
    /// fallback supplied by the caller.
    #[cold]
    fn finalize_trap(&mut self, err: &VmError, frame_pc: u64) {
        let pc = err.embedded_pc().or(self.trap_pc).unwrap_or(frame_pc);
        let func = self.module.func(func_of_pc(pc)).name.clone();
        self.last_trap = Some(TrapInfo { pc, func });
    }

    fn call_id_reference(&mut self, fid: FuncId, args: &[Value]) -> Result<Vec<Value>, VmError> {
        let f = self.module.func(fid);
        let mut regs = vec![Value::I64(0); f.num_regs()];
        for (p, a) in f.params.iter().zip(args) {
            regs[p.index()] = a.clone();
        }
        let base_depth = self.stack.len();
        self.stack.push(Frame {
            func: fid,
            regs,
            block: f.entry(),
            idx: 0,
            ret_dsts: Vec::new(),
            call_pc: 0,
        });
        let result = self.run(base_depth);
        if let Err(err) = &result {
            let frame_pc = self
                .stack
                .last()
                .map(|fr| pc_of(fr.func, fr.block, fr.idx.saturating_sub(1)))
                .unwrap_or(0);
            let err = err.clone();
            self.finalize_trap(&err, frame_pc);
            self.stack.truncate(base_depth);
        }
        result
    }

    /// Shared entry for the flat-stream engines (decoded and threaded):
    /// both run the same frame layout over the same register stack.
    fn call_id_flat(
        &mut self,
        fid: FuncId,
        args: &[Value],
        threaded: bool,
    ) -> Result<Vec<Value>, VmError> {
        let dec = self.decoded();
        let base_depth = self.dstack.len();
        let regs_floor = self.dregs.len();
        let df = &dec.funcs[fid.index()];
        let base = self.dregs.len();
        self.dregs
            .resize(base + df.num_regs as usize, Value::I64(0));
        for (p, a) in df.params.iter().zip(args) {
            self.dregs[base + *p as usize] = a.clone();
        }
        self.dstack.push(DFrame {
            func: fid.0,
            base: base as u32,
            ip: 0,
            call_pc: 0,
        });
        let result = if threaded {
            self.run_threaded(&dec, base_depth)
        } else {
            self.run_decoded(&dec, base_depth)
        };
        if let Err(err) = &result {
            let frame_pc = self
                .dstack
                .last()
                .map(|fr| {
                    let df = &dec.funcs[fr.func as usize];
                    let ip = (fr.ip as usize).saturating_sub(1);
                    df.pcs.get(ip).copied().unwrap_or(0)
                })
                .unwrap_or(0);
            let err = err.clone();
            self.finalize_trap(&err, frame_pc);
            self.dstack.truncate(base_depth);
            self.dregs.truncate(regs_floor);
        }
        result
    }

    /// Interpreter main loop: runs until the frame stack returns to
    /// `base_depth`.
    fn run(&mut self, base_depth: usize) -> Result<Vec<Value>, VmError> {
        loop {
            let frame = self.stack.last().expect("run() with nonempty stack");
            let func = self.module.func(frame.func);
            let block = func.block(frame.block);
            let fuel_out = self.stats.machine_ops >= self.fuel;
            if fuel_out {
                self.note_trap(pc_of(frame.func, frame.block, frame.idx));
                return Err(VmError::OutOfFuel {
                    executed: self.stats.machine_ops,
                });
            }
            if frame.idx < block.insts.len() {
                let pc = pc_of(frame.func, frame.block, frame.idx);
                let inst = &block.insts[frame.idx];
                if let Err(e) = self.exec_inst(inst.clone(), pc) {
                    self.note_trap(pc);
                    return Err(e);
                }
            } else {
                let pc = pc_of(frame.func, frame.block, block.insts.len());
                let term = block.term.clone();
                match self.exec_term(term, pc) {
                    Err(e) => {
                        self.note_trap(pc);
                        return Err(e);
                    }
                    Ok(Some(vals)) => {
                        if self.stack.len() == base_depth {
                            return Ok(vals);
                        }
                    }
                    Ok(None) => {}
                }
            }
        }
    }

    fn frame(&mut self) -> &mut Frame {
        self.stack.last_mut().expect("active frame")
    }

    fn eval(&mut self, op: Operand) -> Value {
        match op {
            Operand::Reg(r) => self.frame().regs[r.index()].clone(),
            Operand::I64(v) => Value::I64(v),
            Operand::F32(v) => Value::F32(v),
            Operand::F64(v) => Value::F64(v),
            Operand::Bool(v) => Value::Bool(v),
        }
    }

    fn set(&mut self, r: Reg, v: Value) {
        self.frame().regs[r.index()] = v;
    }

    fn retire(&mut self, op: MachineOp) {
        let info = self.core.retire(&op);
        self.stats.machine_ops += 1;
        if info.overflow != 0 {
            self.deliver_overflow(op.pc, info.overflow, Engine::Reference);
        }
    }

    /// Decoded/threaded-engine retire (callchains walk the flat frame
    /// stack).
    pub(crate) fn retire_d(&mut self, op: MachineOp) {
        let info = self.core.retire(&op);
        self.stats.machine_ops += 1;
        if info.overflow != 0 {
            self.deliver_overflow(op.pc, info.overflow, Engine::Decoded);
        }
    }

    /// Retire one machine op either immediately (`DEFER = false`: the
    /// ordinary tick-per-op path, overflow delivered at the op's pc) or
    /// into the open superblock accumulator (`DEFER = true`: timing
    /// applies now, the PMU tick is deferred to the block commit, which
    /// the block guard proved cannot overflow).
    #[inline]
    pub(crate) fn retire_one<const DEFER: bool>(&mut self, op: MachineOp) {
        if DEFER {
            self.stats.machine_ops += 1;
            self.core.block_apply(&op, &mut self.block_acc);
        } else {
            self.retire_d(op);
        }
    }

    /// [`Vm::retire_one`] for one memory/branch/FLOP-free *scalar*
    /// class (skips `MachineOp` construction on the deferred lane).
    #[inline]
    pub(crate) fn retire_class<const DEFER: bool>(&mut self, class: OpClass, pc: u64) {
        if DEFER {
            self.stats.machine_ops += 1;
            self.core.block_apply_class(class, &mut self.block_acc);
        } else {
            self.retire_d(MachineOp::simple(class, pc));
        }
    }

    /// [`Vm::retire_one`] for memory/branch/FLOP-free scalar classes
    /// (skips `MachineOp` construction on the deferred lane).
    #[inline]
    pub(crate) fn retire_classes<const DEFER: bool>(&mut self, classes: &[OpClass], pcs: &[u64]) {
        if DEFER {
            self.stats.machine_ops += classes.len() as u64;
            self.core.block_apply_classes(classes, &mut self.block_acc);
        } else {
            for (class, pc) in classes.iter().zip(pcs) {
                self.retire_d(MachineOp::simple(*class, *pc));
            }
        }
    }

    /// Build the callchain (innermost frame first) into the reusable
    /// scratch buffer and route the overflow to the attached kernel, so
    /// each sample costs zero allocations on the measured path.
    #[cold]
    pub(crate) fn deliver_overflow(&mut self, pc: u64, overflow: u32, engine: Engine) {
        let mut chain = std::mem::take(&mut self.chain_scratch);
        chain.clear();
        chain.push(pc);
        match engine {
            Engine::Reference => {
                for f in self.stack.iter().rev() {
                    if f.call_pc != 0 {
                        chain.push(f.call_pc);
                    }
                }
            }
            Engine::Decoded | Engine::Threaded => {
                for f in self.dstack.iter().rev() {
                    if f.call_pc != 0 {
                        chain.push(f.call_pc);
                    }
                }
            }
        }
        if let Some(kernel) = &mut self.kernel {
            let ctx = OverflowCtx {
                ip: pc,
                tid: 1,
                callchain: chain,
            };
            kernel.on_overflow(&mut self.core, overflow, &ctx);
            chain = ctx.callchain;
        }
        self.chain_scratch = chain;
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inst(&mut self, inst: Inst, pc: u64) -> Result<(), VmError> {
        self.stats.mir_ops += 1;
        self.frame().idx += 1;
        match inst {
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                let v = eval_bin(op, &a, &b, pc)?;
                self.set(dst, v);
                let class = inst_class(&Inst::Bin {
                    op,
                    ty,
                    dst,
                    lhs,
                    rhs,
                });
                self.retire(
                    MachineOp::simple(class, pc).with_flops(crate::lower::bin_flops(op, ty)),
                );
            }
            Inst::Cmp {
                op, dst, lhs, rhs, ..
            } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                self.set(dst, Value::Bool(eval_cmp(op, &a, &b)));
                self.retire(MachineOp::simple(OpClass::IntAlu, pc));
            }
            Inst::Un { op, ty, dst, src } => {
                let v = self.eval(src);
                let r = match (op, v) {
                    (UnOp::Neg, Value::I64(x)) => Value::I64(x.wrapping_neg()),
                    (UnOp::FNeg, Value::F32(x)) => Value::F32(-x),
                    (UnOp::FNeg, Value::F64(x)) => Value::F64(-x),
                    (UnOp::FNeg, Value::VF32(x)) => Value::VF32(x.iter().map(|l| -l).collect()),
                    (UnOp::FNeg, Value::VF64(x)) => Value::VF64(x.iter().map(|l| -l).collect()),
                    (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
                    (o, v) => unreachable!("verifier admits {o:?} of {v:?}"),
                };
                self.set(dst, r);
                self.retire(MachineOp::simple(un_class(op, ty), pc).with_flops(un_flops(op, ty)));
            }
            Inst::Fma { ty, dst, a, b, c } => {
                let va = self.eval(a);
                let vb = self.eval(b);
                let vc = self.eval(c);
                let r = eval_fma(va, vb, vc);
                self.set(dst, r);
                let class = if ty.is_vector() {
                    OpClass::VecFma
                } else {
                    OpClass::FpFma
                };
                self.retire(MachineOp::simple(class, pc).with_flops(2 * ty.lanes() as u32));
            }
            Inst::Load {
                dst,
                addr,
                mem,
                lanes,
                stride,
            } => {
                let base = self.eval(addr).as_i64() as u64;
                let st = self.eval(stride).as_i64();
                let v = self.load_value(base, mem, lanes, st)?;
                self.set(dst, v);
                let class = if lanes > 1 {
                    OpClass::VecLoad
                } else {
                    OpClass::Load
                };
                let mref = MemRef {
                    addr: base,
                    bytes: mem.bytes() as u32,
                    lanes: lanes as u32,
                    stride: st,
                    is_store: false,
                };
                self.retire(MachineOp::simple(class, pc).with_mem(mref));
            }
            Inst::Store {
                addr,
                val,
                mem,
                lanes,
                stride,
            } => {
                let base = self.eval(addr).as_i64() as u64;
                let st = self.eval(stride).as_i64();
                let v = self.eval(val);
                self.store_value(base, mem, lanes, st, &v)?;
                let class = if lanes > 1 {
                    OpClass::VecStore
                } else {
                    OpClass::Store
                };
                let mref = MemRef {
                    addr: base,
                    bytes: mem.bytes() as u32,
                    lanes: lanes as u32,
                    stride: st,
                    is_store: true,
                };
                self.retire(MachineOp::simple(class, pc).with_mem(mref));
            }
            Inst::PtrAdd { dst, base, offset } => {
                let b = self.eval(base).as_i64();
                let o = self.eval(offset).as_i64();
                self.set(dst, Value::I64(b.wrapping_add(o)));
                self.retire(MachineOp::simple(OpClass::AddrCalc, pc));
            }
            Inst::Select {
                dst, cond, t, f, ..
            } => {
                let c = self.eval(cond).as_bool();
                let v = if c { self.eval(t) } else { self.eval(f) };
                self.set(dst, v);
                self.retire(MachineOp::simple(OpClass::IntAlu, pc));
            }
            Inst::Cast { kind, dst, src } => {
                let v = self.eval(src);
                let dst_ty = {
                    let frame = self.stack.last().expect("active frame");
                    self.module.func(frame.func).ty_of(dst)
                };
                let r = eval_cast(kind, &v, dst_ty);
                self.set(dst, r);
                self.retire(MachineOp::simple(cast_class(kind), pc));
            }
            Inst::Copy { dst, src, .. } => {
                let v = self.eval(src);
                self.set(dst, v);
                self.regalloc_dyn.copies_moved += 1;
                self.retire(MachineOp::simple(OpClass::Move, pc));
            }
            Inst::Splat { ty, dst, src } => {
                let v = self.eval(src);
                let lanes = ty.lanes() as usize;
                let r = match (ty.elem(), v) {
                    (Ty::F32, Value::F32(x)) => Value::VF32(LanesF32::splat(x, lanes)),
                    (Ty::F64, Value::F64(x)) => Value::VF64(LanesF64::splat(x, lanes)),
                    (Ty::I64, Value::I64(x)) => Value::VI64(LanesI64::splat(x, lanes)),
                    (t, v) => unreachable!("verifier admits splat {t} of {v:?}"),
                };
                self.set(dst, r);
                self.retire(MachineOp::simple(OpClass::VecShuffle, pc));
            }
            Inst::Reduce { op, dst, src } => {
                let v = self.eval(src);
                let lanes = v.lanes() as u32;
                let r = match (op, v) {
                    (ReduceOp::FAdd, Value::VF32(x)) => Value::F32(x.iter().sum()),
                    (ReduceOp::FAdd, Value::VF64(x)) => Value::F64(x.iter().sum()),
                    (ReduceOp::Add, Value::VI64(x)) => {
                        Value::I64(x.iter().fold(0i64, |a, b| a.wrapping_add(*b)))
                    }
                    (o, v) => unreachable!("verifier admits reduce {o:?} of {v:?}"),
                };
                let flops = match op {
                    ReduceOp::FAdd => lanes.saturating_sub(1),
                    ReduceOp::Add => 0,
                };
                self.set(dst, r);
                self.retire(MachineOp::simple(OpClass::VecShuffle, pc).with_flops(flops));
            }
            Inst::Call { dsts, callee, args } => {
                let argv: Vec<Value> = args.iter().map(|a| self.eval(*a)).collect();
                self.stats.calls += 1;
                self.retire(MachineOp::simple(OpClass::CallRet, pc));
                match callee {
                    Callee::Func(fid) => {
                        if self.stack.len() >= self.max_depth {
                            return Err(VmError::StackOverflow {
                                depth: self.stack.len(),
                            });
                        }
                        let f = self.module.func(fid);
                        let mut regs = vec![Value::I64(0); f.num_regs()];
                        for (p, a) in f.params.iter().zip(argv) {
                            regs[p.index()] = a;
                        }
                        self.stack.push(Frame {
                            func: fid,
                            regs,
                            block: f.entry(),
                            idx: 0,
                            ret_dsts: dsts,
                            call_pc: pc,
                        });
                    }
                    Callee::Host(name) => {
                        let rets = self.call_host(&name, &argv, pc)?;
                        for (d, v) in dsts.iter().zip(rets) {
                            self.set(*d, v);
                        }
                    }
                }
            }
            Inst::ProfCount(counts) => {
                self.roofline.prof_count(counts);
                // The counter update is real guest work: a handful of
                // integer ops plus a load/store to the counter block.
                let scratch = self.prof_scratch;
                for _ in 0..3 {
                    self.retire(MachineOp::simple(OpClass::IntAlu, pc));
                }
                self.retire(
                    MachineOp::simple(OpClass::Load, pc)
                        .with_mem(MemRef::scalar(scratch, 8, false)),
                );
                self.retire(
                    MachineOp::simple(OpClass::Store, pc)
                        .with_mem(MemRef::scalar(scratch, 8, true)),
                );
            }
        }
        Ok(())
    }

    /// Returns `Some(values)` when a frame returned.
    fn exec_term(&mut self, term: Term, pc: u64) -> Result<Option<Vec<Value>>, VmError> {
        match term {
            Term::Br(b) => {
                self.retire(MachineOp::simple(OpClass::Move, pc));
                let f = self.frame();
                f.block = b;
                f.idx = 0;
                Ok(None)
            }
            Term::CondBr { cond, t, f } => {
                let c = self.eval(cond).as_bool();
                self.retire(MachineOp::simple(OpClass::Branch, pc).with_taken(c));
                let fr = self.frame();
                fr.block = if c { t } else { f };
                fr.idx = 0;
                Ok(None)
            }
            Term::Ret(vals) => {
                let out: Vec<Value> = vals.iter().map(|v| self.eval(*v)).collect();
                self.retire(MachineOp::simple(OpClass::CallRet, pc));
                let frame = self.stack.pop().expect("ret with a frame");
                if self.stack.is_empty() {
                    return Ok(Some(out));
                }
                // Write return values into the caller.
                let parent = self.stack.last_mut().expect("caller frame");
                for (d, v) in frame.ret_dsts.iter().zip(out.iter()) {
                    parent.regs[d.index()] = v.clone();
                }
                Ok(Some(out))
            }
        }
    }

    /// Decoded-engine main loop: an index-driven dispatch over the flat
    /// op arrays, shaped for jump-table codegen — one dense `match` whose
    /// arms are tight handler bodies. Per-op order of effects (evaluate →
    /// trap → write → retire) mirrors `exec_inst`/`exec_term` exactly, so
    /// traps, stats, cycles, and PMU state stay bit-identical to the
    /// reference engine.
    ///
    /// The op/pc/register fetches are *unchecked*: `validate_func` pinned
    /// every index (jump targets, register numbers, callee/host/fused
    /// ids, terminator-last) at decode time, so the pre-validated stream
    /// cannot index out of bounds — see the decode-module docs.
    #[allow(clippy::too_many_lines)]
    fn run_decoded(
        &mut self,
        dec: &DecodedModule,
        base_depth: usize,
    ) -> Result<Vec<Value>, VmError> {
        // The active frame is cursor-cached in a local: `cur.ip` is only
        // written back to the stack around calls (so `Ret` can find the
        // caller's call op) — the steady-state loop touches no frame
        // memory. `call_pc` stays correct on the stack for callchains.
        let mut cur = *self.dstack.last().expect("run_decoded with a frame");
        loop {
            if self.stats.machine_ops >= self.fuel {
                if let Some(p) = dec.funcs[cur.func as usize].pcs.get(cur.ip as usize) {
                    self.note_trap(*p);
                }
                return Err(VmError::OutOfFuel {
                    executed: self.stats.machine_ops,
                });
            }
            debug_assert!((cur.func as usize) < dec.funcs.len());
            // SAFETY: `cur.func` comes from a validated `CallFunc` callee
            // or the entry `FuncId`; `ip` stays inside `ops` because
            // every function ends in a (validated) terminator and every
            // jump target was range-checked at decode time.
            let df = unsafe { dec.funcs.get_unchecked(cur.func as usize) };
            let ip = cur.ip as usize;
            debug_assert!(ip < df.ops.len());
            let pc = unsafe { *df.pcs.get_unchecked(ip) };
            let base = cur.base as usize;
            cur.ip += 1;
            match unsafe { df.ops.get_unchecked(ip) } {
                DecodedOp::Bin {
                    op,
                    class,
                    flops,
                    dst,
                    lhs,
                    rhs,
                } => {
                    self.stats.mir_ops += 1;
                    let a = self.deval(base, *lhs);
                    let b = self.deval(base, *rhs);
                    let v = eval_bin(*op, &a, &b, pc);
                    let v = self.trap_at(v, pc)?;
                    self.dset(base, *dst, v);
                    self.retire_d(MachineOp::simple(*class, pc).with_flops(*flops));
                }
                DecodedOp::BinI {
                    op,
                    class,
                    dst,
                    lhs,
                    rhs,
                } => {
                    self.stats.mir_ops += 1;
                    let a = self.deval_i64(base, *lhs);
                    let b = self.deval_i64(base, *rhs);
                    let v = eval_bin_i64(*op, a, b, pc);
                    let v = self.trap_at(v, pc)?;
                    self.dset(base, *dst, Value::I64(v));
                    self.retire_d(MachineOp::simple(*class, pc));
                }
                DecodedOp::Cmp { op, dst, lhs, rhs } => {
                    self.stats.mir_ops += 1;
                    let a = self.deval(base, *lhs);
                    let b = self.deval(base, *rhs);
                    self.dset(base, *dst, Value::Bool(eval_cmp(*op, &a, &b)));
                    self.retire_d(MachineOp::simple(OpClass::IntAlu, pc));
                }
                DecodedOp::CmpI { op, dst, lhs, rhs } => {
                    self.stats.mir_ops += 1;
                    let a = self.deval_i64(base, *lhs);
                    let b = self.deval_i64(base, *rhs);
                    self.dset(base, *dst, Value::Bool(cmp_i64(*op, a, b)));
                    self.retire_d(MachineOp::simple(OpClass::IntAlu, pc));
                }
                DecodedOp::Un {
                    op,
                    class,
                    flops,
                    dst,
                    src,
                } => {
                    self.stats.mir_ops += 1;
                    let v = self.deval(base, *src);
                    let r = match (op, v) {
                        (UnOp::Neg, Value::I64(x)) => Value::I64(x.wrapping_neg()),
                        (UnOp::FNeg, Value::F32(x)) => Value::F32(-x),
                        (UnOp::FNeg, Value::F64(x)) => Value::F64(-x),
                        (UnOp::FNeg, Value::VF32(x)) => Value::VF32(x.iter().map(|l| -l).collect()),
                        (UnOp::FNeg, Value::VF64(x)) => Value::VF64(x.iter().map(|l| -l).collect()),
                        (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
                        (o, v) => unreachable!("verifier admits {o:?} of {v:?}"),
                    };
                    self.dset(base, *dst, r);
                    self.retire_d(MachineOp::simple(*class, pc).with_flops(*flops));
                }
                DecodedOp::Fma {
                    class,
                    flops,
                    dst,
                    a,
                    b,
                    c,
                } => {
                    self.stats.mir_ops += 1;
                    let va = self.deval(base, *a);
                    let vb = self.deval(base, *b);
                    let vc = self.deval(base, *c);
                    let r = eval_fma(va, vb, vc);
                    self.dset(base, *dst, r);
                    self.retire_d(MachineOp::simple(*class, pc).with_flops(*flops));
                }
                DecodedOp::Load {
                    class,
                    dst,
                    addr,
                    mem,
                    lanes,
                    stride,
                } => {
                    self.stats.mir_ops += 1;
                    let a = self.deval_i64(base, *addr) as u64;
                    let st = self.deval_i64(base, *stride);
                    let v = self.load_value(a, *mem, *lanes, st);
                    let v = self.trap_at(v, pc)?;
                    self.dset(base, *dst, v);
                    let mref = MemRef {
                        addr: a,
                        bytes: mem.bytes() as u32,
                        lanes: *lanes as u32,
                        stride: st,
                        is_store: false,
                    };
                    self.retire_d(MachineOp::simple(*class, pc).with_mem(mref));
                }
                DecodedOp::Store {
                    class,
                    addr,
                    val,
                    mem,
                    lanes,
                    stride,
                } => {
                    self.stats.mir_ops += 1;
                    let a = self.deval_i64(base, *addr) as u64;
                    let st = self.deval_i64(base, *stride);
                    let v = self.deval(base, *val);
                    let stored = self.store_value(a, *mem, *lanes, st, &v);
                    self.trap_at(stored, pc)?;
                    let mref = MemRef {
                        addr: a,
                        bytes: mem.bytes() as u32,
                        lanes: *lanes as u32,
                        stride: st,
                        is_store: true,
                    };
                    self.retire_d(MachineOp::simple(*class, pc).with_mem(mref));
                }
                DecodedOp::PtrAdd {
                    dst,
                    base: b,
                    offset,
                } => {
                    self.stats.mir_ops += 1;
                    let bv = self.deval_i64(base, *b);
                    let o = self.deval_i64(base, *offset);
                    self.dset(base, *dst, Value::I64(bv.wrapping_add(o)));
                    self.retire_d(MachineOp::simple(OpClass::AddrCalc, pc));
                }
                DecodedOp::Select { dst, cond, t, f } => {
                    self.stats.mir_ops += 1;
                    let c = self.deval_bool(base, *cond);
                    let v = if c {
                        self.deval(base, *t)
                    } else {
                        self.deval(base, *f)
                    };
                    self.dset(base, *dst, v);
                    self.retire_d(MachineOp::simple(OpClass::IntAlu, pc));
                }
                DecodedOp::Cast {
                    kind,
                    class,
                    dst_ty,
                    dst,
                    src,
                } => {
                    self.stats.mir_ops += 1;
                    let v = self.deval(base, *src);
                    let r = eval_cast(*kind, &v, *dst_ty);
                    self.dset(base, *dst, r);
                    self.retire_d(MachineOp::simple(*class, pc));
                }
                DecodedOp::Copy { dst, src } => {
                    self.stats.mir_ops += 1;
                    let v = self.deval(base, *src);
                    self.dset(base, *dst, v);
                    self.regalloc_dyn.copies_moved += 1;
                    self.retire_d(MachineOp::simple(OpClass::Move, pc));
                }
                DecodedOp::ElidedCopy => {
                    // A coalesced copy: the producer already wrote the
                    // shared register, so only the modeled `Move` retires
                    // — same machine op, same pc, no data movement.
                    self.stats.mir_ops += 1;
                    self.regalloc_dyn.copies_elided += 1;
                    self.retire_d(MachineOp::simple(OpClass::Move, pc));
                }
                DecodedOp::Splat {
                    elem,
                    lanes,
                    dst,
                    src,
                } => {
                    self.stats.mir_ops += 1;
                    let v = self.deval(base, *src);
                    let n = *lanes as usize;
                    let r = match (elem, v) {
                        (Ty::F32, Value::F32(x)) => Value::VF32(LanesF32::splat(x, n)),
                        (Ty::F64, Value::F64(x)) => Value::VF64(LanesF64::splat(x, n)),
                        (Ty::I64, Value::I64(x)) => Value::VI64(LanesI64::splat(x, n)),
                        (t, v) => unreachable!("verifier admits splat {t} of {v:?}"),
                    };
                    self.dset(base, *dst, r);
                    self.retire_d(MachineOp::simple(OpClass::VecShuffle, pc));
                }
                DecodedOp::Reduce {
                    op,
                    flops,
                    dst,
                    src,
                } => {
                    self.stats.mir_ops += 1;
                    let v = self.deval(base, *src);
                    let r = match (op, v) {
                        (ReduceOp::FAdd, Value::VF32(x)) => Value::F32(x.iter().sum()),
                        (ReduceOp::FAdd, Value::VF64(x)) => Value::F64(x.iter().sum()),
                        (ReduceOp::Add, Value::VI64(x)) => {
                            Value::I64(x.iter().fold(0i64, |a, b| a.wrapping_add(*b)))
                        }
                        (o, v) => unreachable!("verifier admits reduce {o:?} of {v:?}"),
                    };
                    self.dset(base, *dst, r);
                    self.retire_d(MachineOp::simple(OpClass::VecShuffle, pc).with_flops(*flops));
                }
                DecodedOp::CallFunc {
                    callee,
                    dsts: _,
                    args,
                } => {
                    self.stats.mir_ops += 1;
                    let mut argv = std::mem::take(&mut self.arg_scratch);
                    argv.clear();
                    for a in args.iter() {
                        argv.push(self.deval(base, *a));
                    }
                    self.stats.calls += 1;
                    self.retire_d(MachineOp::simple(OpClass::CallRet, pc));
                    if self.dstack.len() >= self.max_depth {
                        self.arg_scratch = argv;
                        self.note_trap(pc);
                        return Err(VmError::StackOverflow {
                            depth: self.dstack.len(),
                        });
                    }
                    // SAFETY: callee ids are validated at decode time.
                    let cf = unsafe { dec.funcs.get_unchecked(*callee as usize) };
                    let new_base = self.dregs.len();
                    self.dregs
                        .resize(new_base + cf.num_regs as usize, Value::I64(0));
                    for (p, a) in cf.params.iter().zip(argv.drain(..)) {
                        self.dregs[new_base + *p as usize] = a;
                    }
                    self.arg_scratch = argv;
                    self.dstack.last_mut().expect("caller frame").ip = cur.ip;
                    cur = DFrame {
                        func: *callee,
                        base: new_base as u32,
                        ip: 0,
                        call_pc: pc,
                    };
                    self.dstack.push(cur);
                }
                DecodedOp::CallHost { target, dsts, args } => {
                    self.stats.mir_ops += 1;
                    let mut argv = std::mem::take(&mut self.arg_scratch);
                    argv.clear();
                    for a in args.iter() {
                        argv.push(self.deval(base, *a));
                    }
                    self.stats.calls += 1;
                    self.retire_d(MachineOp::simple(OpClass::CallRet, pc));
                    // Notification functions are a few instructions of
                    // real work (mirrors `call_host`).
                    for _ in 0..3 {
                        self.retire_d(MachineOp::simple(OpClass::IntAlu, pc));
                    }
                    match target {
                        HostTarget::LoopBegin => {
                            let id = argv[0].as_i64() as u32;
                            let now = self.core.cycles();
                            self.roofline.loop_begin(id, now);
                        }
                        HostTarget::LoopEnd => {
                            let id = argv[0].as_i64() as u32;
                            let now = self.core.cycles();
                            self.roofline.loop_end(id, now);
                        }
                        HostTarget::IsInstrumented => {
                            let v = Value::Bool(self.roofline.instrumented);
                            if let Some(d) = dsts.first() {
                                self.dregs[base + d.index()] = v;
                            }
                        }
                        HostTarget::Named(id) => {
                            let name = &dec.host_names[*id as usize];
                            let rets = match self.host.get_mut(name) {
                                Some(h) => match h(&argv) {
                                    Ok(rets) => rets,
                                    Err(msg) => {
                                        self.arg_scratch = argv;
                                        self.note_trap(pc);
                                        return Err(VmError::HostFault(msg));
                                    }
                                },
                                None => {
                                    self.arg_scratch = argv;
                                    self.note_trap(pc);
                                    return Err(VmError::UnknownHost(name.clone()));
                                }
                            };
                            for (d, v) in dsts.iter().zip(rets) {
                                self.dregs[base + d.index()] = v;
                            }
                        }
                    }
                    self.arg_scratch = argv;
                }
                DecodedOp::ProfCount(counts) => {
                    self.stats.mir_ops += 1;
                    self.roofline.prof_count(*counts);
                    // The counter update is real guest work: a handful of
                    // integer ops plus a load/store to the counter block.
                    let scratch = self.prof_scratch;
                    for _ in 0..3 {
                        self.retire_d(MachineOp::simple(OpClass::IntAlu, pc));
                    }
                    self.retire_d(
                        MachineOp::simple(OpClass::Load, pc)
                            .with_mem(MemRef::scalar(scratch, 8, false)),
                    );
                    self.retire_d(
                        MachineOp::simple(OpClass::Store, pc)
                            .with_mem(MemRef::scalar(scratch, 8, true)),
                    );
                }
                DecodedOp::Br { target } => {
                    self.retire_d(MachineOp::simple(OpClass::Move, pc));
                    cur.ip = *target;
                }
                DecodedOp::CondBr { cond, t, f } => {
                    let c = self.deval_bool(base, *cond);
                    self.retire_d(MachineOp::simple(OpClass::Branch, pc).with_taken(c));
                    cur.ip = if c { *t } else { *f };
                }
                DecodedOp::Ret { vals } => {
                    let mut out = std::mem::take(&mut self.ret_scratch);
                    out.clear();
                    for v in vals.iter() {
                        out.push(self.deval(base, *v));
                    }
                    self.retire_d(MachineOp::simple(OpClass::CallRet, pc));
                    self.dstack.pop();
                    if self.dstack.len() == base_depth {
                        self.dregs.truncate(base);
                        return Ok(out);
                    }
                    cur = *self.dstack.last().expect("caller frame");
                    let pf = &dec.funcs[cur.func as usize];
                    let dsts = match &pf.ops[cur.ip as usize - 1] {
                        DecodedOp::CallFunc { dsts, .. } => dsts,
                        other => unreachable!("return to non-call op {other:?}"),
                    };
                    for (d, v) in dsts.iter().zip(out.drain(..)) {
                        self.dregs[cur.base as usize + d.index()] = v;
                    }
                    self.dregs.truncate(base);
                    self.ret_scratch = out;
                }
                DecodedOp::Fused(fi) => {
                    debug_assert!((*fi as usize) < df.fused.len());
                    // SAFETY: fused indices validated at decode time; the
                    // site window `ip..ip+width` is inside `ops`/`pcs`
                    // (checked by `validate_func`), so the per-slot pc
                    // fetches in the pattern handlers are in range.
                    let site = unsafe { df.fused.get_unchecked(*fi as usize) };
                    // One dispatch on the pattern kind selects the shared
                    // per-pattern handler (the threaded engine binds these
                    // same handlers as per-pattern templates, skipping
                    // this match entirely).
                    let fused_result = match &site.op {
                        Fused::CmpBranch { .. } => {
                            self.fused_cmp_branch(df, site, ip, base, &mut cur)
                        }
                        Fused::IncCmpBranch { .. } => {
                            self.fused_inc_cmp_branch(df, site, ip, base, &mut cur)
                        }
                        Fused::BinCopy { .. } => self.fused_bin_copy(df, site, ip, base, &mut cur),
                        Fused::AddrLoad { .. } => {
                            self.fused_addr_load(df, site, ip, base, &mut cur)
                        }
                        Fused::AddrStore { .. } => {
                            self.fused_addr_store(df, site, ip, base, &mut cur)
                        }
                        Fused::LoadOp { .. } => self.fused_load_op(df, site, ip, base, &mut cur),
                        Fused::AddrLoadOp { .. } => {
                            self.fused_addr_load_op(df, site, ip, base, &mut cur)
                        }
                    };
                    self.trap_at(fused_result, pc)?;
                }
            }
        }
    }

    /// Commit path for branch-ending fused fast paths: the specialized
    /// one-tick batch retire plus coverage accounting.
    #[inline]
    fn fused_branch_retire(
        &mut self,
        prefix: &[OpClass],
        last_pc: u64,
        taken: bool,
        mir_ops: u64,
        pat: FusePattern,
    ) {
        let info = self.core.retire_fused_branch(prefix, last_pc, taken);
        self.account_fused(info, prefix.len() as u64 + 1, mir_ops, pat, last_pc);
    }

    /// Commit path for memory-free, FLOP-free fused fast paths (classes
    /// only); see [`Vm::fused_branch_retire`].
    #[inline]
    fn fused_simple_retire(
        &mut self,
        classes: &[OpClass],
        last_pc: u64,
        mir_ops: u64,
        pat: FusePattern,
    ) {
        let info = self.core.retire_fused_simple(classes);
        self.account_fused(info, classes.len() as u64, mir_ops, pat, last_pc);
    }

    /// `cmp + condbr` fused fast path. Shared by the decoded engine and
    /// the threaded engine's out-of-block template dispatch (inside a
    /// superblock, fused sites execute as their constituent templates —
    /// the block already batches the PMU tick, so the one-tick fused
    /// retire would add no value there). Caller pre-incremented
    /// `cur.ip`; a bail leaves it there (the next constituent slot), the
    /// fast path jumps it.
    pub(crate) fn fused_cmp_branch(
        &mut self,
        df: &DecodedFunc,
        site: &FusedSite,
        ip: usize,
        base: usize,
        cur: &mut DFrame,
    ) -> Result<(), VmError> {
        let Fused::CmpBranch {
            op,
            c_dst,
            lhs,
            rhs,
            int,
            write_cmp,
            t,
            f,
        } = &site.op
        else {
            unreachable!("dispatched on pattern kind")
        };
        let w = site.width as usize;
        let extra = w as u64 - 1;
        let n_elided = site.elided.count_ones() as u64;
        let pc = unsafe { *df.pcs.get_unchecked(ip) };
        let c = if *int {
            cmp_i64(*op, self.deval_i64(base, *lhs), self.deval_i64(base, *rhs))
        } else {
            let a = self.deval(base, *lhs);
            let b = self.deval(base, *rhs);
            eval_cmp(*op, &a, &b)
        };
        if self.stats.machine_ops + extra >= self.fuel || !self.core.fused_ready_nomem() {
            // Bail: the original `Cmp`, unfused; the loop resumes at the
            // next retained slot.
            self.stats.mir_ops += 1;
            self.dset(base, *c_dst, Value::Bool(c));
            self.retire_d(MachineOp::simple(OpClass::IntAlu, pc));
            return Ok(());
        }
        // Terminators don't count as MIR ops (as in both unfused
        // engines): the Cmp and any elided copies do.
        self.stats.mir_ops += extra;
        if *write_cmp {
            self.dset(base, *c_dst, Value::Bool(c));
        }
        // Prefix = cmp plus any interior elided copies; the branch
        // retires last.
        let mut prefix = [OpClass::Move; MAX_FUSE_WIDTH];
        prefix[0] = OpClass::IntAlu;
        let last_pc = unsafe { *df.pcs.get_unchecked(ip + w - 1) };
        self.regalloc_dyn.copies_elided += n_elided;
        self.fused_branch_retire(&prefix[..w - 1], last_pc, c, extra, FusePattern::CmpBranch);
        cur.ip = if c { *t } else { *f };
        Ok(())
    }

    /// `add/sub + cmp + condbr` (counted-loop back edge) fused fast
    /// path; see [`Vm::fused_cmp_branch`].
    pub(crate) fn fused_inc_cmp_branch(
        &mut self,
        df: &DecodedFunc,
        site: &FusedSite,
        ip: usize,
        base: usize,
        cur: &mut DFrame,
    ) -> Result<(), VmError> {
        let Fused::IncCmpBranch {
            i_op,
            i_dst,
            i_lhs,
            i_rhs,
            c_op,
            c_dst,
            c_lhs,
            c_rhs,
            c_int,
            write_cmp,
            t,
            f,
        } = &site.op
        else {
            unreachable!("dispatched on pattern kind")
        };
        let w = site.width as usize;
        let elided = site.elided;
        let extra = w as u64 - 1;
        let n_elided = elided.count_ones() as u64;
        let pc = unsafe { *df.pcs.get_unchecked(ip) };
        let a = self.deval_i64(base, *i_lhs);
        let b = self.deval_i64(base, *i_rhs);
        let iv = match i_op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            other => unreachable!("fusion admits {other:?} back edge"),
        };
        if self.stats.machine_ops + extra >= self.fuel || !self.core.fused_ready_nomem() {
            self.stats.mir_ops += 1;
            self.dset(base, *i_dst, Value::I64(iv));
            self.retire_d(MachineOp::simple(OpClass::IntAlu, pc));
            return Ok(());
        }
        // The CondBr terminator is not a MIR op; the inc, cmp, and any
        // elided copies are.
        self.stats.mir_ops += extra;
        self.dset(base, *i_dst, Value::I64(iv));
        let c = if *c_int {
            cmp_i64(
                *c_op,
                self.deval_i64(base, *c_lhs),
                self.deval_i64(base, *c_rhs),
            )
        } else {
            let ca = self.deval(base, *c_lhs);
            let cb = self.deval(base, *c_rhs);
            eval_cmp(*c_op, &ca, &cb)
        };
        if *write_cmp {
            self.dset(base, *c_dst, Value::Bool(c));
        }
        // Prefix = inc + cmp with elided copies interleaved at their
        // slots; branch last.
        let mut prefix = [OpClass::IntAlu; MAX_FUSE_WIDTH];
        for (k, slot) in prefix.iter_mut().enumerate().take(w - 1).skip(1) {
            if elided & (1 << k) != 0 {
                *slot = OpClass::Move;
            }
        }
        let last_pc = unsafe { *df.pcs.get_unchecked(ip + w - 1) };
        self.regalloc_dyn.copies_elided += n_elided;
        self.fused_branch_retire(
            &prefix[..w - 1],
            last_pc,
            c,
            extra,
            FusePattern::IncCmpBranch,
        );
        cur.ip = if c { *t } else { *f };
        Ok(())
    }

    /// `bin + copy` fused fast path; see [`Vm::fused_cmp_branch`].
    pub(crate) fn fused_bin_copy(
        &mut self,
        df: &DecodedFunc,
        site: &FusedSite,
        ip: usize,
        base: usize,
        cur: &mut DFrame,
    ) -> Result<(), VmError> {
        let Fused::BinCopy {
            op,
            class,
            flops,
            int,
            b_dst,
            lhs,
            rhs,
            write_bin,
            dst,
        } = &site.op
        else {
            unreachable!("dispatched on pattern kind")
        };
        let w = site.width as usize;
        let elided = site.elided;
        let extra = w as u64 - 1;
        let n_elided = elided.count_ones() as u64;
        let pc = unsafe { *df.pcs.get_unchecked(ip) };
        let pc_at = |k: usize| unsafe { *df.pcs.get_unchecked(ip + k) };
        // Div/Rem never fuses, so neither lane traps.
        let v = if *int {
            Value::I64(eval_bin_i64(
                *op,
                self.deval_i64(base, *lhs),
                self.deval_i64(base, *rhs),
                pc,
            )?)
        } else {
            let a = self.deval(base, *lhs);
            let b = self.deval(base, *rhs);
            eval_bin(*op, &a, &b, pc)?
        };
        if self.stats.machine_ops + extra >= self.fuel || !self.core.fused_ready_nomem() {
            self.stats.mir_ops += 1;
            self.dset(base, *b_dst, v);
            self.retire_d(MachineOp::simple(*class, pc).with_flops(*flops));
            return Ok(());
        }
        self.stats.mir_ops += w as u64;
        if *write_bin {
            self.dset(base, *b_dst, v.clone());
        }
        self.dset(base, *dst, v);
        // Every trailing slot — the real copy (if it survived
        // coalescing) and any elided copies — retires as a `Move` at its
        // own pc.
        let last_pc = pc_at(w - 1);
        if *flops == 0 {
            let mut classes = [OpClass::Move; MAX_FUSE_WIDTH];
            classes[0] = *class;
            self.fused_simple_retire(&classes[..w], last_pc, w as u64, FusePattern::BinCopy);
        } else {
            // FP assignment: the FLOP event needs the full batch path.
            let mut ops_arr = [MachineOp::simple(OpClass::Move, 0); MAX_FUSE_WIDTH];
            ops_arr[0] = MachineOp::simple(*class, pc).with_flops(*flops);
            for (k, op_slot) in ops_arr.iter_mut().enumerate().take(w).skip(1) {
                *op_slot = MachineOp::simple(OpClass::Move, pc_at(k));
            }
            self.finish_fused(&ops_arr[..w], w as u64, FusePattern::BinCopy);
        }
        self.regalloc_dyn.copies_elided += n_elided;
        self.regalloc_dyn.copies_moved += extra - n_elided;
        cur.ip = ip as u32 + w as u32;
        Ok(())
    }

    /// `ptradd + load` fused fast path; see [`Vm::fused_cmp_branch`].
    pub(crate) fn fused_addr_load(
        &mut self,
        df: &DecodedFunc,
        site: &FusedSite,
        ip: usize,
        base: usize,
        cur: &mut DFrame,
    ) -> Result<(), VmError> {
        let Fused::AddrLoad {
            a_dst,
            base: b_op,
            offset,
            write_addr,
            dst,
            mem,
        } = &site.op
        else {
            unreachable!("dispatched on pattern kind")
        };
        let w = site.width as usize;
        let elided = site.elided;
        let extra = w as u64 - 1;
        let n_elided = elided.count_ones() as u64;
        let pc = unsafe { *df.pcs.get_unchecked(ip) };
        let pc_at = |k: usize| unsafe { *df.pcs.get_unchecked(ip + k) };
        let bv = self.deval_i64(base, *b_op);
        let ov = self.deval_i64(base, *offset);
        let addr = bv.wrapping_add(ov);
        let bytes = mem.bytes();
        if self.stats.machine_ops + extra >= self.fuel
            || !self.mem.in_bounds(addr as u64, bytes)
            || !self.core.fused_ready()
        {
            // Bail: the original `PtrAdd`; a would-trap load faults in
            // the retained unfused op.
            self.stats.mir_ops += 1;
            self.dset(base, *a_dst, Value::I64(addr));
            self.retire_d(MachineOp::simple(OpClass::AddrCalc, pc));
            return Ok(());
        }
        self.stats.mir_ops += w as u64;
        if *write_addr {
            self.dset(base, *a_dst, Value::I64(addr));
        }
        let v = self.load_scalar(addr as u64, *mem)?;
        self.dset(base, *dst, v);
        self.regalloc_dyn.copies_elided += n_elided;
        {
            let mut ops_arr = [MachineOp::simple(OpClass::Move, 0); MAX_FUSE_WIDTH];
            ops_arr[0] = MachineOp::simple(OpClass::AddrCalc, pc);
            for (k, slot) in ops_arr.iter_mut().enumerate().take(w).skip(1) {
                *slot = if elided & (1 << k) != 0 {
                    MachineOp::simple(OpClass::Move, pc_at(k))
                } else {
                    MachineOp::simple(OpClass::Load, pc_at(k)).with_mem(MemRef::scalar(
                        addr as u64,
                        bytes as u32,
                        false,
                    ))
                };
            }
            self.finish_fused(&ops_arr[..w], w as u64, FusePattern::AddrLoad);
        }
        cur.ip = ip as u32 + w as u32;
        Ok(())
    }

    /// `ptradd + store` fused fast path; see [`Vm::fused_addr_load`].
    pub(crate) fn fused_addr_store(
        &mut self,
        df: &DecodedFunc,
        site: &FusedSite,
        ip: usize,
        base: usize,
        cur: &mut DFrame,
    ) -> Result<(), VmError> {
        let Fused::AddrStore {
            a_dst,
            base: b_op,
            offset,
            write_addr,
            val,
            mem,
        } = &site.op
        else {
            unreachable!("dispatched on pattern kind")
        };
        let w = site.width as usize;
        let elided = site.elided;
        let extra = w as u64 - 1;
        let n_elided = elided.count_ones() as u64;
        let pc = unsafe { *df.pcs.get_unchecked(ip) };
        let pc_at = |k: usize| unsafe { *df.pcs.get_unchecked(ip + k) };
        let bv = self.deval_i64(base, *b_op);
        let ov = self.deval_i64(base, *offset);
        let addr = bv.wrapping_add(ov);
        let bytes = mem.bytes();
        if self.stats.machine_ops + extra >= self.fuel
            || !self.mem.in_bounds(addr as u64, bytes)
            || !self.core.fused_ready()
        {
            self.stats.mir_ops += 1;
            self.dset(base, *a_dst, Value::I64(addr));
            self.retire_d(MachineOp::simple(OpClass::AddrCalc, pc));
            return Ok(());
        }
        self.stats.mir_ops += w as u64;
        if *write_addr {
            self.dset(base, *a_dst, Value::I64(addr));
        }
        let v = self.subst(base, *val, *a_dst, addr);
        self.store_scalar(addr as u64, *mem, &v)?;
        self.regalloc_dyn.copies_elided += n_elided;
        {
            let mut ops_arr = [MachineOp::simple(OpClass::Move, 0); MAX_FUSE_WIDTH];
            ops_arr[0] = MachineOp::simple(OpClass::AddrCalc, pc);
            for (k, slot) in ops_arr.iter_mut().enumerate().take(w).skip(1) {
                *slot = if elided & (1 << k) != 0 {
                    MachineOp::simple(OpClass::Move, pc_at(k))
                } else {
                    MachineOp::simple(OpClass::Store, pc_at(k)).with_mem(MemRef::scalar(
                        addr as u64,
                        bytes as u32,
                        true,
                    ))
                };
            }
            self.finish_fused(&ops_arr[..w], w as u64, FusePattern::AddrStore);
        }
        cur.ip = ip as u32 + w as u32;
        Ok(())
    }

    /// `load + bin` fused fast path; see [`Vm::fused_addr_load`].
    pub(crate) fn fused_load_op(
        &mut self,
        df: &DecodedFunc,
        site: &FusedSite,
        ip: usize,
        base: usize,
        cur: &mut DFrame,
    ) -> Result<(), VmError> {
        let Fused::LoadOp {
            l_dst,
            addr,
            mem,
            int,
            write_load,
            op,
            class,
            flops,
            b_dst,
            lhs,
            rhs,
        } = &site.op
        else {
            unreachable!("dispatched on pattern kind")
        };
        let w = site.width as usize;
        let elided = site.elided;
        let extra = w as u64 - 1;
        let n_elided = elided.count_ones() as u64;
        let pc = unsafe { *df.pcs.get_unchecked(ip) };
        let pc_at = |k: usize| unsafe { *df.pcs.get_unchecked(ip + k) };
        let av = self.deval_i64(base, *addr) as u64;
        let bytes = mem.bytes();
        if self.stats.machine_ops + extra >= self.fuel
            || !self.mem.in_bounds(av, bytes)
            || !self.core.fused_ready()
        {
            // Bail: the original scalar `Load` (including its trap, when
            // out of bounds); the loop resumes at the next retained slot.
            self.stats.mir_ops += 1;
            let v = self.load_scalar(av, *mem)?;
            self.dset(base, *l_dst, v);
            self.retire_d(
                MachineOp::simple(OpClass::Load, pc).with_mem(MemRef::scalar(
                    av,
                    bytes as u32,
                    false,
                )),
            );
            return Ok(());
        }
        self.stats.mir_ops += w as u64;
        // The bin constituent sits at the first non-elided slot after
        // the load.
        let bin_off = (1..w)
            .find(|&k| elided & (1 << k) == 0)
            .expect("LoadOp site keeps its bin constituent");
        let pc_bin = pc_at(bin_off);
        if *int {
            let x = self.load_scalar_i64(av, *mem)?;
            if *write_load {
                self.dset(base, *l_dst, Value::I64(x));
            }
            let a = self.subst_i64(base, *lhs, *l_dst, x);
            let b = self.subst_i64(base, *rhs, *l_dst, x);
            let r = eval_bin_i64(*op, a, b, pc_bin)?;
            self.dset(base, *b_dst, Value::I64(r));
        } else {
            let v = self.load_scalar(av, *mem)?;
            if *write_load {
                self.dset(base, *l_dst, v.clone());
            }
            let a = self.subst_val(base, *lhs, *l_dst, &v);
            let b = self.subst_val(base, *rhs, *l_dst, &v);
            let r = eval_bin(*op, &a, &b, pc_bin)?;
            self.dset(base, *b_dst, r);
        }
        self.regalloc_dyn.copies_elided += n_elided;
        {
            let mut ops_arr = [MachineOp::simple(OpClass::Move, 0); MAX_FUSE_WIDTH];
            ops_arr[0] = MachineOp::simple(OpClass::Load, pc).with_mem(MemRef::scalar(
                av,
                bytes as u32,
                false,
            ));
            for (k, slot) in ops_arr.iter_mut().enumerate().take(w).skip(1) {
                *slot = if elided & (1 << k) != 0 {
                    MachineOp::simple(OpClass::Move, pc_at(k))
                } else {
                    MachineOp::simple(*class, pc_at(k)).with_flops(*flops)
                };
            }
            self.finish_fused(&ops_arr[..w], w as u64, FusePattern::LoadOp);
        }
        cur.ip = ip as u32 + w as u32;
        Ok(())
    }

    /// `ptradd + load + bin` fused fast path; see
    /// [`Vm::fused_addr_load`].
    pub(crate) fn fused_addr_load_op(
        &mut self,
        df: &DecodedFunc,
        site: &FusedSite,
        ip: usize,
        base: usize,
        cur: &mut DFrame,
    ) -> Result<(), VmError> {
        let Fused::AddrLoadOp {
            a_dst,
            base: b_op,
            offset,
            write_addr,
            l_dst,
            mem,
            int,
            write_load,
            op,
            class,
            flops,
            b_dst,
            lhs,
            rhs,
        } = &site.op
        else {
            unreachable!("dispatched on pattern kind")
        };
        let w = site.width as usize;
        let elided = site.elided;
        let extra = w as u64 - 1;
        let n_elided = elided.count_ones() as u64;
        let pc = unsafe { *df.pcs.get_unchecked(ip) };
        let pc_at = |k: usize| unsafe { *df.pcs.get_unchecked(ip + k) };
        let bv = self.deval_i64(base, *b_op);
        let ov = self.deval_i64(base, *offset);
        let addr = bv.wrapping_add(ov);
        let bytes = mem.bytes();
        if self.stats.machine_ops + extra >= self.fuel
            || !self.mem.in_bounds(addr as u64, bytes)
            || !self.core.fused_ready()
        {
            self.stats.mir_ops += 1;
            self.dset(base, *a_dst, Value::I64(addr));
            self.retire_d(MachineOp::simple(OpClass::AddrCalc, pc));
            return Ok(());
        }
        self.stats.mir_ops += w as u64;
        if *write_addr {
            self.dset(base, *a_dst, Value::I64(addr));
        }
        // The load and bin constituents sit at the first and second
        // non-elided slots.
        let load_off = (1..w)
            .find(|&k| elided & (1 << k) == 0)
            .expect("AddrLoadOp site keeps its load constituent");
        let bin_off = (load_off + 1..w)
            .find(|&k| elided & (1 << k) == 0)
            .expect("AddrLoadOp site keeps its bin constituent");
        let pc_bin = pc_at(bin_off);
        // Resolve bin operands: the loaded value shadows the address
        // register when both are the same register (the load's write is
        // the later one in the unfused order).
        if *int {
            let x = self.load_scalar_i64(addr as u64, *mem)?;
            if *write_load {
                self.dset(base, *l_dst, Value::I64(x));
            }
            let a = self.subst2_i64(base, *lhs, *l_dst, x, *a_dst, addr);
            let b = self.subst2_i64(base, *rhs, *l_dst, x, *a_dst, addr);
            let r = eval_bin_i64(*op, a, b, pc_bin)?;
            self.dset(base, *b_dst, Value::I64(r));
        } else {
            let v = self.load_scalar(addr as u64, *mem)?;
            if *write_load {
                self.dset(base, *l_dst, v.clone());
            }
            let a = self.subst2(base, *lhs, *l_dst, &v, *a_dst, addr);
            let b = self.subst2(base, *rhs, *l_dst, &v, *a_dst, addr);
            let r = eval_bin(*op, &a, &b, pc_bin)?;
            self.dset(base, *b_dst, r);
        }
        self.regalloc_dyn.copies_elided += n_elided;
        {
            let mut ops_arr = [MachineOp::simple(OpClass::Move, 0); MAX_FUSE_WIDTH];
            ops_arr[0] = MachineOp::simple(OpClass::AddrCalc, pc);
            for (k, slot) in ops_arr.iter_mut().enumerate().take(w).skip(1) {
                *slot = if elided & (1 << k) != 0 {
                    MachineOp::simple(OpClass::Move, pc_at(k))
                } else if k == load_off {
                    MachineOp::simple(OpClass::Load, pc_at(k)).with_mem(MemRef::scalar(
                        addr as u64,
                        bytes as u32,
                        false,
                    ))
                } else {
                    MachineOp::simple(*class, pc_at(k)).with_flops(*flops)
                };
            }
            self.finish_fused(&ops_arr[..w], w as u64, FusePattern::AddrLoadOp);
        }
        cur.ip = ip as u32 + w as u32;
        Ok(())
    }

    /// Retire one fused superinstruction (its constituents as a single
    /// batched tick) and account the dynamic coverage. Callers checked
    /// [`mperf_sim::Core::fused_ready`], so no overflow can fire here;
    /// the release-mode fallback delivers at the batch's last pc rather
    /// than losing the sample.
    #[inline]
    fn finish_fused(&mut self, ops: &[MachineOp], mir_ops: u64, pat: FusePattern) {
        let info = self.core.retire_fused(ops);
        let last_pc = ops[ops.len() - 1].pc;
        self.account_fused(info, ops.len() as u64, mir_ops, pat, last_pc);
    }

    /// Book one fused fast-path execution: machine-op/MIR-op accounting
    /// plus the release-mode overflow fallback (unreachable when the
    /// `fused_ready*` guard held — delivered at the batch's last pc
    /// rather than losing the sample).
    #[inline]
    fn account_fused(
        &mut self,
        info: mperf_sim::RetireInfo,
        machine_ops: u64,
        mir_ops: u64,
        pat: FusePattern,
        last_pc: u64,
    ) {
        self.stats.machine_ops += machine_ops;
        self.fused_dyn.executed[pat.index()] += 1;
        self.fused_dyn.mir_ops_fused += mir_ops;
        if info.overflow != 0 {
            self.deliver_overflow(last_pc, info.overflow, Engine::Decoded);
        }
    }

    /// Operand resolution with one substituted register: reads of `r`
    /// yield the address value `addr` instead of the (possibly skipped)
    /// register-stack slot.
    #[inline]
    pub(crate) fn subst(&self, base: usize, o: Operand, r: u32, addr: i64) -> Value {
        match o {
            Operand::Reg(reg) if reg.index() as u32 == r => Value::I64(addr),
            _ => self.deval(base, o),
        }
    }

    /// Operand resolution substituting reads of `r` with value `v`.
    #[inline]
    pub(crate) fn subst_val(&self, base: usize, o: Operand, r: u32, v: &Value) -> Value {
        match o {
            Operand::Reg(reg) if reg.index() as u32 == r => v.clone(),
            _ => self.deval(base, o),
        }
    }

    /// Operand resolution with two substitutions, `r1` (loaded value)
    /// shadowing `r2` (address register).
    #[inline]
    pub(crate) fn subst2(
        &self,
        base: usize,
        o: Operand,
        r1: u32,
        v: &Value,
        r2: u32,
        addr: i64,
    ) -> Value {
        match o {
            Operand::Reg(reg) if reg.index() as u32 == r1 => v.clone(),
            Operand::Reg(reg) if reg.index() as u32 == r2 => Value::I64(addr),
            _ => self.deval(base, o),
        }
    }

    /// Raw-`i64` lane of [`Vm::subst_val`].
    #[inline]
    pub(crate) fn subst_i64(&self, base: usize, o: Operand, r: u32, x: i64) -> i64 {
        match o {
            Operand::Reg(reg) if reg.index() as u32 == r => x,
            _ => self.deval_i64(base, o),
        }
    }

    /// Raw-`i64` lane of [`Vm::subst2`].
    #[inline]
    pub(crate) fn subst2_i64(
        &self,
        base: usize,
        o: Operand,
        r1: u32,
        x: i64,
        r2: u32,
        addr: i64,
    ) -> i64 {
        match o {
            Operand::Reg(reg) if reg.index() as u32 == r1 => x,
            Operand::Reg(reg) if reg.index() as u32 == r2 => addr,
            _ => self.deval_i64(base, o),
        }
    }

    /// Read an `i64` operand without cloning the `Value` enum — the
    /// type-specialized lane behind [`DecodedOp::BinI`] and friends.
    ///
    /// # Panics
    /// On non-integer values (type confusion; the verifier excludes it),
    /// matching [`Value::as_i64`]'s contract.
    #[inline]
    pub(crate) fn deval_i64(&self, base: usize, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => {
                debug_assert!(base + r.index() < self.dregs.len());
                // SAFETY: see `deval`.
                match unsafe { self.dregs.get_unchecked(base + r.index()) } {
                    Value::I64(v) => *v,
                    other => panic!("expected i64, found {other:?}"),
                }
            }
            Operand::I64(v) => v,
            other => panic!("expected i64, found {other:?}"),
        }
    }

    /// Read a `bool` operand without cloning; see [`Vm::deval_i64`].
    #[inline]
    pub(crate) fn deval_bool(&self, base: usize, op: Operand) -> bool {
        match op {
            Operand::Reg(r) => {
                debug_assert!(base + r.index() < self.dregs.len());
                // SAFETY: see `deval`.
                match unsafe { self.dregs.get_unchecked(base + r.index()) } {
                    Value::Bool(v) => *v,
                    other => panic!("expected bool, found {other:?}"),
                }
            }
            Operand::Bool(v) => v,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    #[inline]
    pub(crate) fn deval(&self, base: usize, op: Operand) -> Value {
        match op {
            Operand::Reg(r) => {
                debug_assert!(base + r.index() < self.dregs.len());
                // SAFETY: operand registers are < num_regs (validated at
                // decode time) and the active frame's register window
                // `base..base + num_regs` is inside `dregs` by the
                // call-path resize invariant.
                unsafe { self.dregs.get_unchecked(base + r.index()).clone() }
            }
            Operand::I64(v) => Value::I64(v),
            Operand::F32(v) => Value::F32(v),
            Operand::F64(v) => Value::F64(v),
            Operand::Bool(v) => Value::Bool(v),
        }
    }

    #[inline]
    pub(crate) fn dset(&mut self, base: usize, dst: u32, v: Value) {
        debug_assert!(base + (dst as usize) < self.dregs.len());
        // SAFETY: destination registers are < num_regs (validated at
        // decode time); window invariant as in `deval`.
        unsafe {
            *self.dregs.get_unchecked_mut(base + dst as usize) = v;
        }
    }

    /// Threaded-engine operand read through a pre-bound slot: either a
    /// register-stack index or (high bit set) an index into the
    /// function's constant pool — no `Operand` enum unpacking on the
    /// template fast path.
    #[inline]
    pub(crate) fn tval(&self, base: usize, slot: u32, consts: &[Value]) -> Value {
        if slot & threaded::SLOT_CONST != 0 {
            consts[(slot & !threaded::SLOT_CONST) as usize].clone()
        } else {
            debug_assert!((base + slot as usize) < self.dregs.len());
            // SAFETY: register slots are < num_regs (validated at
            // template-compile time); window invariant as in `deval`.
            unsafe { self.dregs.get_unchecked(base + slot as usize).clone() }
        }
    }

    /// Raw-`i64` lane of [`Vm::tval`] (pool of raw `i64` immediates).
    #[inline]
    pub(crate) fn tval_i64(&self, base: usize, slot: u32, consts: &[i64]) -> i64 {
        if slot & threaded::SLOT_CONST != 0 {
            consts[(slot & !threaded::SLOT_CONST) as usize]
        } else {
            debug_assert!((base + slot as usize) < self.dregs.len());
            // SAFETY: see `tval`.
            match unsafe { self.dregs.get_unchecked(base + slot as usize) } {
                Value::I64(v) => *v,
                other => panic!("expected i64, found {other:?}"),
            }
        }
    }

    /// `bool` lane of [`Vm::tval`].
    #[inline]
    pub(crate) fn tval_bool(&self, base: usize, slot: u32, consts: &[Value]) -> bool {
        if slot & threaded::SLOT_CONST != 0 {
            match &consts[(slot & !threaded::SLOT_CONST) as usize] {
                Value::Bool(b) => *b,
                other => panic!("expected bool, found {other:?}"),
            }
        } else {
            debug_assert!((base + slot as usize) < self.dregs.len());
            // SAFETY: see `tval`.
            match unsafe { self.dregs.get_unchecked(base + slot as usize) } {
                Value::Bool(v) => *v,
                other => panic!("expected bool, found {other:?}"),
            }
        }
    }

    /// Threaded-engine main loop: `loop { (templates[ip].fn)(...) }` —
    /// an indirect call through the function's pre-bound template array
    /// (see [`crate::threaded`]), with no `match` on op kind and no enum
    /// payload unpacking on the hot path. On top of the template stream,
    /// straight-line superblocks retire as one PMU batch: when the next
    /// ip starts a block and the block-entry guard holds (fuel for the
    /// whole block, [`mperf_sim::Core::block_ready`] headroom), every
    /// covered template applies its timing eagerly but defers its PMU
    /// tick into the VM's [`BlockAcc`], committed once by
    /// [`mperf_sim::Core::retire_block`]. A trap mid-block commits the
    /// partial accumulator first (counters are additive and the partial
    /// bound is below the guarded full bound, so this stays bit-exact);
    /// when the guard fails, the block's templates run one by one
    /// through their tick-per-op entry points — identical to the decoded
    /// engine op for op.
    fn run_threaded(
        &mut self,
        dec: &DecodedModule,
        base_depth: usize,
    ) -> Result<Vec<Value>, VmError> {
        let mut ctx = TCtx {
            cur: *self.dstack.last().expect("run_threaded with a frame"),
            base_depth,
        };
        loop {
            if self.stats.machine_ops >= self.fuel {
                if let Some(p) = dec.funcs[ctx.cur.func as usize]
                    .pcs
                    .get(ctx.cur.ip as usize)
                {
                    self.note_trap(*p);
                }
                return Err(VmError::OutOfFuel {
                    executed: self.stats.machine_ops,
                });
            }
            debug_assert!((ctx.cur.func as usize) < dec.threaded.len());
            // SAFETY: `cur.func` comes from a validated `CallFunc` callee
            // or the entry `FuncId`; `ip` stays inside the template
            // array (parallel to `ops`, same validated jump targets).
            let tf = unsafe { dec.threaded.get_unchecked(ctx.cur.func as usize) };
            let ip = ctx.cur.ip as usize;
            debug_assert!(ip < tf.templates.len());
            let bi = unsafe { *tf.block_at.get_unchecked(ip) };
            if bi != u32::MAX {
                let b = *unsafe { tf.blocks.get_unchecked(bi as usize) };
                if self.stats.machine_ops + b.machine_ops as u64 <= self.fuel
                    && self
                        .core
                        .block_ready(b.machine_ops, b.mem_refs, b.branches, b.flops)
                {
                    // Superblock fast path: one PMU tick for the whole
                    // straight-line run.
                    self.core.block_begin_in(&mut self.block_acc);
                    let mut err = None;
                    let mut last_ip;
                    loop {
                        let ipb = ctx.cur.ip as usize;
                        last_ip = ipb;
                        debug_assert!(ipb < tf.templates.len());
                        let t = unsafe { tf.templates.get_unchecked(ipb) };
                        ctx.cur.ip += 1;
                        if let Err(e) = (t.block)(self, dec, tf, &t.args, &mut ctx) {
                            err = Some(e);
                            break;
                        }
                        if ipb as u32 >= b.last {
                            break;
                        }
                    }
                    let info = self.core.retire_block(&mut self.block_acc);
                    if info.overflow != 0 {
                        // Unreachable under `block_ready`; the release-
                        // mode fallback delivers at the last executed pc
                        // rather than losing the sample.
                        let pc = dec.funcs[ctx.cur.func as usize].pcs[last_ip];
                        self.deliver_overflow(pc, info.overflow, Engine::Threaded);
                    }
                    if let Some(e) = err {
                        self.note_trap(dec.funcs[ctx.cur.func as usize].pcs[last_ip]);
                        return Err(e);
                    }
                    continue;
                }
            }
            let t = unsafe { tf.templates.get_unchecked(ip) };
            ctx.cur.ip += 1;
            match (t.single)(self, dec, tf, &t.args, &mut ctx) {
                Ok(Step::Continue) => {}
                Ok(Step::Finished) => return Ok(std::mem::take(&mut self.ret_scratch)),
                Err(e) => {
                    self.note_trap(dec.funcs[ctx.cur.func as usize].pcs[ip]);
                    return Err(e);
                }
            }
        }
    }

    fn call_host(&mut self, name: &str, args: &[Value], pc: u64) -> Result<Vec<Value>, VmError> {
        // Notification functions are a few instructions of real work.
        for _ in 0..3 {
            self.retire(MachineOp::simple(OpClass::IntAlu, pc));
        }
        match name {
            "mperf.loop_begin" => {
                let id = args[0].as_i64() as u32;
                let now = self.core.cycles();
                self.roofline.loop_begin(id, now);
                Ok(vec![])
            }
            "mperf.loop_end" => {
                let id = args[0].as_i64() as u32;
                let now = self.core.cycles();
                self.roofline.loop_end(id, now);
                Ok(vec![])
            }
            "mperf.is_instrumented" => Ok(vec![Value::Bool(self.roofline.instrumented)]),
            _ => match self.host.get_mut(name) {
                Some(h) => h(args).map_err(VmError::HostFault),
                None => Err(VmError::UnknownHost(name.to_string())),
            },
        }
    }

    /// Scalar (`lanes == 1`) load — the shape fused superinstructions
    /// handle (their fast path pre-checks bounds, so this cannot fail
    /// there; the bail path uses the error like the unfused op).
    #[inline]
    pub(crate) fn load_scalar(&mut self, base: u64, mem: MemTy) -> Result<Value, VmError> {
        Ok(match mem {
            MemTy::I8 => Value::I64(self.mem.read::<1>(base)?[0] as i64),
            MemTy::I16 => Value::I64(u16::from_le_bytes(self.mem.read::<2>(base)?) as i64),
            MemTy::I32 => Value::I64(u32::from_le_bytes(self.mem.read::<4>(base)?) as i64),
            MemTy::I64 => Value::I64(self.mem.read_u64(base)? as i64),
            MemTy::F32 => Value::F32(self.mem.read_f32(base)?),
            MemTy::F64 => Value::F64(self.mem.read_f64(base)?),
        })
    }

    /// Raw-`i64` lane of [`Vm::load_scalar`] for integer memory types
    /// (zero-extension semantics identical to the `Value` lane).
    #[inline]
    pub(crate) fn load_scalar_i64(&mut self, base: u64, mem: MemTy) -> Result<i64, VmError> {
        Ok(match mem {
            MemTy::I8 => self.mem.read::<1>(base)?[0] as i64,
            MemTy::I16 => u16::from_le_bytes(self.mem.read::<2>(base)?) as i64,
            MemTy::I32 => u32::from_le_bytes(self.mem.read::<4>(base)?) as i64,
            MemTy::I64 => self.mem.read_u64(base)? as i64,
            other => unreachable!("integer chain loads {other}"),
        })
    }

    /// Scalar (`lanes == 1`) store; see [`Vm::load_scalar`].
    #[inline]
    pub(crate) fn store_scalar(&mut self, base: u64, mem: MemTy, v: &Value) -> Result<(), VmError> {
        match (mem, v) {
            (MemTy::I8, Value::I64(x)) => self.mem.write(base, &[(*x as u8)]),
            (MemTy::I16, Value::I64(x)) => self.mem.write(base, &(*x as u16).to_le_bytes()),
            (MemTy::I32, Value::I64(x)) => self.mem.write(base, &(*x as u32).to_le_bytes()),
            (MemTy::I64, Value::I64(x)) => self.mem.write_u64(base, *x as u64),
            (MemTy::F32, Value::F32(x)) => self.mem.write_f32(base, *x),
            (MemTy::F64, Value::F64(x)) => self.mem.write_f64(base, *x),
            (m, v) => unreachable!("verifier admits store {m} of {v:?}"),
        }
    }

    pub(crate) fn load_value(
        &mut self,
        base: u64,
        mem: MemTy,
        lanes: u8,
        stride: i64,
    ) -> Result<Value, VmError> {
        if lanes == 1 {
            return self.load_scalar(base, mem);
        }
        match mem {
            MemTy::F32 => {
                let mut v = LanesF32::zeroed(lanes as usize);
                for l in 0..lanes as i64 {
                    v.as_mut_slice()[l as usize] =
                        self.mem.read_f32(base.wrapping_add_signed(stride * l))?;
                }
                Ok(Value::VF32(v))
            }
            MemTy::F64 => {
                let mut v = LanesF64::zeroed(lanes as usize);
                for l in 0..lanes as i64 {
                    v.as_mut_slice()[l as usize] =
                        self.mem.read_f64(base.wrapping_add_signed(stride * l))?;
                }
                Ok(Value::VF64(v))
            }
            MemTy::I64 => {
                let mut v = LanesI64::zeroed(lanes as usize);
                for l in 0..lanes as i64 {
                    v.as_mut_slice()[l as usize] =
                        self.mem.read_u64(base.wrapping_add_signed(stride * l))? as i64;
                }
                Ok(Value::VI64(v))
            }
            narrow => unreachable!("vectorizer only emits f32/f64/i64 vectors, got {narrow}"),
        }
    }

    pub(crate) fn store_value(
        &mut self,
        base: u64,
        mem: MemTy,
        lanes: u8,
        stride: i64,
        v: &Value,
    ) -> Result<(), VmError> {
        if lanes == 1 {
            return self.store_scalar(base, mem, v);
        }
        match (mem, v) {
            (MemTy::F32, Value::VF32(xs)) => {
                for (l, x) in xs.iter().enumerate() {
                    self.mem
                        .write_f32(base.wrapping_add_signed(stride * l as i64), *x)?;
                }
                Ok(())
            }
            (MemTy::F64, Value::VF64(xs)) => {
                for (l, x) in xs.iter().enumerate() {
                    self.mem
                        .write_f64(base.wrapping_add_signed(stride * l as i64), *x)?;
                }
                Ok(())
            }
            (MemTy::I64, Value::VI64(xs)) => {
                for (l, x) in xs.iter().enumerate() {
                    self.mem
                        .write_u64(base.wrapping_add_signed(stride * l as i64), *x as u64)?;
                }
                Ok(())
            }
            (m, v) => unreachable!("verifier admits vstore {m} of {v:?}"),
        }
    }
}

/// Scalar-integer binary evaluation on raw `i64`s — bit-identical to
/// [`eval_bin`]'s `I64` arms (including the division-by-zero trap).
#[inline]
pub(crate) fn eval_bin_i64(op: BinOp, x: i64, y: i64, pc: u64) -> Result<i64, VmError> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 63),
        BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        other => unreachable!("verifier admits integer {other:?}"),
    })
}

/// Scalar-integer compare — bit-identical to [`eval_cmp`]'s `I64` arm.
#[inline]
pub(crate) fn cmp_i64(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

pub(crate) fn eval_bin(op: BinOp, a: &Value, b: &Value, pc: u64) -> Result<Value, VmError> {
    use Value::*;
    Ok(match (op, a, b) {
        (BinOp::Add, I64(x), I64(y)) => I64(x.wrapping_add(*y)),
        (BinOp::Sub, I64(x), I64(y)) => I64(x.wrapping_sub(*y)),
        (BinOp::Mul, I64(x), I64(y)) => I64(x.wrapping_mul(*y)),
        (BinOp::Div, I64(x), I64(y)) => {
            if *y == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            I64(x.wrapping_div(*y))
        }
        (BinOp::Rem, I64(x), I64(y)) => {
            if *y == 0 {
                return Err(VmError::DivisionByZero { pc });
            }
            I64(x.wrapping_rem(*y))
        }
        (BinOp::And, I64(x), I64(y)) => I64(x & y),
        (BinOp::Or, I64(x), I64(y)) => I64(x | y),
        (BinOp::Xor, I64(x), I64(y)) => I64(x ^ y),
        (BinOp::Shl, I64(x), I64(y)) => I64(x.wrapping_shl(*y as u32 & 63)),
        (BinOp::Shr, I64(x), I64(y)) => I64(x.wrapping_shr(*y as u32 & 63)),
        (BinOp::FAdd, F32(x), F32(y)) => F32(x + y),
        (BinOp::FSub, F32(x), F32(y)) => F32(x - y),
        (BinOp::FMul, F32(x), F32(y)) => F32(x * y),
        (BinOp::FDiv, F32(x), F32(y)) => F32(x / y),
        (BinOp::FAdd, F64(x), F64(y)) => F64(x + y),
        (BinOp::FSub, F64(x), F64(y)) => F64(x - y),
        (BinOp::FMul, F64(x), F64(y)) => F64(x * y),
        (BinOp::FDiv, F64(x), F64(y)) => F64(x / y),
        // Vector lanes.
        (o, VF32(x), VF32(y)) => VF32(
            x.iter()
                .zip(y)
                .map(|(a, b)| match o {
                    BinOp::FAdd => a + b,
                    BinOp::FSub => a - b,
                    BinOp::FMul => a * b,
                    BinOp::FDiv => a / b,
                    other => unreachable!("verifier admits vector {other:?} on f32"),
                })
                .collect(),
        ),
        (o, VF64(x), VF64(y)) => VF64(
            x.iter()
                .zip(y)
                .map(|(a, b)| match o {
                    BinOp::FAdd => a + b,
                    BinOp::FSub => a - b,
                    BinOp::FMul => a * b,
                    BinOp::FDiv => a / b,
                    other => unreachable!("verifier admits vector {other:?} on f64"),
                })
                .collect(),
        ),
        (o, VI64(x), VI64(y)) => VI64(
            x.iter()
                .zip(y)
                .map(|(a, b)| match o {
                    BinOp::Add => a.wrapping_add(*b),
                    BinOp::Sub => a.wrapping_sub(*b),
                    BinOp::Mul => a.wrapping_mul(*b),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    other => unreachable!("verifier admits vector {other:?} on i64"),
                })
                .collect(),
        ),
        (o, a, b) => unreachable!("verifier admits {o:?} of {a:?}, {b:?}"),
    })
}

pub(crate) fn eval_fma(a: Value, b: Value, c: Value) -> Value {
    match (a, b, c) {
        (Value::F32(x), Value::F32(y), Value::F32(z)) => Value::F32(x.mul_add(y, z)),
        (Value::F64(x), Value::F64(y), Value::F64(z)) => Value::F64(x.mul_add(y, z)),
        (Value::VF32(x), Value::VF32(y), Value::VF32(z)) => Value::VF32(
            x.iter()
                .zip(&y)
                .zip(&z)
                .map(|((a, b), c)| a.mul_add(*b, *c))
                .collect(),
        ),
        (Value::VF64(x), Value::VF64(y), Value::VF64(z)) => Value::VF64(
            x.iter()
                .zip(&y)
                .zip(&z)
                .map(|((a, b), c)| a.mul_add(*b, *c))
                .collect(),
        ),
        (a, b, c) => unreachable!("verifier admits fma of {a:?},{b:?},{c:?}"),
    }
}

pub(crate) fn eval_cmp(op: CmpOp, a: &Value, b: &Value) -> bool {
    use Value::*;
    match (a, b) {
        (I64(x), I64(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        (F32(x), F32(y)) => cmp_f(op, *x as f64, *y as f64),
        (F64(x), F64(y)) => cmp_f(op, *x, *y),
        (Bool(x), Bool(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            other => unreachable!("checker admits {other:?} on bool"),
        },
        (a, b) => unreachable!("verifier admits cmp of {a:?}, {b:?}"),
    }
}

fn cmp_f(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

pub(crate) fn eval_cast(kind: CastKind, v: &Value, dst_ty: Ty) -> Value {
    match (kind, v) {
        (CastKind::IntToFloat, Value::I64(x)) => {
            if dst_ty == Ty::F32 {
                Value::F32(*x as f32)
            } else {
                Value::F64(*x as f64)
            }
        }
        (CastKind::FloatToInt, Value::F32(x)) => Value::I64(*x as i64),
        (CastKind::FloatToInt, Value::F64(x)) => Value::I64(*x as i64),
        (CastKind::FloatCast, Value::F32(x)) => Value::F64(*x as f64),
        (CastKind::FloatCast, Value::F64(x)) => Value::F32(*x as f32),
        (CastKind::IntToPtr | CastKind::PtrToInt, Value::I64(x)) => Value::I64(*x),
        (k, v) => unreachable!("verifier admits cast {k:?} of {v:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mperf_ir::compile;
    use mperf_sim::PlatformSpec;

    fn run_on(src: &str, platform: PlatformSpec, entry: &str, args: &[Value]) -> Vec<Value> {
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(platform));
        vm.call(entry, args).unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            fn fib(n: i64) -> i64 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
        "#;
        let out = run_on(src, PlatformSpec::x60(), "fib", &[Value::I64(12)]);
        assert_eq!(out, vec![Value::I64(144)]);
    }

    #[test]
    fn loops_and_memory() {
        let src = r#"
            fn sum_array(p: *i64, n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    s = s + p[i];
                }
                return s;
            }
        "#;
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let base = vm.mem.alloc(8 * 100, 8).unwrap();
        for i in 0..100u64 {
            vm.mem.write_u64(base + i * 8, i).unwrap();
        }
        let out = vm
            .call("sum_array", &[Value::I64(base as i64), Value::I64(100)])
            .unwrap();
        assert_eq!(out, vec![Value::I64(4950)]);
        assert!(vm.core.cycles() > 100);
        assert!(vm.core.instructions() > 400);
    }

    #[test]
    fn float_kernels_compute_correctly() {
        let src = r#"
            fn dot(a: *f32, b: *f32, n: i64) -> f32 {
                var s: f32 = 0.0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    s = s + a[i] * b[i];
                }
                return s;
            }
        "#;
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::i5_1135g7()));
        let a = vm.mem.alloc(4 * 8, 4).unwrap();
        let b = vm.mem.alloc(4 * 8, 4).unwrap();
        for i in 0..8 {
            vm.mem.write_f32(a + i * 4, (i + 1) as f32).unwrap();
            vm.mem.write_f32(b + i * 4, 2.0).unwrap();
        }
        let out = vm
            .call(
                "dot",
                &[Value::I64(a as i64), Value::I64(b as i64), Value::I64(8)],
            )
            .unwrap();
        assert_eq!(out, vec![Value::F32(72.0)]);
    }

    #[test]
    fn division_by_zero_traps() {
        let src = "fn f(a: i64, b: i64) -> i64 { return a / b; }";
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let err = vm.call("f", &[Value::I64(1), Value::I64(0)]).unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
    }

    #[test]
    fn null_deref_traps() {
        let src = "fn f(p: *i64) -> i64 { return *p; }";
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let err = vm.call("f", &[Value::I64(0)]).unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { .. }));
    }

    #[test]
    fn trap_info_reports_pc_and_function_on_every_engine() {
        let src = r#"
            fn deref(p: *i64) -> i64 { return *p; }
            fn outer(p: *i64) -> i64 { return deref(p); }
        "#;
        let module = compile("t", src).unwrap();
        for engine in [Engine::Threaded, Engine::Decoded, Engine::Reference] {
            let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
            vm.set_engine(engine);
            assert!(vm.trap_info().is_none());
            let err = vm.call("outer", &[Value::I64(0)]).unwrap_err();
            assert!(matches!(err, VmError::OutOfBounds { .. }));
            let trap = vm.trap_info().expect("trap site captured").clone();
            assert_eq!(trap.func, "deref", "{engine:?} names the faulting fn");
            assert_eq!(func_of_pc(trap.pc), module.func_id("deref").unwrap());
            let rendered = vm.describe_error(&err);
            assert!(rendered.contains("deref"), "{rendered}");
            assert!(rendered.contains("out of bounds"), "{rendered}");
            // A successful call clears the stale site.
            let base = vm.mem.alloc(8, 8).unwrap();
            vm.mem.write_u64(base, 7).unwrap();
            vm.call("outer", &[Value::I64(base as i64)]).unwrap();
            assert!(vm.trap_info().is_none());
        }
    }

    #[test]
    fn trap_info_on_division_uses_embedded_pc() {
        let src = "fn div(a: i64, b: i64) -> i64 { return a / b; }";
        let module = compile("t", src).unwrap();
        for engine in [Engine::Threaded, Engine::Decoded, Engine::Reference] {
            let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
            vm.set_engine(engine);
            let err = vm.call("div", &[Value::I64(1), Value::I64(0)]).unwrap_err();
            let pc = match err {
                VmError::DivisionByZero { pc } => pc,
                other => panic!("expected div-by-zero, got {other:?}"),
            };
            let trap = vm.trap_info().expect("trap site captured");
            assert_eq!(trap.pc, pc, "{engine:?} uses the error's own pc");
            assert_eq!(trap.func, "div");
        }
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let src = "fn spin() { while (true) { } }";
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        vm.set_fuel(10_000);
        let err = vm.call("spin", &[]).unwrap_err();
        assert!(matches!(err, VmError::OutOfFuel { .. }));
    }

    #[test]
    fn host_function_dispatch() {
        let src = r#"
            extern fn add_ten(v: i64) -> i64;
            fn f(x: i64) -> i64 { return add_ten(x) * 2; }
        "#;
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        vm.register_host(
            "add_ten",
            Box::new(|args| Ok(vec![Value::I64(args[0].as_i64() + 10)])),
        );
        let out = vm.call("f", &[Value::I64(5)]).unwrap();
        assert_eq!(out, vec![Value::I64(30)]);
    }

    #[test]
    fn unknown_host_errors() {
        let src = r#"
            extern fn mystery();
            fn f() { mystery(); }
        "#;
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let err = vm.call("f", &[]).unwrap_err();
        assert!(matches!(err, VmError::UnknownHost(_)));
    }

    #[test]
    fn recursion_depth_limit() {
        let src = "fn inf(n: i64) -> i64 { return inf(n + 1); }";
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let err = vm.call("inf", &[Value::I64(0)]).unwrap_err();
        assert!(matches!(err, VmError::StackOverflow { .. }));
    }

    #[test]
    fn narrow_memory_semantics() {
        let src = r#"
            fn f(p: *i8) -> i64 {
                p[0] = 300;        // truncates to 44
                return p[0];       // zero-extends back
            }
        "#;
        let module = compile("t", src).unwrap();
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let a = vm.mem.alloc(16, 8).unwrap();
        let out = vm.call("f", &[Value::I64(a as i64)]).unwrap();
        assert_eq!(out, vec![Value::I64(300 & 0xff)]);
    }

    /// Fusion coverage is reported (outside the observable contract) and
    /// the engine configurations agree on every observable.
    #[test]
    fn fusion_dynamics_report_coverage() {
        let src = r#"
            fn work(p: *i64, n: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) { s = s + p[i % 32]; }
                return s;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let run = |fuse: bool| {
            let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
            // Pin the decoded engine: it runs every fused site through
            // its fast path, so dynamic coverage reflects the full
            // stream. (The threaded engine executes in-block sites as
            // constituent templates, counting only out-of-block sites.)
            vm.set_engine(Engine::Decoded);
            vm.set_fusion(fuse);
            let p = vm.mem.alloc(8 * 32, 8).unwrap();
            for i in 0..32u64 {
                vm.mem.write_u64(p + i * 8, i).unwrap();
            }
            let out = vm
                .call("work", &[Value::I64(p as i64), Value::I64(500)])
                .unwrap();
            (out, vm.stats(), vm.core.cycles(), vm.fusion_dynamics())
        };
        let fused = run(true);
        let unfused = run(false);
        assert_eq!(fused.0, unfused.0, "return values");
        assert_eq!(fused.1, unfused.1, "ExecStats");
        assert_eq!(fused.2, unfused.2, "cycles");
        let dynv = fused.3;
        assert!(
            dynv.total_executed() > 400,
            "loop body runs fused: {dynv:?}"
        );
        let cov = dynv.coverage(fused.1.mir_ops);
        assert!(cov > 0.2 && cov <= 1.0, "sane dynamic coverage: {cov}");
        assert_eq!(unfused.3.total_executed(), 0, "no-fuse reports zero");
    }

    #[test]
    fn same_program_same_result_on_all_platforms() {
        let src = r#"
            fn work(n: i64) -> i64 {
                var acc: i64 = 0;
                for (var i: i64 = 1; i < n; i = i + 1) {
                    acc = acc + i * i % 7;
                }
                return acc;
            }
        "#;
        let mut results = Vec::new();
        let mut cycles = Vec::new();
        for spec in [
            PlatformSpec::x60(),
            PlatformSpec::c910(),
            PlatformSpec::u74(),
            PlatformSpec::i5_1135g7(),
        ] {
            let module = compile("t", src).unwrap();
            let mut vm = Vm::new(&module, Core::new(spec));
            let out = vm.call("work", &[Value::I64(500)]).unwrap();
            results.push(out[0].clone());
            cycles.push(vm.core.cycles());
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        // Timing must differ across microarchitectures.
        let i5 = cycles[3];
        let x60 = cycles[0];
        assert!(x60 > i5, "in-order slower than wide OoO: {cycles:?}");
    }

    #[test]
    fn ipc_gap_between_x60_and_i5() {
        // Interpreter-style integer code compiled with the standard
        // pipeline: the in-order X60 model lands well under 2 IPC, the
        // wide OoO i5 model several times higher (Table 2's shape; the
        // calibrated sqlite workload narrows these toward 0.86 vs 3.38).
        let src = r#"
            fn interp(p: *i64, n: i64) -> i64 {
                var acc: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    var op: i64 = p[i % 64] % 4;
                    if (op == 0) { acc = acc + i; }
                    else if (op == 1) { acc = acc - (i % 16); }
                    else if (op == 2) { acc = acc + p[(acc % 32 + 32) % 64]; }
                    else { acc = acc ^ (i << 1); }
                }
                return acc;
            }
        "#;
        let mut module = compile("t", src).unwrap();
        mperf_ir::transform::PassManager::standard().run(&mut module);
        let mut ipcs = Vec::new();
        for spec in [PlatformSpec::x60(), PlatformSpec::i5_1135g7()] {
            let mut vm = Vm::new(&module, Core::new(spec));
            let base = vm.mem.alloc(8 * 64, 8).unwrap();
            for i in 0..64u64 {
                vm.mem
                    .write_u64(base + i * 8, i.wrapping_mul(2_654_435_761))
                    .unwrap();
            }
            vm.call("interp", &[Value::I64(base as i64), Value::I64(20_000)])
                .unwrap();
            ipcs.push(vm.core.instructions() as f64 / vm.core.cycles() as f64);
        }
        let (x60, i5) = (ipcs[0], ipcs[1]);
        assert!(x60 < 1.8, "x60 ipc {x60}");
        assert!(i5 > 2.0, "i5 ipc {i5}");
        assert!(i5 / x60 > 2.0, "gap {}", i5 / x60);
    }
}
