//! MIR-instruction → machine-op class mapping.

use mperf_ir::{BinOp, CastKind, Inst, Ty, UnOp};
use mperf_sim::machine_op::OpClass;

/// The op class a scalar/vector binary operation executes as.
pub fn bin_class(op: BinOp, ty: Ty) -> OpClass {
    if ty.is_vector() {
        return OpClass::VecAlu;
    }
    match op {
        BinOp::Mul => OpClass::IntMul,
        BinOp::Div | BinOp::Rem => OpClass::IntDiv,
        BinOp::FAdd | BinOp::FSub => OpClass::FpAdd,
        BinOp::FMul => OpClass::FpMul,
        BinOp::FDiv => OpClass::FpDiv,
        _ => OpClass::IntAlu,
    }
}

/// FLOPs retired by a binary op (per the PMU's architectural view).
pub fn bin_flops(op: BinOp, ty: Ty) -> u32 {
    if op.is_float() {
        ty.lanes() as u32
    } else {
        0
    }
}

/// The op class a unary operation executes as.
pub fn un_class(op: UnOp, ty: Ty) -> OpClass {
    if matches!(op, UnOp::FNeg) && !ty.is_vector() {
        OpClass::FpAdd
    } else if ty.is_vector() {
        OpClass::VecAlu
    } else {
        OpClass::IntAlu
    }
}

/// FLOPs retired by a unary op (per-lane for vector FNeg).
pub fn un_flops(op: UnOp, ty: Ty) -> u32 {
    if matches!(op, UnOp::FNeg) {
        ty.lanes() as u32
    } else {
        0
    }
}

/// The op class a cast executes as. Pointer⇄integer casts are pure
/// register moves (no FP pipe involvement); everything else converts
/// between register classes and occupies the FP-convert port. Retiring
/// pointer casts as `FpCvt` skewed TMA port pressure on pointer-heavy
/// code.
pub fn cast_class(kind: CastKind) -> OpClass {
    match kind {
        CastKind::IntToPtr | CastKind::PtrToInt => OpClass::Move,
        CastKind::IntToFloat | CastKind::FloatToInt | CastKind::FloatCast => OpClass::FpCvt,
    }
}

/// The op class of a whole instruction (memory ops handled separately by
/// the interpreter since they need addresses).
pub fn inst_class(inst: &Inst) -> OpClass {
    match inst {
        Inst::Bin { op, ty, .. } => bin_class(*op, *ty),
        Inst::Cmp { .. } => OpClass::IntAlu,
        Inst::Un { op, ty, .. } => un_class(*op, *ty),
        Inst::Fma { ty, .. } => {
            if ty.is_vector() {
                OpClass::VecFma
            } else {
                OpClass::FpFma
            }
        }
        Inst::Load { lanes, .. } => {
            if *lanes > 1 {
                OpClass::VecLoad
            } else {
                OpClass::Load
            }
        }
        Inst::Store { lanes, .. } => {
            if *lanes > 1 {
                OpClass::VecStore
            } else {
                OpClass::Store
            }
        }
        Inst::PtrAdd { .. } => OpClass::AddrCalc,
        Inst::Select { .. } => OpClass::IntAlu,
        Inst::Cast { kind, .. } => cast_class(*kind),
        Inst::Copy { .. } => OpClass::Move,
        Inst::Splat { .. } | Inst::Reduce { .. } => OpClass::VecShuffle,
        Inst::Call { .. } => OpClass::CallRet,
        Inst::ProfCount(_) => OpClass::IntAlu, // expanded into a sequence
    }
}

/// FLOPs retired by one instruction.
pub fn inst_flops(inst: &Inst) -> u32 {
    match inst {
        Inst::Bin { op, ty, .. } => bin_flops(*op, *ty),
        Inst::Un {
            op: UnOp::FNeg, ty, ..
        } => ty.lanes() as u32,
        Inst::Fma { ty, .. } => 2 * ty.lanes() as u32,
        Inst::Reduce {
            op: mperf_ir::ReduceOp::FAdd,
            ..
        } => 0, // lane count unknown here; the interpreter supplies it
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mperf_ir::{Operand, Reg};

    #[test]
    fn scalar_bin_classes() {
        assert_eq!(bin_class(BinOp::Add, Ty::I64), OpClass::IntAlu);
        assert_eq!(bin_class(BinOp::Mul, Ty::I64), OpClass::IntMul);
        assert_eq!(bin_class(BinOp::Div, Ty::I64), OpClass::IntDiv);
        assert_eq!(bin_class(BinOp::FAdd, Ty::F32), OpClass::FpAdd);
        assert_eq!(bin_class(BinOp::FDiv, Ty::F64), OpClass::FpDiv);
    }

    #[test]
    fn vector_bins_are_vecalu() {
        assert_eq!(bin_class(BinOp::FAdd, Ty::VecF32(8)), OpClass::VecAlu);
        assert_eq!(bin_class(BinOp::Add, Ty::VecI64(4)), OpClass::VecAlu);
    }

    #[test]
    fn flop_counting() {
        assert_eq!(bin_flops(BinOp::FAdd, Ty::F32), 1);
        assert_eq!(bin_flops(BinOp::FAdd, Ty::VecF32(8)), 8);
        assert_eq!(bin_flops(BinOp::Add, Ty::I64), 0);
        let fma = Inst::Fma {
            ty: Ty::VecF32(8),
            dst: Reg(0),
            a: Operand::F32(0.0),
            b: Operand::F32(0.0),
            c: Operand::F32(0.0),
        };
        assert_eq!(inst_flops(&fma), 16);
    }

    #[test]
    fn pointer_casts_are_moves_not_fp_conversions() {
        assert_eq!(cast_class(CastKind::IntToPtr), OpClass::Move);
        assert_eq!(cast_class(CastKind::PtrToInt), OpClass::Move);
        assert_eq!(cast_class(CastKind::IntToFloat), OpClass::FpCvt);
        assert_eq!(cast_class(CastKind::FloatToInt), OpClass::FpCvt);
        assert_eq!(cast_class(CastKind::FloatCast), OpClass::FpCvt);
        let c = Inst::Cast {
            kind: CastKind::PtrToInt,
            dst: Reg(0),
            src: Operand::Reg(Reg(1)),
        };
        assert_eq!(inst_class(&c), OpClass::Move);
    }

    #[test]
    fn memory_classes() {
        let l = Inst::Load {
            dst: Reg(0),
            addr: Operand::I64(0),
            mem: mperf_ir::MemTy::F32,
            lanes: 8,
            stride: Operand::I64(4),
        };
        assert_eq!(inst_class(&l), OpClass::VecLoad);
        let s = Inst::Store {
            addr: Operand::I64(0),
            val: Operand::F32(0.0),
            mem: mperf_ir::MemTy::F32,
            lanes: 1,
            stride: Operand::I64(4),
        };
        assert_eq!(inst_class(&s), OpClass::Store);
    }
}
