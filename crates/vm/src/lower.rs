//! MIR-instruction → machine-op class mapping.

use mperf_ir::{BinOp, Inst, Ty, UnOp};
use mperf_sim::machine_op::OpClass;

/// The op class a scalar/vector binary operation executes as.
pub fn bin_class(op: BinOp, ty: Ty) -> OpClass {
    if ty.is_vector() {
        return OpClass::VecAlu;
    }
    match op {
        BinOp::Mul => OpClass::IntMul,
        BinOp::Div | BinOp::Rem => OpClass::IntDiv,
        BinOp::FAdd | BinOp::FSub => OpClass::FpAdd,
        BinOp::FMul => OpClass::FpMul,
        BinOp::FDiv => OpClass::FpDiv,
        _ => OpClass::IntAlu,
    }
}

/// FLOPs retired by a binary op (per the PMU's architectural view).
pub fn bin_flops(op: BinOp, ty: Ty) -> u32 {
    if op.is_float() {
        ty.lanes() as u32
    } else {
        0
    }
}

/// The op class of a whole instruction (memory ops handled separately by
/// the interpreter since they need addresses).
pub fn inst_class(inst: &Inst) -> OpClass {
    match inst {
        Inst::Bin { op, ty, .. } => bin_class(*op, *ty),
        Inst::Cmp { .. } => OpClass::IntAlu,
        Inst::Un { op, ty, .. } => match op {
            UnOp::FNeg if ty.is_vector() => OpClass::VecAlu,
            UnOp::FNeg => OpClass::FpAdd,
            _ => OpClass::IntAlu,
        },
        Inst::Fma { ty, .. } => {
            if ty.is_vector() {
                OpClass::VecFma
            } else {
                OpClass::FpFma
            }
        }
        Inst::Load { lanes, .. } => {
            if *lanes > 1 {
                OpClass::VecLoad
            } else {
                OpClass::Load
            }
        }
        Inst::Store { lanes, .. } => {
            if *lanes > 1 {
                OpClass::VecStore
            } else {
                OpClass::Store
            }
        }
        Inst::PtrAdd { .. } => OpClass::AddrCalc,
        Inst::Select { .. } => OpClass::IntAlu,
        Inst::Cast { .. } => OpClass::FpCvt,
        Inst::Copy { .. } => OpClass::Move,
        Inst::Splat { .. } | Inst::Reduce { .. } => OpClass::VecShuffle,
        Inst::Call { .. } => OpClass::CallRet,
        Inst::ProfCount(_) => OpClass::IntAlu, // expanded into a sequence
    }
}

/// FLOPs retired by one instruction.
pub fn inst_flops(inst: &Inst) -> u32 {
    match inst {
        Inst::Bin { op, ty, .. } => bin_flops(*op, *ty),
        Inst::Un { op: UnOp::FNeg, ty, .. } => ty.lanes() as u32,
        Inst::Fma { ty, .. } => 2 * ty.lanes() as u32,
        Inst::Reduce {
            op: mperf_ir::ReduceOp::FAdd,
            ..
        } => 0, // lane count unknown here; the interpreter supplies it
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mperf_ir::{Operand, Reg};

    #[test]
    fn scalar_bin_classes() {
        assert_eq!(bin_class(BinOp::Add, Ty::I64), OpClass::IntAlu);
        assert_eq!(bin_class(BinOp::Mul, Ty::I64), OpClass::IntMul);
        assert_eq!(bin_class(BinOp::Div, Ty::I64), OpClass::IntDiv);
        assert_eq!(bin_class(BinOp::FAdd, Ty::F32), OpClass::FpAdd);
        assert_eq!(bin_class(BinOp::FDiv, Ty::F64), OpClass::FpDiv);
    }

    #[test]
    fn vector_bins_are_vecalu() {
        assert_eq!(bin_class(BinOp::FAdd, Ty::VecF32(8)), OpClass::VecAlu);
        assert_eq!(bin_class(BinOp::Add, Ty::VecI64(4)), OpClass::VecAlu);
    }

    #[test]
    fn flop_counting() {
        assert_eq!(bin_flops(BinOp::FAdd, Ty::F32), 1);
        assert_eq!(bin_flops(BinOp::FAdd, Ty::VecF32(8)), 8);
        assert_eq!(bin_flops(BinOp::Add, Ty::I64), 0);
        let fma = Inst::Fma {
            ty: Ty::VecF32(8),
            dst: Reg(0),
            a: Operand::F32(0.0),
            b: Operand::F32(0.0),
            c: Operand::F32(0.0),
        };
        assert_eq!(inst_flops(&fma), 16);
    }

    #[test]
    fn memory_classes() {
        let l = Inst::Load {
            dst: Reg(0),
            addr: Operand::I64(0),
            mem: mperf_ir::MemTy::F32,
            lanes: 8,
            stride: Operand::I64(4),
        };
        assert_eq!(inst_class(&l), OpClass::VecLoad);
        let s = Inst::Store {
            addr: Operand::I64(0),
            val: Operand::F32(0.0),
            mem: mperf_ir::MemTy::F32,
            lanes: 1,
            stride: Operand::I64(4),
        };
        assert_eq!(inst_class(&s), OpClass::Store);
    }
}
