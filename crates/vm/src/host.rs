//! Host-function dispatch and the roofline runtime.

use crate::value::Value;
use mperf_ir::ProfCounts;
use std::collections::HashMap;

/// A host function callable from guest code.
///
/// `Send` so a [`crate::Vm`] carrying registered handlers can move to a
/// sweep worker thread; handlers needing shared state use `Arc`.
pub type HostHandler = Box<dyn FnMut(&[Value]) -> Result<Vec<Value>, String> + Send>;

/// Per-region accumulated metrics (one per `LoopRegionInfo`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Metric tallies from `ProfCount` executions while this region was
    /// active and instrumentation enabled.
    pub counts: ProfCounts,
    /// Number of `loop_begin` events.
    pub invocations: u64,
    /// Guest cycles spent between begin/end with instrumentation OFF
    /// (the baseline phase timing).
    pub baseline_cycles: u64,
    /// Guest cycles spent between begin/end with instrumentation ON.
    pub instrumented_cycles: u64,
    /// `loop_end` notifications for this region id that arrived with no
    /// matching `loop_begin` active. Nonzero means the instrumentation
    /// in the module is broken (or a region trapped mid-flight); the
    /// cycle/count tallies for this region are then untrustworthy.
    pub unbalanced_ends: u64,
}

/// The runtime half of the paper's §4.3 two-phase workflow: tracks which
/// loop regions are active, whether the instrumented clones should run,
/// and accumulates the per-region metric tallies reported by `ProfCount`.
#[derive(Debug, Default)]
pub struct RooflineRuntime {
    /// Whether `mperf.is_instrumented` returns true (phase 2).
    pub instrumented: bool,
    /// Stack of active region ids with their begin-cycle stamps.
    active: Vec<(u32, u64)>,
    regions: HashMap<u32, RegionStats>,
}

impl RooflineRuntime {
    /// Fresh runtime (instrumentation disabled — phase 1).
    pub fn new() -> RooflineRuntime {
        RooflineRuntime::default()
    }

    /// `mperf.loop_begin(region_id)` at `now` cycles.
    pub fn loop_begin(&mut self, region_id: u32, now: u64) {
        self.active.push((region_id, now));
        self.regions.entry(region_id).or_default().invocations += 1;
    }

    /// `mperf.loop_end(region_id)` at `now` cycles.
    pub fn loop_end(&mut self, region_id: u32, now: u64) {
        let Some(pos) = self.active.iter().rposition(|&(id, _)| id == region_id) else {
            // Unbalanced end: tolerated (mirrors a runtime that ignores
            // stray notifications), but counted so broken
            // instrumentation is visible in the roofline report instead
            // of silently producing bogus tallies.
            self.regions.entry(region_id).or_default().unbalanced_ends += 1;
            return;
        };
        let (_, begin) = self.active.remove(pos);
        let stats = self.regions.entry(region_id).or_default();
        let dur = now.saturating_sub(begin);
        if self.instrumented {
            stats.instrumented_cycles += dur;
        } else {
            stats.baseline_cycles += dur;
        }
    }

    /// A `ProfCount` executed; attribute to the innermost active region.
    pub fn prof_count(&mut self, counts: ProfCounts) {
        if let Some(&(id, _)) = self.active.last() {
            let stats = self.regions.entry(id).or_default();
            stats.counts = stats.counts.merge(counts);
        }
    }

    /// Whether any region is currently active.
    pub fn in_region(&self) -> bool {
        !self.active.is_empty()
    }

    /// Stats of one region.
    pub fn region(&self, id: u32) -> Option<&RegionStats> {
        self.regions.get(&id)
    }

    /// All regions, sorted by id.
    pub fn regions(&self) -> Vec<(u32, RegionStats)> {
        let mut v: Vec<(u32, RegionStats)> = self.regions.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Total `loop_end` notifications (across all region ids) that had
    /// no matching active `loop_begin`. Zero on healthy instrumentation.
    pub fn unbalanced_ends(&self) -> u64 {
        self.regions.values().map(|s| s.unbalanced_ends).sum()
    }

    /// Clear accumulated stats (not the instrumented flag).
    pub fn reset_stats(&mut self) {
        self.active.clear();
        self.regions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(flops: u64) -> ProfCounts {
        ProfCounts {
            flops,
            loaded_bytes: 8,
            stored_bytes: 4,
            int_ops: 2,
        }
    }

    #[test]
    fn two_phase_accounting() {
        let mut rt = RooflineRuntime::new();
        // Phase 1: baseline.
        rt.loop_begin(0, 100);
        rt.loop_end(0, 600);
        // Phase 2: instrumented.
        rt.instrumented = true;
        rt.loop_begin(0, 1000);
        rt.prof_count(counts(10));
        rt.prof_count(counts(10));
        rt.loop_end(0, 1900);
        let s = rt.region(0).unwrap();
        assert_eq!(s.baseline_cycles, 500);
        assert_eq!(s.instrumented_cycles, 900);
        assert_eq!(s.counts.flops, 20);
        assert_eq!(s.counts.loaded_bytes, 16);
        assert_eq!(s.invocations, 2);
    }

    #[test]
    fn nested_regions_attribute_to_innermost() {
        let mut rt = RooflineRuntime::new();
        rt.instrumented = true;
        rt.loop_begin(0, 0);
        rt.loop_begin(1, 10);
        rt.prof_count(counts(5));
        rt.loop_end(1, 20);
        rt.prof_count(counts(7));
        rt.loop_end(0, 30);
        assert_eq!(rt.region(1).unwrap().counts.flops, 5);
        assert_eq!(rt.region(0).unwrap().counts.flops, 7);
    }

    #[test]
    fn unbalanced_end_is_tolerated_but_counted() {
        let mut rt = RooflineRuntime::new();
        rt.loop_end(42, 100);
        rt.loop_end(42, 120);
        rt.loop_end(7, 130);
        assert!(!rt.in_region());
        assert_eq!(rt.region(42).unwrap().unbalanced_ends, 2);
        assert_eq!(rt.region(7).unwrap().unbalanced_ends, 1);
        assert_eq!(rt.unbalanced_ends(), 3);
        // Nothing was accounted to the stray regions.
        assert_eq!(rt.region(42).unwrap().invocations, 0);
        assert_eq!(rt.region(42).unwrap().baseline_cycles, 0);
    }

    #[test]
    fn balanced_regions_report_zero_unbalanced() {
        let mut rt = RooflineRuntime::new();
        rt.loop_begin(0, 0);
        rt.loop_end(0, 10);
        assert_eq!(rt.unbalanced_ends(), 0);
    }

    #[test]
    fn prof_count_outside_region_is_dropped() {
        let mut rt = RooflineRuntime::new();
        rt.prof_count(counts(5));
        assert!(rt.regions().is_empty());
    }

    #[test]
    fn reset_clears_stats() {
        let mut rt = RooflineRuntime::new();
        rt.loop_begin(0, 0);
        rt.loop_end(0, 10);
        rt.reset_stats();
        assert!(rt.regions().is_empty());
    }
}
