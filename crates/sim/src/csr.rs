//! RISC-V control-and-status-register addressing and access control.
//!
//! Implements the subset of the CSR space the PMU stack touches, with
//! privilege checking: M-mode registers are inaccessible from S/U mode
//! (that privilege gap is exactly why the SBI firmware layer exists —
//! paper §3.2 and Fig. 1), and user-level counter reads are gated by
//! `mcounteren`/`scounteren`.

use crate::core::PrivMode;
use crate::platform::CpuId;
use crate::pmu::{Pmu, FIRST_HPM, NUM_COUNTERS};

/// CSR addresses (privileged spec names).
pub mod addr {
    /// Machine cycle counter.
    pub const MCYCLE: u16 = 0xB00;
    /// Machine instructions-retired counter.
    pub const MINSTRET: u16 = 0xB02;
    /// First machine HPM counter (`mhpmcounter3`).
    pub const MHPMCOUNTER3: u16 = 0xB03;
    /// First HPM event selector (`mhpmevent3`).
    pub const MHPMEVENT3: u16 = 0x323;
    /// Counter-inhibit register.
    pub const MCOUNTINHIBIT: u16 = 0x320;
    /// Machine counter-enable (delegates reads to S-mode).
    pub const MCOUNTEREN: u16 = 0x306;
    /// Supervisor counter-enable (delegates reads to U-mode).
    pub const SCOUNTEREN: u16 = 0x106;
    /// User-level read-only cycle alias.
    pub const CYCLE: u16 = 0xC00;
    /// User-level read-only instret alias.
    pub const INSTRET: u16 = 0xC02;
    /// First user-level HPM alias (`hpmcounter3`).
    pub const HPMCOUNTER3: u16 = 0xC03;
    /// Vendor ID.
    pub const MVENDORID: u16 = 0xF11;
    /// Architecture ID.
    pub const MARCHID: u16 = 0xF12;
    /// Implementation ID.
    pub const MIMPID: u16 = 0xF13;
}

/// Access failure: the instruction would trap with illegal-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrError {
    pub addr: u16,
    pub mode: PrivMode,
    pub write: bool,
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal-instruction: {} of CSR {:#05x} from {:?} mode",
            if self.write { "write" } else { "read" },
            self.addr,
            self.mode
        )
    }
}

impl std::error::Error for CsrError {}

/// Non-PMU CSR state (counter-enable delegation + ID registers).
#[derive(Debug, Clone)]
pub struct Csr {
    pub mcounteren: u32,
    pub scounteren: u32,
    cpu_id: CpuId,
}

impl Csr {
    /// Fresh CSR state for a hart with the given identity.
    pub fn new(cpu_id: CpuId) -> Csr {
        Csr {
            mcounteren: 0,
            scounteren: 0,
            cpu_id,
        }
    }

    /// Read a CSR as `mode`.
    ///
    /// # Errors
    /// Returns [`CsrError`] when the register does not exist at that
    /// privilege level or the counter is not delegated.
    pub fn read(&self, a: u16, mode: PrivMode, pmu: &Pmu) -> Result<u64, CsrError> {
        let deny = || CsrError {
            addr: a,
            mode,
            write: false,
        };
        match a {
            addr::MVENDORID => self.m_only(mode, self.cpu_id.mvendorid, deny),
            addr::MARCHID => self.m_only(mode, self.cpu_id.marchid, deny),
            addr::MIMPID => self.m_only(mode, self.cpu_id.mimpid, deny),
            addr::MCOUNTEREN => self.m_only(mode, self.mcounteren as u64, deny),
            addr::SCOUNTEREN => {
                if mode == PrivMode::User {
                    return Err(deny());
                }
                Ok(self.scounteren as u64)
            }
            addr::MCOUNTINHIBIT => self.m_only(mode, pmu.inhibit() as u64, deny),
            addr::MCYCLE => self.m_only(mode, pmu.read(0), deny),
            addr::MINSTRET => self.m_only(mode, pmu.read(2), deny),
            _ if (addr::MHPMCOUNTER3..addr::MHPMCOUNTER3 + 29).contains(&a) => {
                let idx = (a - addr::MHPMCOUNTER3) as usize + FIRST_HPM;
                if mode != PrivMode::Machine || !pmu.is_implemented(idx) {
                    return Err(deny());
                }
                Ok(pmu.read(idx))
            }
            _ if (addr::CYCLE..addr::CYCLE + NUM_COUNTERS as u16).contains(&a) && a != 0xC01 => {
                // User-level aliases, gated by the counteren chain.
                let idx = (a - addr::CYCLE) as usize;
                if !pmu.is_implemented(idx) {
                    return Err(deny());
                }
                let bit = 1u32 << idx;
                let allowed = match mode {
                    PrivMode::Machine => true,
                    PrivMode::Supervisor => self.mcounteren & bit != 0,
                    PrivMode::User => self.mcounteren & bit != 0 && self.scounteren & bit != 0,
                };
                if !allowed {
                    return Err(deny());
                }
                Ok(pmu.read(idx))
            }
            _ => Err(deny()),
        }
    }

    /// Write a CSR as `mode`.
    ///
    /// # Errors
    /// Returns [`CsrError`] for non-M-mode writes and read-only registers.
    pub fn write(
        &mut self,
        a: u16,
        value: u64,
        mode: PrivMode,
        pmu: &mut Pmu,
    ) -> Result<(), CsrError> {
        let deny = || CsrError {
            addr: a,
            mode,
            write: true,
        };
        if mode != PrivMode::Machine {
            // All writable PMU CSRs are machine-level; this is the
            // privilege gap the SBI layer bridges.
            return Err(deny());
        }
        match a {
            addr::MCOUNTEREN => {
                self.mcounteren = value as u32;
                Ok(())
            }
            addr::SCOUNTEREN => {
                self.scounteren = value as u32;
                Ok(())
            }
            addr::MCOUNTINHIBIT => {
                pmu.set_inhibit(value as u32);
                Ok(())
            }
            addr::MCYCLE => {
                pmu.write(0, value);
                Ok(())
            }
            addr::MINSTRET => {
                pmu.write(2, value);
                Ok(())
            }
            _ if (addr::MHPMCOUNTER3..addr::MHPMCOUNTER3 + 29).contains(&a) => {
                let idx = (a - addr::MHPMCOUNTER3) as usize + FIRST_HPM;
                if !pmu.is_implemented(idx) {
                    return Err(deny());
                }
                pmu.write(idx, value);
                Ok(())
            }
            addr::MVENDORID | addr::MARCHID | addr::MIMPID => Err(deny()),
            _ => Err(deny()),
        }
    }

    fn m_only(
        &self,
        mode: PrivMode,
        val: u64,
        deny: impl Fn() -> CsrError,
    ) -> Result<u64, CsrError> {
        if mode == PrivMode::Machine {
            Ok(val)
        } else {
            Err(deny())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Csr, Pmu) {
        let csr = Csr::new(CpuId {
            mvendorid: 0x710,
            marchid: 0x8000000058000001,
            mimpid: 0x60,
        });
        (csr, Pmu::new(8))
    }

    #[test]
    fn id_registers_machine_only() {
        let (csr, pmu) = setup();
        assert_eq!(
            csr.read(addr::MVENDORID, PrivMode::Machine, &pmu).unwrap(),
            0x710
        );
        assert!(csr
            .read(addr::MVENDORID, PrivMode::Supervisor, &pmu)
            .is_err());
        assert!(csr.read(addr::MVENDORID, PrivMode::User, &pmu).is_err());
    }

    #[test]
    fn user_counter_reads_gated_by_counteren_chain() {
        let (mut csr, mut pmu) = setup();
        pmu.write(0, 1234);
        // Nothing delegated: user read traps.
        assert!(csr.read(addr::CYCLE, PrivMode::User, &pmu).is_err());
        // M delegates to S only: user still traps, supervisor reads.
        csr.write(addr::MCOUNTEREN, 1, PrivMode::Machine, &mut pmu)
            .unwrap();
        assert!(csr.read(addr::CYCLE, PrivMode::User, &pmu).is_err());
        assert_eq!(
            csr.read(addr::CYCLE, PrivMode::Supervisor, &pmu).unwrap(),
            1234
        );
        // S delegates too: user reads.
        csr.write(addr::SCOUNTEREN, 1, PrivMode::Machine, &mut pmu)
            .unwrap();
        assert_eq!(csr.read(addr::CYCLE, PrivMode::User, &pmu).unwrap(), 1234);
    }

    #[test]
    fn supervisor_cannot_write_machine_csrs() {
        let (mut csr, mut pmu) = setup();
        let e = csr
            .write(addr::MHPMEVENT3, 1, PrivMode::Supervisor, &mut pmu)
            .unwrap_err();
        assert!(e.write);
        assert!(csr
            .write(addr::MCYCLE, 0, PrivMode::Supervisor, &mut pmu)
            .is_err());
    }

    #[test]
    fn machine_writes_counters() {
        let (mut csr, mut pmu) = setup();
        csr.write(addr::MHPMCOUNTER3, 99, PrivMode::Machine, &mut pmu)
            .unwrap();
        assert_eq!(pmu.read(3), 99);
        assert_eq!(
            csr.read(addr::MHPMCOUNTER3, PrivMode::Machine, &pmu)
                .unwrap(),
            99
        );
    }

    #[test]
    fn unimplemented_hpm_rejected() {
        let (mut csr, mut pmu) = setup(); // 8 HPM counters: 3..=10
        assert!(csr
            .write(addr::MHPMCOUNTER3 + 8, 1, PrivMode::Machine, &mut pmu)
            .is_err());
    }

    #[test]
    fn id_registers_read_only() {
        let (mut csr, mut pmu) = setup();
        assert!(csr
            .write(addr::MVENDORID, 0, PrivMode::Machine, &mut pmu)
            .is_err());
    }

    #[test]
    fn time_csr_is_not_a_counter_alias() {
        let (csr, pmu) = setup();
        assert!(csr.read(0xC01, PrivMode::Machine, &pmu).is_err());
    }
}
