//! Gshare branch predictor.

/// A gshare predictor: global history XOR PC indexes a table of 2-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    history: u64,
    index_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// A predictor with `2^index_bits` counters.
    pub fn new(index_bits: u32) -> BranchPredictor {
        assert!(
            index_bits > 0 && index_bits <= 24,
            "unreasonable table size"
        );
        BranchPredictor {
            table: vec![1; 1 << index_bits], // weakly not-taken
            history: 0,
            index_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Record a branch with the given outcome; returns true if the
    /// prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let mask = (1u64 << self.index_bits) - 1;
        let idx = ((pc >> 2) ^ self.history) & mask;
        let ctr = &mut self.table[idx as usize];
        let predicted_taken = *ctr >= 2;
        let correct = predicted_taken == taken;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & mask;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// (total predictions, mispredictions).
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }

    /// Reset history and counters.
    pub fn reset(&mut self) {
        self.table.fill(1);
        self.history = 0;
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branch() {
        let mut bp = BranchPredictor::new(10);
        // Warm up: the global history register needs to saturate before
        // the indexed counter stabilizes.
        for _ in 0..40 {
            bp.predict_and_update(0x400, true);
        }
        let correct = bp.predict_and_update(0x400, true);
        assert!(correct);
        let (p, m) = bp.stats();
        assert!(m < p / 2, "should learn quickly: {m}/{p}");
    }

    #[test]
    fn learns_loop_pattern() {
        let mut bp = BranchPredictor::new(12);
        // A loop branch: taken 63 times, not-taken once, repeated.
        let mut miss = 0;
        for _round in 0..16 {
            for i in 0..64 {
                let taken = i != 63;
                if !bp.predict_and_update(0x1000, taken) {
                    miss += 1;
                }
            }
        }
        // Total 1024 branches; a gshare should mispredict only the loop
        // exits plus warmup, which is well under 10%.
        assert!(miss < 102, "miss={miss}");
    }

    #[test]
    fn random_pattern_misses_often() {
        let mut bp = BranchPredictor::new(10);
        // Deterministic pseudo-random outcomes.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut miss = 0;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !bp.predict_and_update(0x2000, x & 1 == 1) {
                miss += 1;
            }
        }
        assert!(miss > 250, "random outcomes can't be predicted: {miss}");
    }

    #[test]
    fn reset_clears_state() {
        let mut bp = BranchPredictor::new(8);
        bp.predict_and_update(0, true);
        bp.reset();
        assert_eq!(bp.stats(), (0, 0));
    }
}
