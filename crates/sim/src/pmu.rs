//! The hardware performance-monitoring unit: counters, event selectors,
//! inhibit bits, and overflow detection.
//!
//! Counter layout follows the RISC-V privileged spec: index 0 is `mcycle`,
//! index 2 is `minstret`, and indices 3..=31 are the generic
//! `mhpmcounter`s whose event selection is implementation-defined
//! (`mhpmevent` codes are decoded by the platform model). Index 1 is
//! reserved (`mtime` lives elsewhere), as on real hardware.

use crate::core::PrivMode;
use crate::events::{EventDeltas, HwEvent};

/// Number of architectural counters (mcycle + reserved + minstret + 29 HPM).
pub const NUM_COUNTERS: usize = 32;

/// Index of `mcycle`.
pub const COUNTER_CYCLE: usize = 0;
/// Index of `minstret`.
pub const COUNTER_INSTRET: usize = 2;
/// First generic HPM counter index.
pub const FIRST_HPM: usize = 3;

/// The PMU register state of one hart.
#[derive(Debug, Clone)]
pub struct Pmu {
    counters: [u64; NUM_COUNTERS],
    /// Event selected on each generic counter (None = unprogrammed).
    events: [Option<HwEvent>; NUM_COUNTERS],
    /// `mcountinhibit`: bit i set = counter i frozen.
    inhibit: u32,
    /// Per-counter overflow-interrupt enable (Sscofpmf OVF enable bit in
    /// `mhpmevent`, modeled separately).
    irq_enable: u32,
    /// Sticky overflow-status bits (Sscofpmf OF).
    overflow_status: u32,
    /// Number of implemented generic counters (3..3+num_hpm are usable).
    num_hpm: usize,
}

impl Pmu {
    /// A PMU with `num_hpm` implemented generic counters.
    pub fn new(num_hpm: usize) -> Pmu {
        assert!(FIRST_HPM + num_hpm <= NUM_COUNTERS);
        Pmu {
            counters: [0; NUM_COUNTERS],
            events: [None; NUM_COUNTERS],
            inhibit: 0,
            irq_enable: 0,
            overflow_status: 0,
            num_hpm,
        }
    }

    /// Number of implemented generic (HPM) counters.
    pub fn num_hpm(&self) -> usize {
        self.num_hpm
    }

    /// Whether `idx` addresses an implemented counter.
    pub fn is_implemented(&self, idx: usize) -> bool {
        idx == COUNTER_CYCLE || idx == COUNTER_INSTRET || (FIRST_HPM..FIRST_HPM + self.num_hpm).contains(&idx)
    }

    /// The event a counter observes (fixed for cycle/instret).
    pub fn event_of(&self, idx: usize) -> Option<HwEvent> {
        match idx {
            COUNTER_CYCLE => Some(HwEvent::CpuCycles),
            COUNTER_INSTRET => Some(HwEvent::Instructions),
            _ => self.events.get(idx).copied().flatten(),
        }
    }

    /// Program a generic counter's event selector.
    ///
    /// # Panics
    /// Panics if `idx` is not an implemented generic counter (callers —
    /// the SBI layer — validate first).
    pub fn set_event(&mut self, idx: usize, ev: Option<HwEvent>) {
        assert!(
            (FIRST_HPM..FIRST_HPM + self.num_hpm).contains(&idx),
            "counter {idx} is not a programmable HPM counter"
        );
        self.events[idx] = ev;
    }

    /// Read a counter.
    pub fn read(&self, idx: usize) -> u64 {
        self.counters[idx]
    }

    /// Write a counter (M-mode or SBI only; used to arm sampling periods
    /// by writing `-period`).
    pub fn write(&mut self, idx: usize, value: u64) {
        self.counters[idx] = value;
    }

    /// The `mcountinhibit` register.
    pub fn inhibit(&self) -> u32 {
        self.inhibit
    }

    /// Set `mcountinhibit`.
    pub fn set_inhibit(&mut self, value: u32) {
        self.inhibit = value;
    }

    /// Enable/disable the overflow interrupt for a counter.
    pub fn set_irq_enable(&mut self, idx: usize, on: bool) {
        if on {
            self.irq_enable |= 1 << idx;
        } else {
            self.irq_enable &= !(1 << idx);
        }
    }

    /// Whether the overflow interrupt is enabled for a counter.
    pub fn irq_enabled(&self, idx: usize) -> bool {
        self.irq_enable >> idx & 1 == 1
    }

    /// Sticky overflow bits (cleared by [`Pmu::clear_overflow`]).
    pub fn overflow_status(&self) -> u32 {
        self.overflow_status
    }

    /// Clear a counter's sticky overflow bit.
    pub fn clear_overflow(&mut self, idx: usize) {
        self.overflow_status &= !(1 << idx);
    }

    /// Advance all enabled counters by the event deltas of one retire
    /// step. Returns a bitmask of counters that overflowed (wrapped) this
    /// step *and* have their interrupt enabled — the core turns those
    /// into overflow interrupts.
    pub fn tick(&mut self, deltas: &EventDeltas, mode: PrivMode) -> u32 {
        let mut fired = 0u32;
        for idx in 0..NUM_COUNTERS {
            if !self.is_implemented(idx) {
                continue;
            }
            if self.inhibit >> idx & 1 == 1 {
                continue;
            }
            let Some(ev) = self.event_of(idx) else {
                continue;
            };
            let delta = deltas.get(ev, mode);
            if delta == 0 {
                continue;
            }
            let (next, wrapped) = self.counters[idx].overflowing_add(delta);
            self.counters[idx] = next;
            if wrapped {
                self.overflow_status |= 1 << idx;
                if self.irq_enabled(idx) {
                    fired |= 1 << idx;
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deltas(cycles: u64, instr: u64) -> EventDeltas {
        EventDeltas {
            cycles,
            instructions: instr,
            ..EventDeltas::default()
        }
    }

    #[test]
    fn fixed_counters_count() {
        let mut p = Pmu::new(8);
        p.tick(&deltas(5, 2), PrivMode::User);
        assert_eq!(p.read(COUNTER_CYCLE), 5);
        assert_eq!(p.read(COUNTER_INSTRET), 2);
    }

    #[test]
    fn inhibit_freezes_counter() {
        let mut p = Pmu::new(8);
        p.set_inhibit(1 << COUNTER_CYCLE);
        p.tick(&deltas(5, 2), PrivMode::User);
        assert_eq!(p.read(COUNTER_CYCLE), 0);
        assert_eq!(p.read(COUNTER_INSTRET), 2);
    }

    #[test]
    fn hpm_counts_programmed_event() {
        let mut p = Pmu::new(8);
        p.set_event(3, Some(HwEvent::BranchMisses));
        let d = EventDeltas {
            cycles: 1,
            branch_misses: 3,
            ..EventDeltas::default()
        };
        p.tick(&d, PrivMode::User);
        assert_eq!(p.read(3), 3);
    }

    #[test]
    fn mode_cycle_counters_track_privilege() {
        let mut p = Pmu::new(8);
        p.set_event(3, Some(HwEvent::UModeCycles));
        p.set_event(4, Some(HwEvent::MModeCycles));
        p.tick(&deltas(10, 1), PrivMode::User);
        p.tick(&deltas(7, 1), PrivMode::Machine);
        assert_eq!(p.read(3), 10);
        assert_eq!(p.read(4), 7);
        assert_eq!(p.read(COUNTER_CYCLE), 17);
    }

    #[test]
    fn overflow_fires_only_when_enabled() {
        let mut p = Pmu::new(8);
        p.set_event(3, Some(HwEvent::Instructions));
        p.write(3, u64::MAX - 1); // overflow after 2 instructions
        let fired = p.tick(&deltas(1, 2), PrivMode::User);
        assert_eq!(fired, 0, "irq not enabled: silent wrap");
        assert_ne!(p.overflow_status() & (1 << 3), 0, "OF bit set anyway");

        p.clear_overflow(3);
        p.set_irq_enable(3, true);
        p.write(3, u64::MAX - 1);
        let fired = p.tick(&deltas(1, 2), PrivMode::User);
        assert_eq!(fired, 1 << 3);
    }

    #[test]
    fn sampling_period_arming() {
        // perf-style: write -period, overflow fires after `period` events.
        let mut p = Pmu::new(8);
        p.set_irq_enable(COUNTER_CYCLE, true);
        p.write(COUNTER_CYCLE, (-1000i64) as u64);
        let mut fired_at = None;
        for step in 0..2000 {
            if p.tick(&deltas(1, 0), PrivMode::User) != 0 {
                fired_at = Some(step);
                break;
            }
        }
        assert_eq!(fired_at, Some(999));
    }

    #[test]
    fn unimplemented_counters_ignore_ticks() {
        let mut p = Pmu::new(4);
        assert!(p.is_implemented(3 + 3));
        assert!(!p.is_implemented(3 + 4));
        assert!(!p.is_implemented(1), "index 1 is reserved");
    }

    #[test]
    #[should_panic(expected = "not a programmable HPM counter")]
    fn cannot_program_fixed_counters() {
        let mut p = Pmu::new(8);
        p.set_event(COUNTER_CYCLE, Some(HwEvent::L1dMiss));
    }
}
