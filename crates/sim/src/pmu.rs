//! The hardware performance-monitoring unit: counters, event selectors,
//! inhibit bits, and overflow detection.
//!
//! Counter layout follows the RISC-V privileged spec: index 0 is `mcycle`,
//! index 2 is `minstret`, and indices 3..=31 are the generic
//! `mhpmcounter`s whose event selection is implementation-defined
//! (`mhpmevent` codes are decoded by the platform model). Index 1 is
//! reserved (`mtime` lives elsewhere), as on real hardware.

use crate::core::PrivMode;
use crate::events::{EventDeltas, HwEvent};

/// Number of architectural counters (mcycle + reserved + minstret + 29 HPM).
pub const NUM_COUNTERS: usize = 32;

/// Index of `mcycle`.
pub const COUNTER_CYCLE: usize = 0;
/// Index of `minstret`.
pub const COUNTER_INSTRET: usize = 2;
/// First generic HPM counter index.
pub const FIRST_HPM: usize = 3;

/// The PMU register state of one hart.
///
/// # Batched ticking and the exact-overflow watermark
///
/// Scanning all 32 counters on every retired op dominates the simulator's
/// retire cost, so the PMU batches: per-op [`EventDeltas`] accumulate into
/// a `pending` bundle and are only *applied* (the full per-counter scan)
/// when something could observe the difference. The invariant that makes
/// this exact rather than approximate is the **watermark**: the minimum
/// distance-to-wrap across every counter that is implemented, uninhibited,
/// and observing an event. Because each counter advances by at most
/// `EventDeltas::total()` per op, `pending_total <= watermark` guarantees
/// no counter can wrap while deltas sit in `pending` — so overflow
/// interrupts still fire on exactly the op that wraps (the op that would
/// cross the watermark is ticked individually after a flush). Reads fold
/// `pending` in lazily; every mutator flushes first.
#[derive(Debug, Clone)]
pub struct Pmu {
    counters: [u64; NUM_COUNTERS],
    /// Event selected on each generic counter (None = unprogrammed).
    events: [Option<HwEvent>; NUM_COUNTERS],
    /// `mcountinhibit`: bit i set = counter i frozen.
    inhibit: u32,
    /// Per-counter overflow-interrupt enable (Sscofpmf OVF enable bit in
    /// `mhpmevent`, modeled separately).
    irq_enable: u32,
    /// Sticky overflow-status bits (Sscofpmf OF).
    overflow_status: u32,
    /// Number of implemented generic counters (3..3+num_hpm are usable).
    num_hpm: usize,
    /// Deltas accumulated since the last flush (all in `pending_mode`).
    pending: EventDeltas,
    /// Upper bound on any single counter's pending advance.
    pending_total: u64,
    /// Privilege mode the pending deltas were accumulated in (a mode
    /// switch forces a flush, so one batch never spans modes).
    pending_mode: PrivMode,
    /// Min distance-to-wrap over armed counters at the last flush.
    watermark: u64,
    /// False after counter/state mutation; forces recompute before use.
    watermark_valid: bool,
    /// When false, `tick_batched` degrades to the per-op scan (the
    /// pre-batching behaviour; kept for baseline measurements).
    batched: bool,
}

impl Pmu {
    /// A PMU with `num_hpm` implemented generic counters.
    pub fn new(num_hpm: usize) -> Pmu {
        assert!(FIRST_HPM + num_hpm <= NUM_COUNTERS);
        Pmu {
            counters: [0; NUM_COUNTERS],
            events: [None; NUM_COUNTERS],
            inhibit: 0,
            irq_enable: 0,
            overflow_status: 0,
            num_hpm,
            pending: EventDeltas::default(),
            pending_total: 0,
            pending_mode: PrivMode::User,
            watermark: 0,
            watermark_valid: false,
            batched: true,
        }
    }

    /// Enable/disable delta batching (on by default). Disabling restores
    /// the per-op counter scan — observable behaviour is identical either
    /// way; this exists so benchmarks can measure the seed configuration.
    pub fn set_batched(&mut self, on: bool) {
        if !on {
            self.flush();
            self.watermark_valid = false;
        }
        self.batched = on;
    }

    /// Number of implemented generic (HPM) counters.
    pub fn num_hpm(&self) -> usize {
        self.num_hpm
    }

    /// Whether `idx` addresses an implemented counter.
    pub fn is_implemented(&self, idx: usize) -> bool {
        idx == COUNTER_CYCLE
            || idx == COUNTER_INSTRET
            || (FIRST_HPM..FIRST_HPM + self.num_hpm).contains(&idx)
    }

    /// The event a counter observes (fixed for cycle/instret).
    pub fn event_of(&self, idx: usize) -> Option<HwEvent> {
        match idx {
            COUNTER_CYCLE => Some(HwEvent::CpuCycles),
            COUNTER_INSTRET => Some(HwEvent::Instructions),
            _ => self.events.get(idx).copied().flatten(),
        }
    }

    /// Program a generic counter's event selector.
    ///
    /// # Panics
    /// Panics if `idx` is not an implemented generic counter (callers —
    /// the SBI layer — validate first).
    pub fn set_event(&mut self, idx: usize, ev: Option<HwEvent>) {
        assert!(
            (FIRST_HPM..FIRST_HPM + self.num_hpm).contains(&idx),
            "counter {idx} is not a programmable HPM counter"
        );
        self.flush();
        self.events[idx] = ev;
        self.watermark_valid = false;
    }

    /// Read a counter. Pending batched deltas are folded in lazily, so
    /// reads always observe the exact architectural value.
    pub fn read(&self, idx: usize) -> u64 {
        let base = *self.counters.get(idx).unwrap_or(&0);
        if self.pending_total == 0 || !self.is_implemented(idx) || self.inhibit >> idx & 1 == 1 {
            return base;
        }
        match self.event_of(idx) {
            // Cannot wrap: the watermark invariant bounds the pending
            // contribution below every counter's distance to overflow.
            Some(ev) => base + self.pending.get(ev, self.pending_mode),
            None => base,
        }
    }

    /// Write a counter (M-mode or SBI only; used to arm sampling periods
    /// by writing `-period`).
    pub fn write(&mut self, idx: usize, value: u64) {
        self.flush();
        self.counters[idx] = value;
        self.watermark_valid = false;
    }

    /// The `mcountinhibit` register.
    pub fn inhibit(&self) -> u32 {
        self.inhibit
    }

    /// Set `mcountinhibit`.
    pub fn set_inhibit(&mut self, value: u32) {
        self.flush();
        self.inhibit = value;
        self.watermark_valid = false;
    }

    /// Enable/disable the overflow interrupt for a counter.
    pub fn set_irq_enable(&mut self, idx: usize, on: bool) {
        if on {
            self.irq_enable |= 1 << idx;
        } else {
            self.irq_enable &= !(1 << idx);
        }
    }

    /// Whether the overflow interrupt is enabled for a counter.
    pub fn irq_enabled(&self, idx: usize) -> bool {
        self.irq_enable >> idx & 1 == 1
    }

    /// Sticky overflow bits (cleared by [`Pmu::clear_overflow`]).
    pub fn overflow_status(&self) -> u32 {
        self.overflow_status
    }

    /// Clear a counter's sticky overflow bit.
    pub fn clear_overflow(&mut self, idx: usize) {
        self.overflow_status &= !(1 << idx);
    }

    /// Advance all enabled counters by the event deltas of one retire
    /// step. Returns a bitmask of counters that overflowed (wrapped) this
    /// step *and* have their interrupt enabled — the core turns those
    /// into overflow interrupts.
    ///
    /// This is the exact-now path: any batched deltas are flushed first,
    /// then `deltas` are applied immediately.
    pub fn tick(&mut self, deltas: &EventDeltas, mode: PrivMode) -> u32 {
        self.flush();
        let fired = self.tick_now(deltas, mode);
        self.watermark_valid = false;
        fired
    }

    /// Advance counters by one retire step, deferring the per-counter
    /// scan while no counter can possibly wrap (see the type-level docs
    /// for the watermark invariant). Semantically identical to calling
    /// [`Pmu::tick`] per op: counter reads and the op at which an
    /// overflow interrupt fires are bit-exact.
    #[inline]
    pub fn tick_batched(&mut self, deltas: &EventDeltas, mode: PrivMode) -> u32 {
        if !self.batched {
            return self.tick(deltas, mode);
        }
        if mode != self.pending_mode {
            self.flush();
            self.pending_mode = mode;
        }
        if !self.watermark_valid {
            self.flush();
            self.recompute_watermark();
        }
        let op_total = deltas.total();
        if self.pending_total.saturating_add(op_total) > self.watermark {
            // This op *might* wrap a counter: drain the batch (which by
            // the invariant cannot wrap), then tick the op individually
            // so the overflow is attributed to exactly this retire.
            self.flush();
            let fired = self.tick_now(deltas, mode);
            self.recompute_watermark();
            return fired;
        }
        self.pending.accumulate(deltas);
        self.pending_total += op_total;
        0
    }

    /// Whether a batch advancing every counter by at most `ub` events can
    /// be absorbed without any counter wrapping. This is the go/no-go
    /// probe for the core's fused multi-op retire
    /// ([`crate::Core::retire_fused`]): when it returns `true`, the whole
    /// batch may be ticked as one [`Pmu::tick_batched`] call and is
    /// guaranteed to take the accumulate path (no overflow, so no
    /// per-op attribution is needed); when `false` — a counter is within
    /// `ub` events of wrapping, or batching is disabled — the caller must
    /// retire op by op so the overflow interrupt fires on exactly the op
    /// that wraps.
    ///
    /// Performs the same batch normalization `tick_batched` would (mode
    /// flush, watermark recompute), which is observably transparent.
    #[inline]
    pub fn batch_headroom(&mut self, ub: u64, mode: PrivMode) -> bool {
        if !self.batched {
            return false;
        }
        if mode != self.pending_mode {
            self.flush();
            self.pending_mode = mode;
        }
        if !self.watermark_valid {
            self.flush();
            self.recompute_watermark();
        }
        self.pending_total.saturating_add(ub) <= self.watermark
    }

    /// Scalar fast lane of [`Pmu::tick_batched`] for ops that only
    /// produce cycle/instruction events (no memory, branch, or FP
    /// deltas) — skips building and scanning the full [`EventDeltas`].
    #[inline]
    pub fn tick_batched_simple(&mut self, cycles: u64, instructions: u64, mode: PrivMode) -> u32 {
        let op_total = cycles + instructions;
        if self.batched
            && self.watermark_valid
            && mode == self.pending_mode
            && self.pending_total.saturating_add(op_total) <= self.watermark
        {
            self.pending.cycles += cycles;
            self.pending.instructions += instructions;
            self.pending_total += op_total;
            return 0;
        }
        let deltas = EventDeltas {
            cycles,
            instructions,
            ..EventDeltas::default()
        };
        self.tick_batched(&deltas, mode)
    }

    /// Apply any pending batched deltas to the counters. Advancing the
    /// counters shrinks their distance-to-wrap, so the watermark is
    /// invalidated here — callers on the tick path recompute it.
    fn flush(&mut self) {
        if self.pending_total == 0 {
            return;
        }
        let pending = self.pending;
        let mode = self.pending_mode;
        self.pending = EventDeltas::default();
        self.pending_total = 0;
        self.watermark_valid = false;
        let fired = self.tick_now(&pending, mode);
        debug_assert_eq!(fired, 0, "watermark invariant: a batch never wraps");
    }

    /// Recompute the minimum distance-to-wrap across armed counters.
    fn recompute_watermark(&mut self) {
        debug_assert_eq!(self.pending_total, 0, "recompute only on empty batch");
        let mut min_dist = u64::MAX;
        for idx in 0..NUM_COUNTERS {
            if !self.is_implemented(idx) || self.inhibit >> idx & 1 == 1 {
                continue;
            }
            if self.event_of(idx).is_none() {
                continue;
            }
            min_dist = min_dist.min(u64::MAX - self.counters[idx]);
        }
        self.watermark = min_dist;
        self.watermark_valid = true;
    }

    /// The immediate per-counter scan (the pre-batching `tick` body).
    fn tick_now(&mut self, deltas: &EventDeltas, mode: PrivMode) -> u32 {
        let mut fired = 0u32;
        for idx in 0..NUM_COUNTERS {
            if !self.is_implemented(idx) {
                continue;
            }
            if self.inhibit >> idx & 1 == 1 {
                continue;
            }
            let Some(ev) = self.event_of(idx) else {
                continue;
            };
            let delta = deltas.get(ev, mode);
            if delta == 0 {
                continue;
            }
            let (next, wrapped) = self.counters[idx].overflowing_add(delta);
            self.counters[idx] = next;
            if wrapped {
                self.overflow_status |= 1 << idx;
                if self.irq_enabled(idx) {
                    fired |= 1 << idx;
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deltas(cycles: u64, instr: u64) -> EventDeltas {
        EventDeltas {
            cycles,
            instructions: instr,
            ..EventDeltas::default()
        }
    }

    #[test]
    fn fixed_counters_count() {
        let mut p = Pmu::new(8);
        p.tick(&deltas(5, 2), PrivMode::User);
        assert_eq!(p.read(COUNTER_CYCLE), 5);
        assert_eq!(p.read(COUNTER_INSTRET), 2);
    }

    #[test]
    fn inhibit_freezes_counter() {
        let mut p = Pmu::new(8);
        p.set_inhibit(1 << COUNTER_CYCLE);
        p.tick(&deltas(5, 2), PrivMode::User);
        assert_eq!(p.read(COUNTER_CYCLE), 0);
        assert_eq!(p.read(COUNTER_INSTRET), 2);
    }

    #[test]
    fn hpm_counts_programmed_event() {
        let mut p = Pmu::new(8);
        p.set_event(3, Some(HwEvent::BranchMisses));
        let d = EventDeltas {
            cycles: 1,
            branch_misses: 3,
            ..EventDeltas::default()
        };
        p.tick(&d, PrivMode::User);
        assert_eq!(p.read(3), 3);
    }

    #[test]
    fn mode_cycle_counters_track_privilege() {
        let mut p = Pmu::new(8);
        p.set_event(3, Some(HwEvent::UModeCycles));
        p.set_event(4, Some(HwEvent::MModeCycles));
        p.tick(&deltas(10, 1), PrivMode::User);
        p.tick(&deltas(7, 1), PrivMode::Machine);
        assert_eq!(p.read(3), 10);
        assert_eq!(p.read(4), 7);
        assert_eq!(p.read(COUNTER_CYCLE), 17);
    }

    #[test]
    fn overflow_fires_only_when_enabled() {
        let mut p = Pmu::new(8);
        p.set_event(3, Some(HwEvent::Instructions));
        p.write(3, u64::MAX - 1); // overflow after 2 instructions
        let fired = p.tick(&deltas(1, 2), PrivMode::User);
        assert_eq!(fired, 0, "irq not enabled: silent wrap");
        assert_ne!(p.overflow_status() & (1 << 3), 0, "OF bit set anyway");

        p.clear_overflow(3);
        p.set_irq_enable(3, true);
        p.write(3, u64::MAX - 1);
        let fired = p.tick(&deltas(1, 2), PrivMode::User);
        assert_eq!(fired, 1 << 3);
    }

    #[test]
    fn sampling_period_arming() {
        // perf-style: write -period, overflow fires after `period` events.
        let mut p = Pmu::new(8);
        p.set_irq_enable(COUNTER_CYCLE, true);
        p.write(COUNTER_CYCLE, (-1000i64) as u64);
        let mut fired_at = None;
        for step in 0..2000 {
            if p.tick(&deltas(1, 0), PrivMode::User) != 0 {
                fired_at = Some(step);
                break;
            }
        }
        assert_eq!(fired_at, Some(999));
    }

    #[test]
    fn unimplemented_counters_ignore_ticks() {
        let p = Pmu::new(4);
        assert!(p.is_implemented(3 + 3));
        assert!(!p.is_implemented(3 + 4));
        assert!(!p.is_implemented(1), "index 1 is reserved");
    }

    #[test]
    #[should_panic(expected = "not a programmable HPM counter")]
    fn cannot_program_fixed_counters() {
        let mut p = Pmu::new(8);
        p.set_event(COUNTER_CYCLE, Some(HwEvent::L1dMiss));
    }

    /// Regression test: flushing on a privilege-mode switch shrinks the
    /// counters' distance-to-wrap, so the watermark must be recomputed —
    /// a stale watermark once let a later batch wrap inside `flush`,
    /// losing the overflow interrupt. Batched and unbatched PMUs must
    /// agree on counter values and on the exact tick where the overflow
    /// fires, even with frequent mode switches.
    #[test]
    fn batched_matches_unbatched_across_mode_switches() {
        let mut batched = Pmu::new(8);
        let mut exact = Pmu::new(8);
        for p in [&mut batched, &mut exact] {
            p.set_event(3, Some(HwEvent::CpuCycles));
            p.set_irq_enable(3, true);
            p.write(3, (-5_000i64) as u64);
        }
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut mode = PrivMode::User;
        for step in 0..20_000u64 {
            // Pseudo-random cycle deltas; switch mode every ~700 steps
            // (the perf kernel flips to Supervisor on every sample).
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let d = deltas(1 + x % 7, 1);
            if step % 700 == 699 {
                mode = match mode {
                    PrivMode::User => PrivMode::Supervisor,
                    _ => PrivMode::User,
                };
            }
            let fired_b = batched.tick_batched(&d, mode);
            let fired_e = exact.tick(&d, mode);
            assert_eq!(fired_b, fired_e, "overflow mask diverged at step {step}");
            if fired_b != 0 {
                // Re-arm, as a sampling kernel would.
                batched.write(3, (-5_000i64) as u64);
                exact.write(3, (-5_000i64) as u64);
            }
            assert_eq!(
                batched.read(3),
                exact.read(3),
                "counter diverged at step {step}"
            );
        }
        assert_eq!(batched.read(COUNTER_CYCLE), exact.read(COUNTER_CYCLE));
        assert_eq!(batched.read(COUNTER_INSTRET), exact.read(COUNTER_INSTRET));
    }

    /// The scalar fast lane must agree with the full batched path too.
    #[test]
    fn simple_fast_lane_matches_full_tick() {
        let mut a = Pmu::new(8);
        let mut b = Pmu::new(8);
        for p in [&mut a, &mut b] {
            p.set_event(3, Some(HwEvent::Instructions));
            p.set_irq_enable(3, true);
            p.write(3, (-300i64) as u64);
        }
        let mut fired_a = 0u32;
        let mut fired_b = 0u32;
        for _ in 0..1_000 {
            fired_a |= a.tick_batched_simple(2, 1, PrivMode::User);
            fired_b |= b.tick_batched(&deltas(2, 1), PrivMode::User);
        }
        assert_eq!(fired_a, fired_b);
        assert_eq!(a.read(3), b.read(3));
        assert_eq!(a.read(COUNTER_CYCLE), b.read(COUNTER_CYCLE));
    }
}
