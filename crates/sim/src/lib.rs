//! # mperf-sim — simulated RISC-V (and one x86) hardware
//!
//! The reproduction's stand-in for the development boards the paper
//! evaluates on: timing-model CPU cores with caches, branch prediction, a
//! vector unit, privilege modes, and — centrally — a full RISC-V PMU CSR
//! file (`mcycle`, `minstret`, `mhpmcounter3..31`, `mhpmevent3..31`,
//! `mcountinhibit`, `mcounteren`) with **per-platform quirk models**:
//!
//! | core | OoO | RVV | overflow IRQ (Sscofpmf) |
//! |------|-----|-----|--------------------------|
//! | SiFive U74    | no  | —    | none |
//! | T-Head C910   | yes | 0.7.1| all counters |
//! | SpacemiT X60  | no  | 1.0  | **only** the non-standard `u/s/m_mode_cycle` events |
//! | Intel i5-1135G7 | yes | AVX2 | all counters (PMI) |
//!
//! The X60 row is the hardware defect §3.3 of the paper works around; the
//! simulator reproduces it so the `perf_event` grouping trick (and its
//! failure without the workaround) is observable in `mperf-event`.
//!
//! Timing is a calibrated throughput/latency model, not microarchitectural
//! simulation: absolute cycle counts are plausible rather than exact, but
//! ratios (in-order vs out-of-order IPC, cache-miss exposure, vector
//! speedups, DRAM bandwidth ceilings) follow the paper's shape. See
//! `DESIGN.md` for the calibration targets.

pub mod branch;
pub mod cache;
pub mod core;
pub mod csr;
pub mod events;
pub mod isa;
pub mod machine_op;
pub mod platform;
pub mod pmu;

pub use crate::core::{BlockAcc, Core, PrivMode, RetireInfo, MAX_FUSED_BATCH};
pub use branch::BranchPredictor;
pub use cache::{CacheConfig, MemEvents, MemorySystem};
pub use csr::{Csr, CsrError};
pub use events::HwEvent;
pub use isa::IsaModel;
pub use machine_op::{MachineOp, MemRef, OpClass};
pub use platform::{CpuId, Platform, PlatformSpec, SscofpmfSupport};
pub use pmu::{Pmu, NUM_COUNTERS};
