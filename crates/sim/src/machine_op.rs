//! Machine-level operations: what the VM's lowering produces and the core
//! consumes. One `MachineOp` retires as one or more ISA instructions
//! (see [`crate::isa::IsaModel`]).

/// A memory reference attached to a machine op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Guest byte address of the first lane.
    pub addr: u64,
    /// Bytes per lane.
    pub bytes: u32,
    /// Number of lanes (1 for scalar accesses).
    pub lanes: u32,
    /// Byte distance between lanes.
    pub stride: i64,
    pub is_store: bool,
}

impl MemRef {
    /// A scalar access.
    pub fn scalar(addr: u64, bytes: u32, is_store: bool) -> MemRef {
        MemRef {
            addr,
            bytes,
            lanes: 1,
            stride: bytes as i64,
            is_store,
        }
    }

    /// Whether this is a unit-stride access.
    pub fn is_unit_stride(&self) -> bool {
        self.stride == self.bytes as i64
    }

    /// Total bytes touched.
    pub fn total_bytes(&self) -> u64 {
        self.bytes as u64 * self.lanes as u64
    }

    /// The distinct cache-line addresses touched (line size 64).
    pub fn lines(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_line(|l| out.push(l));
        out
    }

    /// Visit each distinct cache-line address touched (line size 64), in
    /// first-touch order, without allocating — this sits on the per-op
    /// retire path for every memory access.
    #[inline]
    pub fn for_each_line(&self, mut f: impl FnMut(u64)) {
        let first = self.addr / 64;
        let last = (self.addr + self.bytes as u64 - 1) / 64;
        if self.lanes <= 1 {
            // A single lane's line range is distinct by construction.
            for l in first..=last {
                f(l);
            }
            return;
        }
        // Multi-lane: dedup through a small inline window (lanes are
        // SIMD-width-bounded, so this covers real programs; a spill
        // vector keeps pathological shapes correct).
        let mut seen = [0u64; 32];
        let mut n = 0usize;
        let mut spill: Vec<u64> = Vec::new();
        for lane in 0..self.lanes {
            let a = self.addr.wrapping_add_signed(self.stride * lane as i64);
            let first = a / 64;
            let last = (a + self.bytes as u64 - 1) / 64;
            for l in first..=last {
                if seen[..n].contains(&l) || spill.contains(&l) {
                    continue;
                }
                if n < seen.len() {
                    seen[n] = l;
                    n += 1;
                } else {
                    spill.push(l);
                }
                f(l);
            }
        }
    }
}

/// Operation class, used by the timing model and the ISA expansion table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU op (add/sub/logic/shift/compare).
    IntAlu,
    IntMul,
    IntDiv,
    /// Address arithmetic (`ptradd`); folds into addressing modes on x86.
    AddrCalc,
    FpAdd,
    FpMul,
    FpDiv,
    /// Fused multiply-add (2 FLOPs).
    FpFma,
    /// Conversions and moves between register classes.
    FpCvt,
    Load,
    Store,
    /// Vector arithmetic (per-instruction; FLOPs counted via `fp_lanes`).
    VecAlu,
    VecFma,
    VecLoad,
    VecStore,
    /// Vector lane broadcast / horizontal reduce.
    VecShuffle,
    /// Conditional or unconditional control transfer.
    Branch,
    /// Call/return overhead op.
    CallRet,
    /// Register move / no-op class.
    Move,
}

/// A machine operation: class + optional memory reference + branch info.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineOp {
    pub class: OpClass,
    /// Synthetic program counter (function id in high bits); used for
    /// branch prediction indexing and PMU sample IPs.
    pub pc: u64,
    pub mem: Option<MemRef>,
    /// For `Branch`: whether it was taken (drives the predictor).
    pub taken: bool,
    /// FLOPs retired by this op (lanes × (2 for FMA, 1 otherwise)).
    pub flops: u32,
}

impl MachineOp {
    /// A non-memory, non-branch op.
    pub fn simple(class: OpClass, pc: u64) -> MachineOp {
        MachineOp {
            class,
            pc,
            mem: None,
            taken: false,
            flops: 0,
        }
    }

    /// Attach a memory reference.
    pub fn with_mem(mut self, mem: MemRef) -> MachineOp {
        self.mem = Some(mem);
        self
    }

    /// Attach a FLOP count.
    pub fn with_flops(mut self, flops: u32) -> MachineOp {
        self.flops = flops;
        self
    }

    /// Mark a branch outcome.
    pub fn with_taken(mut self, taken: bool) -> MachineOp {
        self.taken = taken;
        self
    }

    /// Whether the class is a vector operation.
    pub fn is_vector(&self) -> bool {
        matches!(
            self.class,
            OpClass::VecAlu
                | OpClass::VecFma
                | OpClass::VecLoad
                | OpClass::VecStore
                | OpClass::VecShuffle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_detection() {
        let m = MemRef::scalar(0x1000, 8, false);
        assert!(m.is_unit_stride());
        let s = MemRef {
            addr: 0,
            bytes: 4,
            lanes: 8,
            stride: 256,
            is_store: false,
        };
        assert!(!s.is_unit_stride());
        assert_eq!(s.total_bytes(), 32);
    }

    #[test]
    fn line_computation_contiguous() {
        let m = MemRef {
            addr: 60,
            bytes: 4,
            lanes: 8,
            stride: 4,
            is_store: false,
        };
        // 60..92 touches lines 0 and 1.
        assert_eq!(m.lines(), vec![0, 1]);
    }

    #[test]
    fn line_computation_strided() {
        let m = MemRef {
            addr: 0,
            bytes: 4,
            lanes: 4,
            stride: 128,
            is_store: false,
        };
        assert_eq!(m.lines(), vec![0, 2, 4, 6]);
    }

    #[test]
    fn builders() {
        let op = MachineOp::simple(OpClass::VecFma, 7)
            .with_flops(16)
            .with_taken(false);
        assert!(op.is_vector());
        assert_eq!(op.flops, 16);
        assert_eq!(op.pc, 7);
    }
}
