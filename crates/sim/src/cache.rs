//! Set-associative cache hierarchy with a DRAM bandwidth limiter.
//!
//! Two levels (L1D, unified L2) over a DRAM model with both latency and a
//! bytes-per-cycle bandwidth ceiling. The ceiling is what produces the
//! memory roof of the roofline model: the X60 configuration is calibrated
//! to ~3.16 bytes/cycle, matching the memset benchmark the paper cites
//! (§5.2: 3.16 B/cyc × 1.6 GHz ≈ 4.7 GB/s).

use crate::machine_op::MemRef;

/// Cache line size in bytes (all levels).
pub const LINE_BYTES: u64 = 64;

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConfig {
    pub size_bytes: u64,
    pub ways: u32,
    /// Access latency in cycles (added on hit at this level).
    pub latency: u32,
}

/// Whole-hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    pub l1d: LevelConfig,
    pub l2: LevelConfig,
    /// DRAM access latency in cycles.
    pub dram_latency: u32,
    /// DRAM bandwidth in bytes per cycle (fractional allowed).
    pub dram_bytes_per_cycle: f64,
}

impl CacheConfig {
    /// A small default config for tests.
    pub fn test_tiny() -> CacheConfig {
        CacheConfig {
            l1d: LevelConfig {
                size_bytes: 1024,
                ways: 2,
                latency: 2,
            },
            l2: LevelConfig {
                size_bytes: 8192,
                ways: 4,
                latency: 10,
            },
            dram_latency: 50,
            dram_bytes_per_cycle: 4.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Level {
    /// Flat `(tag, last_use)` array, `ways` entries per set (one cache
    /// block, no per-set pointer chase on the retire path); tag 0 means
    /// empty (tags are stored +1 so tag 0 never collides with a real
    /// line).
    sets: Vec<(u64, u64)>,
    /// Per-set index of the most-recently-hit (or most-recently-filled)
    /// way: the MRU fast-hit probe checks this way before the full set
    /// scan. Pure memoization — hit/miss decisions, LRU timestamps, and
    /// victim selection are bit-identical with or without it.
    mru: Vec<u32>,
    num_sets: u64,
    ways: usize,
    latency: u32,
    accesses: u64,
    misses: u64,
    /// Hits satisfied by the MRU probe alone (no set scan).
    mru_hits: u64,
}

impl Level {
    fn new(cfg: LevelConfig) -> Level {
        let num_sets = (cfg.size_bytes / LINE_BYTES / cfg.ways as u64).max(1);
        Level {
            sets: vec![(0, 0); num_sets as usize * cfg.ways as usize],
            mru: vec![0; num_sets as usize],
            num_sets,
            ways: cfg.ways as usize,
            latency: cfg.latency,
            accesses: 0,
            misses: 0,
            mru_hits: 0,
        }
    }

    /// Access `line` (line address, i.e. byte address / 64). Returns
    /// `(hit, hit_via_mru_probe)`.
    #[inline]
    fn access(&mut self, line: u64, now: u64) -> (bool, bool) {
        self.accesses += 1;
        let set = (line % self.num_sets) as usize;
        let tag = line + 1;
        let base = set * self.ways;
        // MRU fast hit: streaming kernels touch the same line many times
        // in a row, so probe the most-recently-hit way before paying the
        // full scan. The accounting (timestamp update, hit count) is
        // exactly what the scan would have done for the same way.
        let m = self.mru[set] as usize;
        if self.sets[base + m].0 == tag {
            self.sets[base + m].1 = now;
            self.mru_hits += 1;
            return (true, true);
        }
        let ways = &mut self.sets[base..base + self.ways];
        if let Some((w, slot)) = ways.iter_mut().enumerate().find(|(_, (t, _))| *t == tag) {
            slot.1 = now;
            self.mru[set] = w as u32;
            return (true, false);
        }
        self.misses += 1;
        // Evict LRU (first minimum in way order, as before the MRU
        // probe existed — ties must resolve identically).
        let (victim_way, victim) = ways
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, (t, lu))| if *t == 0 { (0, 0) } else { (1, *lu) })
            .expect("cache has at least one way");
        *victim = (tag, now);
        self.mru[set] = victim_way as u32;
        (false, false)
    }

    fn invalidate_all(&mut self) {
        for way in &mut self.sets {
            *way = (0, 0);
        }
        for m in &mut self.mru {
            *m = 0;
        }
    }
}

/// Per-access event counts returned by [`MemorySystem::access`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemEvents {
    pub l1_accesses: u64,
    pub l1_misses: u64,
    pub l2_misses: u64,
    pub dram_bytes: u64,
    /// Miss-related stall cycles (L2/DRAM latency, bandwidth queueing).
    pub stall_cycles: u64,
    /// L1-hit latency cycles. In-order cores expose these (load-use);
    /// out-of-order schedulers hide them completely.
    pub hit_cycles: u64,
    /// L1 hits satisfied by the MRU fast probe (simulator-internal
    /// telemetry, not a PMU event; cumulative rates feed the `mru`
    /// section of `BENCH_interp.json`).
    pub l1_mru_hits: u64,
    /// L2 hits satisfied by the MRU fast probe.
    pub l2_mru_hits: u64,
}

/// The memory hierarchy attached to one core.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1d: Level,
    l2: Level,
    cfg: CacheConfig,
    /// Cycle at which DRAM can accept the next line transfer
    /// (bandwidth-limiter state), in centi-cycles.
    dram_free_at_centi: u64,
    total_dram_bytes: u64,
}

impl MemorySystem {
    /// Build the hierarchy from a config.
    pub fn new(cfg: CacheConfig) -> MemorySystem {
        MemorySystem {
            l1d: Level::new(cfg.l1d),
            l2: Level::new(cfg.l2),
            cfg,
            dram_free_at_centi: 0,
            total_dram_bytes: 0,
        }
    }

    /// Simulate a memory access at time `now_centi` (centi-cycles).
    /// Returns events including the stall penalty in whole cycles.
    ///
    /// Loads expose the full miss latency; stores retire through a store
    /// buffer and pay only bandwidth occupancy (queue delay), the way
    /// streaming stores behave on real cores — without this, a memset
    /// benchmark would measure DRAM *latency* instead of bandwidth.
    pub fn access(&mut self, mem: &MemRef, now_centi: u64) -> MemEvents {
        let mut ev = MemEvents::default();
        // Single-line fast path: the common case for scalar accesses in
        // triad/memset-style kernels is a reference that fits entirely in
        // one cache line. Skip the `for_each_line` walk (closure setup,
        // lane dedup machinery) and touch that one line directly — the
        // arithmetic is identical to the general path below.
        if mem.lanes <= 1 && mem.addr / LINE_BYTES == (mem.addr + mem.bytes as u64 - 1) / LINE_BYTES
        {
            self.access_line(mem.addr / LINE_BYTES, mem.is_store, now_centi, &mut ev);
            return ev;
        }
        mem.for_each_line(|line| {
            self.access_line(line, mem.is_store, now_centi, &mut ev);
        });
        ev
    }

    /// Walk one line address through the hierarchy, accumulating events.
    #[inline]
    fn access_line(&mut self, line: u64, is_store: bool, now_centi: u64, ev: &mut MemEvents) {
        let now = now_centi / 100;
        ev.l1_accesses += 1;
        let (l1_hit, l1_mru) = self.l1d.access(line, now);
        if l1_hit {
            ev.l1_mru_hits += l1_mru as u64;
            if !is_store {
                ev.hit_cycles += self.l1d.latency.saturating_sub(1) as u64;
            }
            return;
        }
        ev.l1_misses += 1;
        let (l2_hit, l2_mru) = self.l2.access(line, now);
        if l2_hit {
            ev.l2_mru_hits += l2_mru as u64;
            if !is_store {
                ev.stall_cycles += self.l2.latency as u64;
            }
            return;
        }
        ev.l2_misses += 1;
        ev.dram_bytes += LINE_BYTES;
        self.total_dram_bytes += LINE_BYTES;
        // Bandwidth limiter: each line occupies the DRAM channel for
        // LINE_BYTES / bytes_per_cycle cycles. The core stalls only on
        // queue backpressure (and, for loads, the access latency);
        // channel occupancy itself is pipelined.
        let occupancy_centi = (LINE_BYTES as f64 / self.cfg.dram_bytes_per_cycle * 100.0) as u64;
        let start = self.dram_free_at_centi.max(now_centi);
        self.dram_free_at_centi = start + occupancy_centi;
        let queue_delay = (start - now_centi) / 100;
        ev.stall_cycles += queue_delay;
        if !is_store {
            ev.stall_cycles += self.cfg.dram_latency as u64;
        }
    }

    /// Whole cycles until the DRAM channel drains its current backlog,
    /// as seen from `now_centi` (0 when the channel is free). Feeds the
    /// conservative event bound of [`crate::Core::fused_ready`]: queue
    /// delay is the one stall component unbounded by the platform spec.
    #[inline]
    pub fn backlog_cycles(&self, now_centi: u64) -> u64 {
        self.dram_free_at_centi.saturating_sub(now_centi) / 100 + 1
    }

    /// Drop all cached lines (used between benchmark phases).
    pub fn flush(&mut self) {
        self.l1d.invalidate_all();
        self.l2.invalidate_all();
    }

    /// Total bytes transferred from DRAM so far.
    pub fn dram_bytes_total(&self) -> u64 {
        self.total_dram_bytes
    }

    /// (accesses, misses) for L1D.
    pub fn l1d_stats(&self) -> (u64, u64) {
        (self.l1d.accesses, self.l1d.misses)
    }

    /// (accesses, misses) for L2.
    pub fn l2_stats(&self) -> (u64, u64) {
        (self.l2.accesses, self.l2.misses)
    }

    /// Cumulative L1D hits satisfied by the MRU fast probe.
    pub fn l1d_mru_hits(&self) -> u64 {
        self.l1d.mru_hits
    }

    /// Cumulative L2 hits satisfied by the MRU fast probe.
    pub fn l2_mru_hits(&self) -> u64 {
        self.l2.mru_hits
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(addr: u64) -> MemRef {
        MemRef::scalar(addr, 8, false)
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        let first = m.access(&mem(0x100), 0);
        assert_eq!(first.l1_misses, 1);
        assert_eq!(first.l2_misses, 1);
        let second = m.access(&mem(0x100), 1000);
        assert_eq!(second.l1_misses, 0);
        assert!(second.stall_cycles < first.stall_cycles);
    }

    #[test]
    fn capacity_eviction() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        // Tiny L1: 1 KiB / 64 B / 2 ways = 8 sets. Touch 64 distinct lines
        // mapping over all sets, then re-touch the first: must miss L1.
        for i in 0..64u64 {
            m.access(&mem(i * 64), i * 100);
        }
        let again = m.access(&mem(0), 100_000);
        assert_eq!(again.l1_misses, 1, "line 0 must have been evicted");
    }

    #[test]
    fn dram_bandwidth_throttles_streaming() {
        let cfg = CacheConfig {
            dram_bytes_per_cycle: 2.0,
            ..CacheConfig::test_tiny()
        };
        let mut m = MemorySystem::new(cfg);
        // Stream 100 distinct lines back-to-back at time 0: the limiter
        // must queue them: total stall >> 100 * dram_latency.
        let mut total_stall = 0;
        for i in 0..100u64 {
            let ev = m.access(&MemRef::scalar((i * 64 + 1) << 20, 8, false), 0);
            total_stall += ev.stall_cycles;
        }
        // 100 lines * 64B / 2 B/cyc = 3200 cycles of pure occupancy.
        assert!(
            total_stall >= 3200,
            "bandwidth limiter too weak: {total_stall}"
        );
    }

    #[test]
    fn flush_forgets_lines() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        m.access(&mem(0x40), 0);
        m.flush();
        let ev = m.access(&mem(0x40), 100);
        assert_eq!(ev.l1_misses, 1);
    }

    #[test]
    fn vector_access_touches_lines_once() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        let v = MemRef {
            addr: 0,
            bytes: 4,
            lanes: 8,
            stride: 4,
            is_store: false,
        };
        let ev = m.access(&v, 0);
        // 32 contiguous bytes at offset 0: one line.
        assert_eq!(ev.l1_accesses, 1);
    }

    /// The single-line fast path must agree with the general walk at the
    /// line-crossing boundary: an 8-byte scalar at offset 56 fits line 0
    /// (fast path), the same scalar at offset 60 straddles lines 0 and 1
    /// (general path) — and a fresh hierarchy driven through either
    /// sequence reports identical events to one driven line by line.
    #[test]
    fn single_line_fast_path_boundary() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        let within = m.access(&MemRef::scalar(56, 8, false), 0);
        assert_eq!(within.l1_accesses, 1, "56..64 is one line");

        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        let crossing = m.access(&MemRef::scalar(60, 8, false), 0);
        assert_eq!(crossing.l1_accesses, 2, "60..68 straddles the boundary");
        assert_eq!(crossing.l1_misses, 2);

        // Equivalence: the crossing access behaves exactly like touching
        // the two lines as separate scalar accesses at the same time.
        let mut split = MemorySystem::new(CacheConfig::test_tiny());
        let a = split.access(&MemRef::scalar(60, 4, false), 0);
        let b = split.access(&MemRef::scalar(64, 4, false), 0);
        assert_eq!(
            crossing.stall_cycles,
            a.stall_cycles + b.stall_cycles,
            "line walk arithmetic must not change at the boundary"
        );
        assert_eq!(crossing.dram_bytes, a.dram_bytes + b.dram_bytes);

        // Exactly at the last in-line offset for a 4-byte scalar.
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        assert_eq!(m.access(&MemRef::scalar(60, 4, false), 0).l1_accesses, 1);
    }

    #[test]
    fn backlog_reports_queue_drain() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        assert_eq!(m.backlog_cycles(0), 1, "free channel: rounding slack only");
        // Queue a DRAM transfer; the backlog must cover its occupancy.
        m.access(&MemRef::scalar(1 << 20, 8, false), 0);
        assert!(m.backlog_cycles(0) >= 64 / 4, "line occupancy visible");
    }

    /// The MRU fast-hit probe is pure memoization: repeated hits to one
    /// line are counted as MRU hits, and the hit/miss/eviction stream is
    /// identical to a scan-only level (pinned here by re-deriving the
    /// expected stream from the same access pattern).
    #[test]
    fn mru_probe_counts_and_stays_bit_identical() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        // Same line 3 times: 1 miss (fill sets MRU), then 2 MRU hits.
        for t in 0..3u64 {
            let ev = m.access(&mem(0x100), t * 100);
            if t > 0 {
                assert_eq!(ev.l1_mru_hits, 1, "repeat hit rides the MRU probe");
            }
        }
        assert_eq!(m.l1d_mru_hits(), 2);
        let (acc, miss) = m.l1d_stats();
        assert_eq!((acc, miss), (3, 1));

        // A conflicting line in the same set (8 sets in the tiny L1)
        // lands in the other way: hitting it is a scan hit first, an MRU
        // hit after, and flipping between the two lines never produces a
        // false MRU hit.
        let conflict = 0x100 + 8 * 64;
        m.access(&mem(conflict), 400); // miss, fills way 1, MRU -> way 1
        let back = m.access(&mem(0x100), 500); // hit via scan (MRU points at way 1)
        assert_eq!(back.l1_mru_hits, 0);
        assert_eq!(back.l1_misses, 0);
        let again = m.access(&mem(0x100), 600); // now the MRU probe hits
        assert_eq!(again.l1_mru_hits, 1);

        // Eviction order is unchanged: the LRU victim is still chosen by
        // timestamp, so after touching two fresh conflicting lines the
        // oldest line is gone.
        let third = 0x100 + 16 * 64;
        m.access(&mem(third), 700); // evicts LRU = conflict (last used 400)
        assert_eq!(m.access(&mem(0x100), 800).l1_misses, 0, "0x100 survives");
        assert_eq!(
            m.access(&mem(conflict), 900).l1_misses,
            1,
            "LRU line was evicted, as without the MRU probe"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut m = MemorySystem::new(CacheConfig::test_tiny());
        m.access(&mem(0), 0);
        m.access(&mem(0), 100);
        let (acc, miss) = m.l1d_stats();
        assert_eq!(acc, 2);
        assert_eq!(miss, 1);
        assert!(m.dram_bytes_total() >= 64);
    }
}
