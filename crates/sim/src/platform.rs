//! Platform models: the three RISC-V cores the paper surveys (Table 1)
//! plus the x86 comparison part, with identity registers, timing
//! parameters, vendor event encodings, and PMU quirks.

use crate::cache::{CacheConfig, LevelConfig};
use crate::events::HwEvent;
use crate::isa::IsaModel;
use crate::machine_op::OpClass;

/// The modeled parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// SpacemiT X60 (Banana Pi F3 / Milk-V Jupiter): in-order, RVV 1.0,
    /// overflow interrupts only on non-standard mode-cycle counters.
    SpacemitX60,
    /// T-Head C910 (Lichee Pi 4A): out-of-order, RVV 0.7.1, full
    /// Sscofpmf-style sampling, vendor kernel.
    TheadC910,
    /// SiFive U74 (VisionFive 2): in-order, no vector unit, no overflow
    /// interrupts, good upstream support.
    SifiveU74,
    /// Intel Core i5-1135G7: the paper's x86 comparison platform.
    IntelI5_1135G7,
}

impl Platform {
    /// All modeled platforms, in Table 1 order plus the x86 part.
    pub const ALL: [Platform; 4] = [
        Platform::SifiveU74,
        Platform::TheadC910,
        Platform::SpacemitX60,
        Platform::IntelI5_1135G7,
    ];

    /// The spec for this platform.
    pub fn spec(self) -> PlatformSpec {
        match self {
            Platform::SpacemitX60 => PlatformSpec::x60(),
            Platform::TheadC910 => PlatformSpec::c910(),
            Platform::SifiveU74 => PlatformSpec::u74(),
            Platform::IntelI5_1135G7 => PlatformSpec::i5_1135g7(),
        }
    }
}

/// Machine identity registers. `miniperf` detects hardware through these
/// rather than perf's event discovery (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuId {
    pub mvendorid: u64,
    pub marchid: u64,
    pub mimpid: u64,
}

/// Overflow-interrupt (Sscofpmf-style sampling) support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SscofpmfSupport {
    /// No counter can raise an overflow interrupt (SiFive U74).
    None,
    /// Every counter can (T-Head C910; x86 PMI).
    All,
    /// Only counters programmed with the non-standard mode-cycle events
    /// can (SpacemiT X60: `u/s/m_mode_cycle`; `mcycle`/`minstret` cannot).
    ModeCycleOnly,
}

/// Mainline-kernel integration level (Table 1's last row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpstreamSupport {
    Yes,
    Partial,
    No,
}

impl std::fmt::Display for UpstreamSupport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpstreamSupport::Yes => write!(f, "Yes"),
            UpstreamSupport::Partial => write!(f, "Partial"),
            UpstreamSupport::No => write!(f, "No"),
        }
    }
}

/// Vector unit description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorSpec {
    pub vlen_bits: u32,
    /// ISA label shown in Table 1 ("1.0", "0.7.1", "AVX2").
    pub version: &'static str,
}

/// Inverse throughputs per op class, in centi-cycles per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingTable {
    entries: [u32; OpClass::COUNT],
}

impl TimingTable {
    /// Inverse throughput (centi-cycles) for a class.
    pub fn inv_tp(&self, class: OpClass) -> u64 {
        self.entries[class.index()] as u64
    }

    /// The largest inverse throughput over all classes (centi-cycles) —
    /// used to bound the cycle cost of a fused retire batch up front
    /// (see [`crate::Core::fused_ready`]).
    pub fn max_inv_tp(&self) -> u64 {
        self.entries.iter().copied().max().unwrap_or(0) as u64
    }
}

/// Execution units for the out-of-order per-unit occupancy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    Int,
    Mem,
    FpVec,
    Branch,
}

impl Unit {
    /// Number of units tracked.
    pub const COUNT: usize = 4;

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            Unit::Int => 0,
            Unit::Mem => 1,
            Unit::FpVec => 2,
            Unit::Branch => 3,
        }
    }

    /// The unit an op class executes on.
    pub fn of(class: OpClass) -> Unit {
        match class {
            OpClass::IntAlu
            | OpClass::IntMul
            | OpClass::IntDiv
            | OpClass::AddrCalc
            | OpClass::Move => Unit::Int,
            OpClass::Load | OpClass::Store | OpClass::VecLoad | OpClass::VecStore => Unit::Mem,
            OpClass::FpAdd
            | OpClass::FpMul
            | OpClass::FpDiv
            | OpClass::FpFma
            | OpClass::FpCvt
            | OpClass::VecAlu
            | OpClass::VecFma
            | OpClass::VecShuffle => Unit::FpVec,
            OpClass::Branch | OpClass::CallRet => Unit::Branch,
        }
    }
}

/// Full description of a modeled platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    pub platform: Platform,
    pub name: &'static str,
    /// Board the paper associates with the core (context for reports).
    pub board: &'static str,
    pub cpu_id: CpuId,
    pub freq_hz: u64,
    pub out_of_order: bool,
    pub issue_width: u32,
    /// Fraction of memory stall cycles an OoO core hides (divisor).
    pub ooo_mem_overlap: u32,
    /// Extra cycles charged per scalar load on in-order cores
    /// (average load-use dependency exposure).
    pub load_use_penalty: u32,
    /// Fetch-redirect bubble on *taken* branches (in-order cores pay
    /// this even when predicted correctly; 0 on the OoO models).
    pub taken_branch_bubble: u32,
    pub branch_mispredict_penalty: u32,
    pub predictor_index_bits: u32,
    /// Implemented `mhpmcounter`s.
    pub num_hpm_counters: usize,
    pub caches: CacheConfig,
    pub vector: Option<VectorSpec>,
    pub sscofpmf: SscofpmfSupport,
    pub upstream_linux: UpstreamSupport,
    pub timing: TimingTable,
    /// Extra per-lane occupancy multiplier (centi-cycles) for non-unit
    /// stride vector memory ops (gather/scatter cost).
    pub strided_lane_penalty_centi: u32,
    /// PMU FP-op event overcount factor in percent (100 = exact). Models
    /// what hardware counters report vs architecturally retired FLOPs:
    /// out-of-order cores count speculatively executed and masked-lane
    /// operations, which is the methodology gap behind Intel Advisor
    /// reporting 47.72 GFLOP/s where the kernel self-reports 33 (paper
    /// §5.2, Fig. 4).
    pub fp_event_percent: u32,
    isa_kind: IsaKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IsaKind {
    Rv64gcv,
    X86_64,
}

impl PlatformSpec {
    /// Fresh ISA-expansion state for this platform.
    pub fn isa_model(&self) -> IsaModel {
        match self.isa_kind {
            IsaKind::Rv64gcv => IsaModel::rv64gcv(),
            IsaKind::X86_64 => IsaModel::x86_64(),
        }
    }

    /// Whether a counter programmed with `ev` can raise an overflow
    /// interrupt on this platform. This is the quirk matrix behind the
    /// paper's Table 1 "Overflow interrupt support" row.
    pub fn irq_capable(&self, ev: HwEvent) -> bool {
        match self.sscofpmf {
            SscofpmfSupport::None => false,
            SscofpmfSupport::All => true,
            SscofpmfSupport::ModeCycleOnly => ev.is_mode_cycle(),
        }
    }

    /// Vendor event encoding: the `mhpmevent` code for an event source.
    /// Codes are implementation-defined (paper §3.1); each platform uses
    /// a distinct synthetic encoding to keep the SBI plumbing honest.
    pub fn event_code(&self, ev: HwEvent) -> u64 {
        let base: u64 = match self.platform {
            Platform::SpacemitX60 => 0x10,
            Platform::TheadC910 => 0x40,
            Platform::SifiveU74 => 0x200,
            Platform::IntelI5_1135G7 => 0x3c00,
        };
        match ev {
            // The X60's non-standard sampling-capable counters live in a
            // separate vendor range (mirrors the vendor kernel sources the
            // paper examined).
            HwEvent::UModeCycles => base + 0x4001,
            HwEvent::SModeCycles => base + 0x4002,
            HwEvent::MModeCycles => base + 0x4003,
            HwEvent::CpuCycles => base,
            HwEvent::Instructions => base + 1,
            HwEvent::L1dAccess => base + 2,
            HwEvent::L1dMiss => base + 3,
            HwEvent::L2Miss => base + 4,
            HwEvent::Branches => base + 5,
            HwEvent::BranchMisses => base + 6,
            HwEvent::FpOps => base + 7,
            HwEvent::VecInstructions => base + 8,
            HwEvent::DramBytes => base + 9,
        }
    }

    /// Decode a vendor event code back to the event source.
    pub fn decode_event(&self, code: u64) -> Option<HwEvent> {
        HwEvent::ALL
            .iter()
            .copied()
            .find(|&ev| self.event_code(ev) == code)
    }

    /// SpacemiT X60 model (Banana Pi F3): 1.6 GHz dual-issue in-order,
    /// RVV 1.0 @ VLEN 256, DRAM calibrated to ~3.16 B/cycle (the memset
    /// figure the paper uses for the bandwidth roof).
    pub fn x60() -> PlatformSpec {
        PlatformSpec {
            platform: Platform::SpacemitX60,
            name: "SpacemiT X60",
            board: "Banana Pi F3",
            cpu_id: CpuId {
                mvendorid: 0x710,
                marchid: 0x8000_0000_5800_0001,
                mimpid: 0x0000_0000_0100_0000,
            },
            freq_hz: 1_600_000_000,
            out_of_order: false,
            issue_width: 2,
            ooo_mem_overlap: 1,
            load_use_penalty: 2,
            taken_branch_bubble: 1,
            branch_mispredict_penalty: 12,
            predictor_index_bits: 12,
            num_hpm_counters: 8,
            caches: CacheConfig {
                l1d: LevelConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    latency: 3,
                },
                l2: LevelConfig {
                    size_bytes: 512 * 1024,
                    ways: 8,
                    latency: 12,
                },
                dram_latency: 90,
                dram_bytes_per_cycle: 3.16,
            },
            vector: Some(VectorSpec {
                vlen_bits: 256,
                version: "1.0",
            }),
            sscofpmf: SscofpmfSupport::ModeCycleOnly,
            upstream_linux: UpstreamSupport::No,
            timing: TimingTable {
                entries: timing_entries(&[
                    (OpClass::IntAlu, 50),
                    (OpClass::IntMul, 100),
                    (OpClass::IntDiv, 2000),
                    (OpClass::AddrCalc, 50),
                    (OpClass::FpAdd, 100),
                    (OpClass::FpMul, 100),
                    (OpClass::FpDiv, 1800),
                    (OpClass::FpFma, 100),
                    (OpClass::FpCvt, 100),
                    (OpClass::Load, 100),
                    (OpClass::Store, 100),
                    (OpClass::VecAlu, 100),
                    (OpClass::VecFma, 100),
                    (OpClass::VecLoad, 100),
                    (OpClass::VecStore, 100),
                    (OpClass::VecShuffle, 200),
                    (OpClass::Branch, 50),
                    (OpClass::CallRet, 200),
                    (OpClass::Move, 50),
                ]),
            },
            fp_event_percent: 100,
            strided_lane_penalty_centi: 100,
            isa_kind: IsaKind::Rv64gcv,
        }
    }

    /// T-Head C910 model (Lichee Pi 4A): 2.0 GHz 3-wide out-of-order,
    /// RVV 0.7.1 @ VLEN 128, full overflow-interrupt support.
    pub fn c910() -> PlatformSpec {
        PlatformSpec {
            platform: Platform::TheadC910,
            name: "T-Head C910",
            board: "Lichee Pi 4A",
            cpu_id: CpuId {
                mvendorid: 0x5b7,
                marchid: 0x0000_0000_0910_0000,
                mimpid: 0x0000_0000_0910_0000,
            },
            freq_hz: 2_000_000_000,
            out_of_order: true,
            issue_width: 3,
            ooo_mem_overlap: 3,
            load_use_penalty: 0,
            taken_branch_bubble: 0,
            branch_mispredict_penalty: 12,
            predictor_index_bits: 13,
            num_hpm_counters: 16,
            caches: CacheConfig {
                l1d: LevelConfig {
                    size_bytes: 64 * 1024,
                    ways: 4,
                    latency: 3,
                },
                l2: LevelConfig {
                    size_bytes: 1024 * 1024,
                    ways: 16,
                    latency: 14,
                },
                dram_latency: 100,
                dram_bytes_per_cycle: 6.0,
            },
            vector: Some(VectorSpec {
                vlen_bits: 128,
                version: "0.7.1",
            }),
            sscofpmf: SscofpmfSupport::All,
            upstream_linux: UpstreamSupport::Partial,
            timing: TimingTable {
                entries: timing_entries(&[
                    (OpClass::IntAlu, 34),
                    (OpClass::IntMul, 70),
                    (OpClass::IntDiv, 1500),
                    (OpClass::AddrCalc, 34),
                    (OpClass::FpAdd, 50),
                    (OpClass::FpMul, 50),
                    (OpClass::FpDiv, 1200),
                    (OpClass::FpFma, 50),
                    (OpClass::FpCvt, 50),
                    (OpClass::Load, 50),
                    (OpClass::Store, 100),
                    (OpClass::VecAlu, 100),
                    (OpClass::VecFma, 100),
                    (OpClass::VecLoad, 100),
                    (OpClass::VecStore, 100),
                    (OpClass::VecShuffle, 150),
                    (OpClass::Branch, 50),
                    (OpClass::CallRet, 150),
                    (OpClass::Move, 34),
                ]),
            },
            fp_event_percent: 118,
            strided_lane_penalty_centi: 80,
            isa_kind: IsaKind::Rv64gcv,
        }
    }

    /// SiFive U74 model (VisionFive 2): 1.5 GHz dual-issue in-order, no
    /// vector unit, no overflow interrupts, good upstream support.
    pub fn u74() -> PlatformSpec {
        PlatformSpec {
            platform: Platform::SifiveU74,
            name: "SiFive U74",
            board: "VisionFive 2",
            cpu_id: CpuId {
                mvendorid: 0x489,
                marchid: 0x8000_0000_0000_0007,
                mimpid: 0x0000_0000_0421_0427,
            },
            freq_hz: 1_500_000_000,
            out_of_order: false,
            issue_width: 2,
            ooo_mem_overlap: 1,
            load_use_penalty: 1,
            taken_branch_bubble: 1,
            branch_mispredict_penalty: 6,
            predictor_index_bits: 11,
            num_hpm_counters: 2,
            caches: CacheConfig {
                l1d: LevelConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    latency: 2,
                },
                l2: LevelConfig {
                    size_bytes: 2 * 1024 * 1024,
                    ways: 16,
                    latency: 21,
                },
                dram_latency: 110,
                dram_bytes_per_cycle: 2.6,
            },
            vector: None,
            sscofpmf: SscofpmfSupport::None,
            upstream_linux: UpstreamSupport::Yes,
            timing: TimingTable {
                entries: timing_entries(&[
                    (OpClass::IntAlu, 50),
                    (OpClass::IntMul, 150),
                    (OpClass::IntDiv, 3000),
                    (OpClass::AddrCalc, 50),
                    (OpClass::FpAdd, 150),
                    (OpClass::FpMul, 150),
                    (OpClass::FpDiv, 2500),
                    (OpClass::FpFma, 150),
                    (OpClass::FpCvt, 100),
                    (OpClass::Load, 100),
                    (OpClass::Store, 100),
                    (OpClass::VecAlu, 100_000),
                    (OpClass::VecFma, 100_000),
                    (OpClass::VecLoad, 100_000),
                    (OpClass::VecStore, 100_000),
                    (OpClass::VecShuffle, 100_000),
                    (OpClass::Branch, 50),
                    (OpClass::CallRet, 200),
                    (OpClass::Move, 50),
                ]),
            },
            fp_event_percent: 100,
            strided_lane_penalty_centi: 200,
            isa_kind: IsaKind::Rv64gcv,
        }
    }

    /// Intel Core i5-1135G7 model: 4.2 GHz (single-core turbo)
    /// out-of-order with AVX2 (256-bit) and hardware gathers. The issue
    /// width is the *effective sustained* width (4), not the nominal
    /// decode width; the model has no other frontend constraints.
    pub fn i5_1135g7() -> PlatformSpec {
        PlatformSpec {
            platform: Platform::IntelI5_1135G7,
            name: "Intel Core i5-1135G7",
            board: "x86 laptop",
            cpu_id: CpuId {
                mvendorid: 0x8086,
                marchid: 0x806c1,
                mimpid: 0x806c1,
            },
            freq_hz: 4_200_000_000,
            out_of_order: true,
            issue_width: 4,
            ooo_mem_overlap: 5,
            load_use_penalty: 0,
            taken_branch_bubble: 0,
            branch_mispredict_penalty: 15,
            predictor_index_bits: 15,
            num_hpm_counters: 8,
            caches: CacheConfig {
                l1d: LevelConfig {
                    size_bytes: 48 * 1024,
                    ways: 12,
                    latency: 5,
                },
                l2: LevelConfig {
                    size_bytes: 1280 * 1024,
                    ways: 20,
                    latency: 13,
                },
                dram_latency: 90,
                dram_bytes_per_cycle: 12.0,
            },
            vector: Some(VectorSpec {
                vlen_bits: 256,
                version: "AVX2",
            }),
            sscofpmf: SscofpmfSupport::All,
            upstream_linux: UpstreamSupport::Yes,
            timing: TimingTable {
                entries: timing_entries(&[
                    (OpClass::IntAlu, 25),
                    (OpClass::IntMul, 33),
                    (OpClass::IntDiv, 800),
                    (OpClass::AddrCalc, 25),
                    (OpClass::FpAdd, 50),
                    (OpClass::FpMul, 50),
                    (OpClass::FpDiv, 600),
                    (OpClass::FpFma, 50),
                    (OpClass::FpCvt, 50),
                    (OpClass::Load, 50),
                    (OpClass::Store, 100),
                    (OpClass::VecAlu, 50),
                    (OpClass::VecFma, 50),
                    (OpClass::VecLoad, 50),
                    (OpClass::VecStore, 100),
                    (OpClass::VecShuffle, 100),
                    (OpClass::Branch, 50),
                    (OpClass::CallRet, 100),
                    (OpClass::Move, 25),
                ]),
            },
            fp_event_percent: 140,
            strided_lane_penalty_centi: 25,
            isa_kind: IsaKind::X86_64,
        }
    }
}

fn timing_entries(pairs: &[(OpClass, u32)]) -> [u32; OpClass::COUNT] {
    let mut entries = [100u32; OpClass::COUNT];
    for &(c, v) in pairs {
        entries[c.index()] = v;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_platforms_build() {
        for p in Platform::ALL {
            let spec = p.spec();
            assert_eq!(spec.platform, p);
            assert!(spec.freq_hz > 0);
            assert!(spec.issue_width > 0);
        }
    }

    #[test]
    fn quirk_matrix_matches_table1() {
        // U74: no overflow interrupts at all.
        let u74 = PlatformSpec::u74();
        assert!(!u74.irq_capable(HwEvent::CpuCycles));
        assert!(!u74.irq_capable(HwEvent::UModeCycles));
        // C910: everything.
        let c910 = PlatformSpec::c910();
        assert!(c910.irq_capable(HwEvent::CpuCycles));
        assert!(c910.irq_capable(HwEvent::L1dMiss));
        // X60: only the non-standard mode-cycle events.
        let x60 = PlatformSpec::x60();
        assert!(!x60.irq_capable(HwEvent::CpuCycles));
        assert!(!x60.irq_capable(HwEvent::Instructions));
        assert!(x60.irq_capable(HwEvent::UModeCycles));
        assert!(x60.irq_capable(HwEvent::SModeCycles));
        assert!(x60.irq_capable(HwEvent::MModeCycles));
    }

    #[test]
    fn vector_support_matches_table1() {
        assert!(PlatformSpec::u74().vector.is_none());
        assert_eq!(PlatformSpec::x60().vector.unwrap().version, "1.0");
        assert_eq!(PlatformSpec::c910().vector.unwrap().version, "0.7.1");
    }

    #[test]
    fn event_codes_roundtrip() {
        for p in Platform::ALL {
            let spec = p.spec();
            for ev in HwEvent::ALL {
                let code = spec.event_code(ev);
                assert_eq!(spec.decode_event(code), Some(ev), "{:?} {ev}", p);
            }
            assert_eq!(spec.decode_event(0xdead_beef), None);
        }
    }

    #[test]
    fn event_codes_differ_across_vendors() {
        let x60 = PlatformSpec::x60();
        let c910 = PlatformSpec::c910();
        assert_ne!(
            x60.event_code(HwEvent::L1dMiss),
            c910.event_code(HwEvent::L1dMiss),
            "vendor event spaces must differ (they are implementation-defined)"
        );
    }

    #[test]
    fn x60_bandwidth_matches_memset_figure() {
        let x60 = PlatformSpec::x60();
        let gbps = x60.caches.dram_bytes_per_cycle * x60.freq_hz as f64 / 1e9;
        assert!(
            (gbps - 5.056).abs() < 0.1,
            "3.16 B/c * 1.6 GHz ≈ 5.06 GB/s raw: {gbps}"
        );
    }

    #[test]
    fn x60_theoretical_vector_peak_is_25_6_gflops() {
        // 1 vfma/cycle × 8 SP lanes × 2 flops × 1.6 GHz = 25.6 GFLOP/s.
        let x60 = PlatformSpec::x60();
        let fma_per_cycle = 100.0 / x60.timing.inv_tp(OpClass::VecFma) as f64;
        let lanes = (x60.vector.unwrap().vlen_bits / 32) as f64;
        let gflops = fma_per_cycle * lanes * 2.0 * x60.freq_hz as f64 / 1e9;
        assert!((gflops - 25.6).abs() < 0.01, "{gflops}");
    }

    #[test]
    fn unit_mapping_covers_all_classes() {
        // Every class maps to a unit without panicking.
        for c in [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::AddrCalc,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::FpFma,
            OpClass::FpCvt,
            OpClass::Load,
            OpClass::Store,
            OpClass::VecAlu,
            OpClass::VecFma,
            OpClass::VecLoad,
            OpClass::VecStore,
            OpClass::VecShuffle,
            OpClass::Branch,
            OpClass::CallRet,
            OpClass::Move,
        ] {
            let _ = Unit::of(c);
        }
    }

    #[test]
    fn cpu_ids_are_distinct() {
        let mut ids: Vec<u64> = Platform::ALL
            .iter()
            .map(|p| p.spec().cpu_id.mvendorid)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
