//! ISA expansion models: how many target instructions one machine op
//! retires as.
//!
//! A MIR-level operation maps to a different number of retired
//! instructions per ISA — RISC-V needs explicit address arithmetic where
//! x86 folds it into addressing modes, while x86 two-operand destructive
//! encodings, register pressure, and CISC decomposition inflate its
//! dynamic count on branchy integer code. Real ratios come from real
//! compilers; these tables are *calibrated inputs* (see DESIGN.md §5) so
//! that the sqlite workload reproduces Table 2's ~1.8× x86/RISC-V
//! retired-instruction ratio. The claim the reproduction makes is about
//! IPC and hotspot shape, not about deriving codegen from first
//! principles.

use crate::machine_op::OpClass;

/// Per-class instruction expansion (fixed-point: units of 1/8 instruction,
/// accumulated deterministically so long runs hit the exact ratio).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaModel {
    /// Human-readable ISA name.
    pub name: &'static str,
    /// Expansion numerators in eighths (8 = exactly one instruction).
    eighths: [u16; OpClass::COUNT],
    /// Deterministic rounding accumulators per class.
    acc: [u16; OpClass::COUNT],
}

impl OpClass {
    /// Number of op classes (table size).
    pub const COUNT: usize = 19;

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::AddrCalc => 3,
            OpClass::FpAdd => 4,
            OpClass::FpMul => 5,
            OpClass::FpDiv => 6,
            OpClass::FpFma => 7,
            OpClass::FpCvt => 8,
            OpClass::Load => 9,
            OpClass::Store => 10,
            OpClass::VecAlu => 11,
            OpClass::VecFma => 12,
            OpClass::VecLoad => 13,
            OpClass::VecStore => 14,
            OpClass::VecShuffle => 15,
            OpClass::Branch => 16,
            OpClass::CallRet => 17,
            OpClass::Move => 18,
        }
    }
}

impl IsaModel {
    /// RV64GCV-style expansion: essentially 1:1 (MIR is RISC-shaped), with
    /// call overhead for save/restore sequences.
    pub fn rv64gcv() -> IsaModel {
        let mut eighths = [8u16; OpClass::COUNT];
        eighths[OpClass::CallRet.index()] = 24; // call + save/restore ≈ 3
        IsaModel {
            name: "rv64gcv",
            eighths,
            acc: [0; OpClass::COUNT],
        }
    }

    /// x86-64 expansion, calibrated for the Table 2 instruction ratio:
    /// address math folds into addressing modes (0), but ALU-heavy
    /// interpreter code expands (two-operand destructive ops, flag
    /// management, spills).
    pub fn x86_64() -> IsaModel {
        let mut eighths = [8u16; OpClass::COUNT];
        eighths[OpClass::AddrCalc.index()] = 0; // folded into [base+idx*s]
        eighths[OpClass::IntAlu.index()] = 20; // 2.5 retired per MIR ALU op
        eighths[OpClass::Move.index()] = 16; // extra reg-reg traffic
        eighths[OpClass::Load.index()] = 12;
        eighths[OpClass::Store.index()] = 12;
        eighths[OpClass::Branch.index()] = 16; // cmp+jcc pairs
        eighths[OpClass::CallRet.index()] = 32;
        IsaModel {
            name: "x86_64",
            eighths,
            acc: [0; OpClass::COUNT],
        }
    }

    /// Expansion for one op of `class`: how many instructions retire now.
    /// Deterministic accumulator rounding: over N ops the total
    /// approaches `N * eighths/8` exactly.
    pub fn expand(&mut self, class: OpClass) -> u32 {
        let i = class.index();
        let total = self.acc[i] + self.eighths[i];
        let whole = total / 8;
        self.acc[i] = total % 8;
        whole as u32
    }

    /// The average expansion factor for a class (as a float, for reports).
    pub fn factor(&self, class: OpClass) -> f64 {
        self.eighths[class.index()] as f64 / 8.0
    }

    /// Upper bound on the instructions any single op can expand to
    /// (ceiling of the largest per-class factor) — used to bound a fused
    /// retire batch's event total (see [`crate::Core::fused_ready`]).
    pub fn max_expansion(&self) -> u64 {
        let max_eighths = self.eighths.iter().copied().max().unwrap_or(8) as u64;
        max_eighths.div_ceil(8)
    }

    /// Reset rounding accumulators (between measurement phases).
    pub fn reset(&mut self) {
        self.acc = [0; OpClass::COUNT];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riscv_is_mostly_one_to_one() {
        let mut isa = IsaModel::rv64gcv();
        assert_eq!(isa.expand(OpClass::IntAlu), 1);
        assert_eq!(isa.expand(OpClass::Load), 1);
        assert_eq!(isa.expand(OpClass::CallRet), 3);
    }

    #[test]
    fn x86_folds_address_math() {
        let mut isa = IsaModel::x86_64();
        for _ in 0..10 {
            assert_eq!(isa.expand(OpClass::AddrCalc), 0);
        }
    }

    #[test]
    fn fractional_expansion_accumulates_exactly() {
        let mut isa = IsaModel::x86_64();
        // IntAlu = 20/8 = 2.5: over 8 ops exactly 20 instructions.
        let total: u32 = (0..8).map(|_| isa.expand(OpClass::IntAlu)).sum();
        assert_eq!(total, 20);
        // Load = 12/8 = 1.5: over 4 ops exactly 6.
        isa.reset();
        let total: u32 = (0..4).map(|_| isa.expand(OpClass::Load)).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn factor_reports_average() {
        let isa = IsaModel::x86_64();
        assert!((isa.factor(OpClass::IntAlu) - 2.5).abs() < 1e-9);
        assert!((isa.factor(OpClass::AddrCalc)).abs() < 1e-9);
    }
}
