//! Hardware event sources the simulated PMUs can count.

/// A microarchitectural event source. Vendors expose these through
/// implementation-specific `mhpmevent` codes (see
/// [`crate::platform::PlatformSpec::event_code`] for the per-platform
/// encodings); this enum is the simulator-internal identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HwEvent {
    /// Processor clock cycles (the `mcycle` source).
    CpuCycles,
    /// Instructions retired (the `minstret` source).
    Instructions,
    /// L1 data-cache accesses.
    L1dAccess,
    /// L1 data-cache misses.
    L1dMiss,
    /// L2 (last-level) cache misses.
    L2Miss,
    /// Retired branch instructions.
    Branches,
    /// Mispredicted branches.
    BranchMisses,
    /// Scalar + vector floating-point operations (per lane; FMA = 2).
    /// This is the event an Advisor-style PMU methodology would use.
    FpOps,
    /// Retired vector instructions.
    VecInstructions,
    /// Bytes transferred from/to DRAM.
    DramBytes,
    /// Cycles spent in User mode (SpacemiT X60 non-standard counter
    /// `u_mode_cycle`; supports overflow sampling on that core).
    UModeCycles,
    /// Cycles spent in Supervisor mode (`s_mode_cycle`).
    SModeCycles,
    /// Cycles spent in Machine mode (`m_mode_cycle`).
    MModeCycles,
}

impl HwEvent {
    /// All event sources (useful for tables and property tests).
    pub const ALL: [HwEvent; 13] = [
        HwEvent::CpuCycles,
        HwEvent::Instructions,
        HwEvent::L1dAccess,
        HwEvent::L1dMiss,
        HwEvent::L2Miss,
        HwEvent::Branches,
        HwEvent::BranchMisses,
        HwEvent::FpOps,
        HwEvent::VecInstructions,
        HwEvent::DramBytes,
        HwEvent::UModeCycles,
        HwEvent::SModeCycles,
        HwEvent::MModeCycles,
    ];

    /// Whether this is one of the SpacemiT X60's non-standard mode-cycle
    /// events (the sampling-capable counters behind the paper's
    /// workaround).
    pub fn is_mode_cycle(self) -> bool {
        matches!(
            self,
            HwEvent::UModeCycles | HwEvent::SModeCycles | HwEvent::MModeCycles
        )
    }

    /// Short stable name (used in reports and CSV output).
    pub fn name(self) -> &'static str {
        match self {
            HwEvent::CpuCycles => "cycles",
            HwEvent::Instructions => "instructions",
            HwEvent::L1dAccess => "l1d-access",
            HwEvent::L1dMiss => "l1d-miss",
            HwEvent::L2Miss => "l2-miss",
            HwEvent::Branches => "branches",
            HwEvent::BranchMisses => "branch-misses",
            HwEvent::FpOps => "fp-ops",
            HwEvent::VecInstructions => "vec-instructions",
            HwEvent::DramBytes => "dram-bytes",
            HwEvent::UModeCycles => "u-mode-cycles",
            HwEvent::SModeCycles => "s-mode-cycles",
            HwEvent::MModeCycles => "m-mode-cycles",
        }
    }
}

impl std::fmt::Display for HwEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A bundle of per-retire event deltas, accumulated by the core and fed to
/// the PMU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventDeltas {
    pub cycles: u64,
    pub instructions: u64,
    pub l1d_access: u64,
    pub l1d_miss: u64,
    pub l2_miss: u64,
    pub branches: u64,
    pub branch_misses: u64,
    pub fp_ops: u64,
    pub vec_instructions: u64,
    pub dram_bytes: u64,
}

impl EventDeltas {
    /// Sum of every delta field. This upper-bounds the advance of *any*
    /// single counter for this step (each counter observes exactly one
    /// event source), which is what the PMU's exact-overflow watermark
    /// compares against — see [`crate::pmu::Pmu::tick_batched`].
    #[inline]
    pub fn total(&self) -> u64 {
        self.cycles
            + self.instructions
            + self.l1d_access
            + self.l1d_miss
            + self.l2_miss
            + self.branches
            + self.branch_misses
            + self.fp_ops
            + self.vec_instructions
            + self.dram_bytes
    }

    /// Component-wise accumulate (the PMU's pending-delta batch).
    #[inline]
    pub fn accumulate(&mut self, other: &EventDeltas) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.l1d_access += other.l1d_access;
        self.l1d_miss += other.l1d_miss;
        self.l2_miss += other.l2_miss;
        self.branches += other.branches;
        self.branch_misses += other.branch_misses;
        self.fp_ops += other.fp_ops;
        self.vec_instructions += other.vec_instructions;
        self.dram_bytes += other.dram_bytes;
    }

    /// The delta for one event source, given the current privilege mode's
    /// share of cycles (mode-cycle events count `cycles` when the core is
    /// in the matching mode and 0 otherwise).
    pub fn get(&self, ev: HwEvent, mode: crate::core::PrivMode) -> u64 {
        use crate::core::PrivMode;
        match ev {
            HwEvent::CpuCycles => self.cycles,
            HwEvent::Instructions => self.instructions,
            HwEvent::L1dAccess => self.l1d_access,
            HwEvent::L1dMiss => self.l1d_miss,
            HwEvent::L2Miss => self.l2_miss,
            HwEvent::Branches => self.branches,
            HwEvent::BranchMisses => self.branch_misses,
            HwEvent::FpOps => self.fp_ops,
            HwEvent::VecInstructions => self.vec_instructions,
            HwEvent::DramBytes => self.dram_bytes,
            HwEvent::UModeCycles => {
                if mode == PrivMode::User {
                    self.cycles
                } else {
                    0
                }
            }
            HwEvent::SModeCycles => {
                if mode == PrivMode::Supervisor {
                    self.cycles
                } else {
                    0
                }
            }
            HwEvent::MModeCycles => {
                if mode == PrivMode::Machine {
                    self.cycles
                } else {
                    0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::PrivMode;

    #[test]
    fn mode_cycle_classification() {
        assert!(HwEvent::UModeCycles.is_mode_cycle());
        assert!(!HwEvent::CpuCycles.is_mode_cycle());
    }

    #[test]
    fn deltas_respect_privilege_mode() {
        let d = EventDeltas {
            cycles: 10,
            ..EventDeltas::default()
        };
        assert_eq!(d.get(HwEvent::UModeCycles, PrivMode::User), 10);
        assert_eq!(d.get(HwEvent::UModeCycles, PrivMode::Machine), 0);
        assert_eq!(d.get(HwEvent::MModeCycles, PrivMode::Machine), 10);
        assert_eq!(d.get(HwEvent::CpuCycles, PrivMode::Machine), 10);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = HwEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HwEvent::ALL.len());
    }
}
