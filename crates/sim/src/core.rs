//! The simulated core: retires machine ops, advances the timing model,
//! drives caches/branch prediction, and ticks the PMU.

use crate::branch::BranchPredictor;
use crate::cache::MemorySystem;
use crate::csr::{Csr, CsrError};
use crate::events::EventDeltas;
use crate::isa::IsaModel;
use crate::machine_op::{MachineOp, OpClass};
use crate::platform::{PlatformSpec, Unit};
use crate::pmu::Pmu;

/// Maximum ops one fused retire batch may contain — the shape the
/// precomputed conservative event bound ([`Core::fused_ready`]) is
/// sound for. The decode-time fusion pass caps its site width
/// (`MAX_FUSE_WIDTH` in `mperf-vm`) at this value.
pub const MAX_FUSED_BATCH: usize = 6;

/// RISC-V privilege modes (the x86 model reuses User/Supervisor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivMode {
    User,
    Supervisor,
    Machine,
}

/// Result of retiring one machine op.
#[derive(Debug, Clone, Default)]
pub struct RetireInfo {
    /// Whole cycles the core advanced.
    pub cycles: u64,
    /// Instructions retired (ISA expansion applied).
    pub instructions: u64,
    /// Bitmask of PMU counters whose overflow interrupt fired.
    pub overflow: u32,
}

/// Deferred-retire accumulator for one superblock: ops apply their
/// timing/cache/branch effects immediately (so `Core::cycles` stays
/// exact mid-block) while their PMU event deltas accumulate here, to be
/// ticked once by [`Core::retire_block`]. Armed in place by
/// [`Core::block_begin_in`]; guard the whole block with
/// [`Core::block_ready`] first so the single combined tick cannot wrap
/// a counter.
#[derive(Debug, Clone, Default)]
pub struct BlockAcc {
    /// Commit time at block entry (centi-cycles).
    start_centi: u64,
    /// Instruction events from the scalar class lanes
    /// ([`Core::block_apply_class`]/[`Core::block_apply_classes`]) — the
    /// dominant case, kept out of the full [`EventDeltas`] bundle so an
    /// all-ALU block touches two words, not twelve.
    instructions: u64,
    /// Whether any applied op carried events beyond cycles/instructions
    /// (memory, branch, FP, vector) — selects the PMU tick lane, and
    /// marks `deltas` dirty (reset lazily by [`Core::block_begin_in`]).
    complex: bool,
    deltas: EventDeltas,
}

/// One simulated hart.
#[derive(Debug, Clone)]
pub struct Core {
    pub spec: PlatformSpec,
    pub csr: Csr,
    pmu: Pmu,
    mem: MemorySystem,
    bp: BranchPredictor,
    isa: IsaModel,
    mode: PrivMode,
    /// Committed time in centi-cycles (in-order accumulator).
    centi: u64,
    /// Out-of-order per-unit occupancy accumulators (centi-cycles).
    unit_busy: [u64; Unit::COUNT],
    /// Issue-slot accumulator (centi-cycles).
    slots: u64,
    retired: u64,
    /// Centi-cycles one issue slot costs (`100 / issue_width`, floored at
    /// 1) — precomputed off the retire path.
    slot_unit: u64,
    /// Precomputed conservative event-total bound for one fused retire
    /// batch (≤ [`MAX_FUSED_BATCH`] ops, ≤ 1 scalar ≤ 2-line memory
    /// reference, ≤ 1 branch, no vector ops), *excluding* the DRAM queue
    /// backlog which is added dynamically — see [`Core::fused_ready`].
    fused_ub_static: u64,
    /// Like `fused_ub_static` but for memory-free batches (ALU/branch
    /// only): no cache/DRAM terms and no backlog needed, so the probe is
    /// a single compare — see [`Core::fused_ready_nomem`].
    fused_ub_nomem: u64,
    /// Per-unit conservative event bounds for superblock retire
    /// ([`Core::block_ready`]): events+cycles per machine op, …
    block_op_ub: u64,
    /// … extra per scalar (≤ 2-line) memory reference (static part; the
    /// DRAM queue backlog is added dynamically), …
    block_mem_ub: u64,
    /// … extra per branch, …
    block_branch_ub: u64,
    /// … FP-event multiplier per architectural FLOP, …
    block_fp_ub: u64,
    /// … and the per-line DRAM channel occupancy bound.
    block_occ_ub: u64,
}

impl Core {
    /// Power on a core for `spec`.
    pub fn new(spec: PlatformSpec) -> Core {
        let isa = spec.isa_model();
        let slot_unit = (100 / spec.issue_width as u64).max(1);
        Core {
            csr: Csr::new(spec.cpu_id),
            pmu: Pmu::new(spec.num_hpm_counters),
            mem: MemorySystem::new(spec.caches),
            bp: BranchPredictor::new(spec.predictor_index_bits),
            mode: PrivMode::User,
            centi: 0,
            unit_busy: [0; Unit::COUNT],
            slots: 0,
            retired: 0,
            slot_unit,
            fused_ub_static: fused_ub_static(&spec, &isa, slot_unit, true),
            fused_ub_nomem: fused_ub_static(&spec, &isa, slot_unit, false),
            block_op_ub: block_op_ub(&spec, &isa, slot_unit),
            block_mem_ub: block_mem_ub(&spec),
            block_branch_ub: block_branch_ub(&spec),
            block_fp_ub: spec.fp_event_percent as u64 / 100 + 1,
            block_occ_ub: Core::dram_occupancy_bound(&spec.caches),
            isa,
            spec,
        }
    }

    /// Current privilege mode.
    pub fn mode(&self) -> PrivMode {
        self.mode
    }

    /// Switch privilege mode (ecall/sret boundaries in the SBI layer).
    pub fn set_mode(&mut self, mode: PrivMode) {
        self.mode = mode;
    }

    /// Committed whole cycles since power-on.
    pub fn cycles(&self) -> u64 {
        self.current_centi() / 100
    }

    /// Instructions retired since power-on.
    pub fn instructions(&self) -> u64 {
        self.retired
    }

    /// Shared PMU access (the SBI layer programs it through CSRs; tools
    /// read it through this for assertions).
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// Mutable PMU access for the firmware layer.
    pub fn pmu_mut(&mut self) -> &mut Pmu {
        &mut self.pmu
    }

    /// Toggle the PMU's batched tick path (on by default; identical
    /// observable behaviour — see [`Pmu::set_batched`]).
    pub fn set_pmu_batching(&mut self, on: bool) {
        self.pmu.set_batched(on);
    }

    /// Memory-hierarchy statistics access.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Flush caches and reset the branch predictor (between benchmark
    /// phases; the PMU and clocks are *not* reset).
    pub fn reset_microarch(&mut self) {
        self.mem.flush();
        self.bp.reset();
    }

    /// Read a CSR at the current privilege mode.
    ///
    /// # Errors
    /// Propagates [`CsrError`] (illegal instruction) on privilege or
    /// decode failures.
    pub fn csr_read(&self, addr: u16) -> Result<u64, CsrError> {
        self.csr.read(addr, self.mode, &self.pmu)
    }

    /// Read a CSR as if in `mode` (the firmware runs in M-mode while the
    /// core state says otherwise during a trap; this keeps the model
    /// simple without a full trap unit).
    pub fn csr_read_as(&self, addr: u16, mode: PrivMode) -> Result<u64, CsrError> {
        self.csr.read(addr, mode, &self.pmu)
    }

    /// Write a CSR as if in `mode`.
    ///
    /// # Errors
    /// Propagates [`CsrError`] on privilege or decode failures.
    pub fn csr_write_as(&mut self, addr: u16, value: u64, mode: PrivMode) -> Result<(), CsrError> {
        self.csr.write(addr, value, mode, &mut self.pmu)
    }

    fn current_centi(&self) -> u64 {
        if self.spec.out_of_order {
            let unit_max = self.unit_busy.iter().copied().max().unwrap_or(0);
            self.centi.max(unit_max).max(self.slots)
        } else {
            self.centi
        }
    }

    /// Retire one machine op: advance time, count events, tick the PMU.
    #[inline]
    pub fn retire(&mut self, op: &MachineOp) -> RetireInfo {
        // The dominant op shape (scalar ALU/move/addr/call classes: no
        // memory reference, no branch bookkeeping, no FLOPs, no
        // vec-instruction event) takes a slimmer path that skips the
        // full event bundle; identical arithmetic.
        if op.mem.is_none()
            && op.flops == 0
            && !matches!(op.class, OpClass::Branch)
            && !op.is_vector()
        {
            return self.retire_simple(op);
        }
        self.retire_full(op)
    }

    /// Fast path for non-memory, non-branch, non-FP ops.
    fn retire_simple(&mut self, op: &MachineOp) -> RetireInfo {
        let before = self.current_centi();
        let expansion = self.isa.expand(op.class);
        let inv_tp = self.spec.timing.inv_tp(op.class);
        let slot_cost = self.slot_unit * expansion.max(1) as u64;

        if self.spec.out_of_order {
            let unit = Unit::of(op.class);
            self.unit_busy[unit.index()] += inv_tp;
            self.slots += slot_cost;
        } else {
            self.centi += inv_tp.max(slot_cost);
        }

        let after = self.current_centi();
        let cycles = after / 100 - before / 100;
        self.retired += expansion as u64;

        let overflow = self
            .pmu
            .tick_batched_simple(cycles, expansion as u64, self.mode);
        RetireInfo {
            cycles,
            instructions: expansion as u64,
            overflow,
        }
    }

    fn retire_full(&mut self, op: &MachineOp) -> RetireInfo {
        let before = self.current_centi();
        let mut deltas = EventDeltas::default();
        self.apply_op(op, &mut deltas);
        deltas.cycles = self.current_centi() / 100 - before / 100;
        let overflow = self.pmu.tick_batched(&deltas, self.mode);
        RetireInfo {
            cycles: deltas.cycles,
            instructions: deltas.instructions,
            overflow,
        }
    }

    /// The tick-free, cycle-free body of one retire: advance the timing
    /// model, drive caches and branch prediction, and *accumulate* this
    /// op's non-cycle event deltas into `deltas` — without touching the
    /// PMU. Applying N ops in order and computing the cycle delta once is
    /// exactly N per-op retires: per-op cycle deltas telescope
    /// (`Σ (afterᵢ − beforeᵢ) = after_N − before_0`) and event counts are
    /// additive — the foundation of [`Core::retire_fused`]. Returns
    /// `true` when the op took the slim path (no events beyond
    /// cycles/instructions).
    #[inline]
    fn apply_op(&mut self, op: &MachineOp, deltas: &mut EventDeltas) -> bool {
        let expansion = self.isa.expand(op.class);
        let inv_tp = self.spec.timing.inv_tp(op.class);
        let slot_cost = self.slot_unit * expansion.max(1) as u64;
        deltas.instructions += expansion as u64;
        self.retired += expansion as u64;

        // The dominant shape (no memory, no branch, no FLOPs, no vector
        // event) skips the full event bundle; identical arithmetic to
        // the slow path below with every extra term zero.
        if op.mem.is_none()
            && op.flops == 0
            && !matches!(op.class, OpClass::Branch)
            && !op.is_vector()
        {
            if self.spec.out_of_order {
                self.unit_busy[Unit::of(op.class).index()] += inv_tp;
                self.slots += slot_cost;
            } else {
                self.centi += inv_tp.max(slot_cost);
            }
            return true;
        }

        let before = self.current_centi();
        if op.flops != 0 {
            // The PMU event applies the platform's overcount model
            // (speculation, masked lanes); see `fp_event_percent`.
            deltas.fp_ops += op.flops as u64 * self.spec.fp_event_percent as u64 / 100;
        }
        if op.is_vector() && expansion > 0 {
            deltas.vec_instructions += expansion as u64;
        }

        // Branch handling. A mispredict serializes the whole pipeline:
        // on the out-of-order model it becomes a floor on commit time
        // rather than occupancy on one unit.
        let mut stall_centi = 0u64;
        let mut mispredicted = false;
        if matches!(op.class, OpClass::Branch) {
            deltas.branches += 1;
            if op.taken {
                stall_centi += self.spec.taken_branch_bubble as u64 * 100;
            }
            if !self.bp.predict_and_update(op.pc, op.taken) {
                deltas.branch_misses += 1;
                mispredicted = true;
                if !self.spec.out_of_order {
                    stall_centi += self.spec.branch_mispredict_penalty as u64 * 100;
                }
            }
        }

        // Memory handling.
        if let Some(mem) = &op.mem {
            let ev = self.mem.access(mem, before);
            deltas.l1d_access += ev.l1_accesses;
            deltas.l1d_miss += ev.l1_misses;
            deltas.l2_miss += ev.l2_misses;
            deltas.dram_bytes += ev.dram_bytes;
            let miss_raw = ev.stall_cycles * 100;
            stall_centi += if self.spec.out_of_order {
                // L1-hit latency is fully hidden by the scheduler; miss
                // latency partially overlaps.
                miss_raw / self.spec.ooo_mem_overlap as u64
            } else {
                miss_raw + ev.hit_cycles * 100 + self.spec.load_use_penalty as u64 * 100
            };
            // Strided vector memory ops occupy the memory unit longer.
            if mem.lanes > 1 && !mem.is_unit_stride() {
                stall_centi += self.spec.strided_lane_penalty_centi as u64 * mem.lanes as u64;
            }
        }

        // Advance the clock model.
        if self.spec.out_of_order {
            let unit = Unit::of(op.class);
            self.unit_busy[unit.index()] += inv_tp + stall_centi;
            self.slots += slot_cost;
            if mispredicted {
                // Pipeline restart: every accumulator jumps to the
                // mispredict resolution point.
                let floor = self.current_centi() + self.spec.branch_mispredict_penalty as u64 * 100;
                self.centi = self.centi.max(floor);
                for u in &mut self.unit_busy {
                    *u = (*u).max(floor);
                }
                self.slots = self.slots.max(floor);
            }
        } else {
            self.centi += inv_tp.max(slot_cost) + stall_centi;
        }

        false
    }

    /// Whether the next fused batch (≤ [`MAX_FUSED_BATCH`] ops, ≤ 1
    /// scalar memory reference, ≤ 1 branch, no vector ops — the shapes
    /// the decode-time fusion pass emits) is guaranteed not to wrap any
    /// PMU counter, so it may retire through [`Core::retire_fused`] as
    /// one batched tick.
    ///
    /// The probe compares a conservative event-total upper bound
    /// (precomputed from the platform spec, plus the current DRAM queue
    /// backlog — the one component unbounded by the spec) against the
    /// PMU's distance-to-overflow watermark. `false` means a counter is
    /// near wrapping (or PMU batching is disabled): the caller must fall
    /// back to per-op [`Core::retire`] so the overflow interrupt is
    /// attributed to exactly the op that wraps — the same exactness rule
    /// the watermark enforces for single-op batching.
    #[inline]
    pub fn fused_ready(&mut self) -> bool {
        let ub = self.fused_ub_static + 2 * self.mem.backlog_cycles(self.current_centi());
        let mode = self.mode;
        self.pmu.batch_headroom(ub, mode)
    }

    /// [`Core::fused_ready`] for memory-free batches (compare-and-branch,
    /// bin+copy): the event bound has no cache/DRAM terms, so no backlog
    /// probe is needed — in steady state this is one compare.
    #[inline]
    pub fn fused_ready_nomem(&mut self) -> bool {
        let ub = self.fused_ub_nomem;
        let mode = self.mode;
        self.pmu.batch_headroom(ub, mode)
    }

    /// Retire a memory-free, branch-free, FLOP-free fused batch given
    /// just its constituent op classes — no [`MachineOp`]s are built.
    /// Arithmetic-identical to retiring each class through
    /// [`Core::retire`] (the slim path all such ops take), with the
    /// per-op cycle deltas telescoped into one and a single scalar PMU
    /// tick. Guard with [`Core::fused_ready_nomem`].
    ///
    /// This and [`Core::retire_fused_branch`] intentionally duplicate
    /// [`Core::apply_op`]'s timing arithmetic: skipping `MachineOp`
    /// construction and the full `EventDeltas` bundle is what makes the
    /// fused fast path actually faster than per-op retire. A timing
    /// change in `apply_op` must be mirrored here — the
    /// `specialized_fused_retires_match_per_op` test pins all three
    /// sites to per-op behaviour on every platform model.
    #[inline]
    pub fn retire_fused_simple(&mut self, classes: &[OpClass]) -> RetireInfo {
        let start = self.current_centi();
        let mut instr = 0u64;
        for &class in classes {
            let expansion = self.isa.expand(class);
            let inv_tp = self.spec.timing.inv_tp(class);
            let slot_cost = self.slot_unit * expansion.max(1) as u64;
            if self.spec.out_of_order {
                self.unit_busy[Unit::of(class).index()] += inv_tp;
                self.slots += slot_cost;
            } else {
                self.centi += inv_tp.max(slot_cost);
            }
            instr += expansion as u64;
        }
        self.retired += instr;
        let cycles = self.current_centi() / 100 - start / 100;
        let overflow = self.pmu.tick_batched_simple(cycles, instr, self.mode);
        debug_assert_eq!(
            overflow, 0,
            "guard retire_fused_simple with fused_ready_nomem"
        );
        RetireInfo {
            cycles,
            instructions: instr,
            overflow,
        }
    }

    /// Retire a fused branch-ending shape: the memory-free, branch-free
    /// `prefix` classes (scalar ALU constituents plus any elided-copy
    /// `Move`s, in stream order) followed by one branch at `pc` with
    /// outcome `taken`. Mirrors the per-op arithmetic (predictor update,
    /// taken bubble, mispredict penalty / pipeline-restart floor) with
    /// one combined PMU tick. Guard with [`Core::fused_ready_nomem`].
    /// Shares [`Core::retire_fused_simple`]'s duplication contract with
    /// `apply_op` (see its docs).
    pub fn retire_fused_branch(&mut self, prefix: &[OpClass], pc: u64, taken: bool) -> RetireInfo {
        let start = self.current_centi();
        let mut instr = 0u64;
        for &class in prefix {
            let expansion = self.isa.expand(class);
            let inv_tp = self.spec.timing.inv_tp(class);
            let slot_cost = self.slot_unit * expansion.max(1) as u64;
            if self.spec.out_of_order {
                self.unit_busy[Unit::of(class).index()] += inv_tp;
                self.slots += slot_cost;
            } else {
                self.centi += inv_tp.max(slot_cost);
            }
            instr += expansion as u64;
        }
        // The branch constituent (mirrors `apply_op`'s Branch handling).
        let expansion = self.isa.expand(OpClass::Branch);
        let inv_tp = self.spec.timing.inv_tp(OpClass::Branch);
        let slot_cost = self.slot_unit * expansion.max(1) as u64;
        let mut stall_centi = 0u64;
        let mut misses = 0u64;
        let mut mispredicted = false;
        if taken {
            stall_centi += self.spec.taken_branch_bubble as u64 * 100;
        }
        if !self.bp.predict_and_update(pc, taken) {
            misses = 1;
            mispredicted = true;
            if !self.spec.out_of_order {
                stall_centi += self.spec.branch_mispredict_penalty as u64 * 100;
            }
        }
        if self.spec.out_of_order {
            self.unit_busy[Unit::of(OpClass::Branch).index()] += inv_tp + stall_centi;
            self.slots += slot_cost;
            if mispredicted {
                let floor = self.current_centi() + self.spec.branch_mispredict_penalty as u64 * 100;
                self.centi = self.centi.max(floor);
                for u in &mut self.unit_busy {
                    *u = (*u).max(floor);
                }
                self.slots = self.slots.max(floor);
            }
        } else {
            self.centi += inv_tp.max(slot_cost) + stall_centi;
        }
        instr += expansion as u64;
        self.retired += instr;
        let cycles = self.current_centi() / 100 - start / 100;
        let deltas = EventDeltas {
            cycles,
            instructions: instr,
            branches: 1,
            branch_misses: misses,
            ..EventDeltas::default()
        };
        let overflow = self.pmu.tick_batched(&deltas, self.mode);
        debug_assert_eq!(
            overflow, 0,
            "guard retire_fused_branch with fused_ready_nomem"
        );
        RetireInfo {
            cycles,
            instructions: instr,
            overflow,
        }
    }

    /// Retire a fused superinstruction: apply every constituent op's
    /// timing/cache/branch effects *in order* (identical arithmetic to N
    /// [`Core::retire`] calls), then tick the PMU once with the combined
    /// deltas. Callers must check [`Core::fused_ready`] first — under
    /// that guard the combined tick cannot wrap a counter, so skipping
    /// the per-op ticks is observably exact (counters additive, cycles
    /// telescoping, no overflow to attribute).
    pub fn retire_fused(&mut self, ops: &[MachineOp]) -> RetireInfo {
        let before = self.current_centi();
        let mut deltas = EventDeltas::default();
        let mut all_simple = true;
        for op in ops {
            all_simple &= self.apply_op(op, &mut deltas);
        }
        let cycles = self.current_centi() / 100 - before / 100;
        deltas.cycles = cycles;
        // All-ALU batches (bin+copy and friends) carry only
        // cycle/instruction events: take the PMU's scalar fast lane.
        let overflow = if all_simple {
            self.pmu
                .tick_batched_simple(cycles, deltas.instructions, self.mode)
        } else {
            self.pmu.tick_batched(&deltas, self.mode)
        };
        debug_assert_eq!(
            overflow, 0,
            "retire_fused without fused_ready: overflow lost per-op attribution"
        );
        RetireInfo {
            cycles,
            instructions: deltas.instructions,
            overflow,
        }
    }

    /// Whether a straight-line superblock with the given shape —
    /// `machine_ops` total machine ops, `mem_refs` scalar (≤ 2-line)
    /// memory references, `branches` branch ops, `flops` architectural
    /// FLOPs, no vector memory ops — is guaranteed not to wrap any PMU
    /// counter, so the whole block may retire as one batched tick via
    /// [`Core::retire_block`].
    ///
    /// The probe compares a conservative event-total upper bound (three
    /// multiplies over per-unit bounds precomputed from the platform
    /// spec, plus the dynamic DRAM queue backlog when the block touches
    /// memory) against the PMU's distance-to-overflow watermark.
    /// `false` means a counter is near wrapping (or PMU batching is
    /// disabled): the caller must execute the block op by op through
    /// the ordinary retire path so the overflow interrupt is attributed
    /// to exactly the op that wraps — the same degradation rule
    /// [`Core::fused_ready`] applies to fused batches.
    #[inline]
    pub fn block_ready(
        &mut self,
        machine_ops: u32,
        mem_refs: u32,
        branches: u32,
        flops: u32,
    ) -> bool {
        let mut ub = machine_ops as u64 * self.block_op_ub
            + branches as u64 * self.block_branch_ub
            + flops as u64 * self.block_fp_ub
            + 16;
        if mem_refs > 0 {
            // Each scalar reference touches ≤ 2 lines; queue delay is
            // bounded by the current backlog plus the block's own lines
            // stacking up behind each other.
            let lines = 2 * mem_refs as u64;
            ub += mem_refs as u64 * self.block_mem_ub
                + lines
                    * (self.mem.backlog_cycles(self.current_centi()) + lines * self.block_occ_ub);
        }
        let mode = self.mode;
        self.pmu.batch_headroom(ub, mode)
    }

    /// Arm the deferred-retire accumulator for one superblock (resetting
    /// it in place — the full delta bundle is only cleared when the
    /// previous block dirtied it). Apply ops through
    /// [`Core::block_apply`] (or the specialized class/branch lanes) and
    /// commit with [`Core::retire_block`]; guard the block with
    /// [`Core::block_ready`] first.
    #[inline]
    pub fn block_begin_in(&self, acc: &mut BlockAcc) {
        acc.start_centi = self.current_centi();
        acc.instructions = 0;
        if acc.complex {
            acc.deltas = EventDeltas::default();
            acc.complex = false;
        }
    }

    /// Apply one op's timing/cache/branch effects now, accumulating its
    /// PMU event deltas into `acc` instead of ticking — the per-op half
    /// of [`Core::retire_block`]. Arithmetic-identical to
    /// [`Core::retire`] with the tick deferred.
    #[inline]
    pub fn block_apply(&mut self, op: &MachineOp, acc: &mut BlockAcc) {
        let instr_before = acc.deltas.instructions;
        let simple = self.apply_op(op, &mut acc.deltas);
        if simple {
            // A simple op's only event is its instruction count: move it
            // to the scalar lane so the accumulator keeps the
            // `!complex ⇒ deltas all-zero` invariant — the simple tick
            // path in `retire_block` reads only `acc.instructions`, and
            // the lazily-reset delta bundle must stay clean.
            acc.instructions += acc.deltas.instructions - instr_before;
            acc.deltas.instructions = instr_before;
        } else {
            acc.complex = true;
        }
    }

    /// [`Core::block_apply`] for one memory-free, branch-free,
    /// FLOP-free, scalar class, skipping `MachineOp` construction
    /// (mirrors [`Core::retire_fused_simple`]'s arithmetic minus the
    /// tick, and shares its duplication contract with `apply_op`).
    #[inline]
    pub fn block_apply_class(&mut self, class: OpClass, acc: &mut BlockAcc) {
        let expansion = self.isa.expand(class);
        let inv_tp = self.spec.timing.inv_tp(class);
        let slot_cost = self.slot_unit * expansion.max(1) as u64;
        if self.spec.out_of_order {
            self.unit_busy[Unit::of(class).index()] += inv_tp;
            self.slots += slot_cost;
        } else {
            self.centi += inv_tp.max(slot_cost);
        }
        self.retired += expansion as u64;
        acc.instructions += expansion as u64;
    }

    /// [`Core::block_apply_class`] over a class slice.
    #[inline]
    pub fn block_apply_classes(&mut self, classes: &[OpClass], acc: &mut BlockAcc) {
        for &class in classes {
            self.block_apply_class(class, acc);
        }
    }

    /// [`Core::block_apply`] for one branch at `pc` with outcome
    /// `taken` (mirrors the branch tail of [`Core::retire_fused_branch`]
    /// minus the tick).
    #[inline]
    pub fn block_apply_branch(&mut self, pc: u64, taken: bool, acc: &mut BlockAcc) {
        let expansion = self.isa.expand(OpClass::Branch);
        let inv_tp = self.spec.timing.inv_tp(OpClass::Branch);
        let slot_cost = self.slot_unit * expansion.max(1) as u64;
        let mut stall_centi = 0u64;
        let mut mispredicted = false;
        acc.deltas.branches += 1;
        acc.complex = true;
        if taken {
            stall_centi += self.spec.taken_branch_bubble as u64 * 100;
        }
        if !self.bp.predict_and_update(pc, taken) {
            acc.deltas.branch_misses += 1;
            mispredicted = true;
            if !self.spec.out_of_order {
                stall_centi += self.spec.branch_mispredict_penalty as u64 * 100;
            }
        }
        if self.spec.out_of_order {
            self.unit_busy[Unit::of(OpClass::Branch).index()] += inv_tp + stall_centi;
            self.slots += slot_cost;
            if mispredicted {
                let floor = self.current_centi() + self.spec.branch_mispredict_penalty as u64 * 100;
                self.centi = self.centi.max(floor);
                for u in &mut self.unit_busy {
                    *u = (*u).max(floor);
                }
                self.slots = self.slots.max(floor);
            }
        } else {
            self.centi += inv_tp.max(slot_cost) + stall_centi;
        }
        self.retired += expansion as u64;
        acc.deltas.instructions += expansion as u64;
    }

    /// Commit one superblock: tick the PMU once with the accumulated
    /// event deltas (per-op cycle deltas telescope into `now − start`).
    /// Under the [`Core::block_ready`] guard the combined tick cannot
    /// wrap a counter, so skipping the per-op ticks is observably exact;
    /// committing a *partial* block (a trap landed mid-block, after some
    /// ops applied) is exact for the same reason — counters are additive
    /// and the partial bound is below the full block's. The accumulator
    /// is left dirty; the next [`Core::block_begin_in`] resets it.
    pub fn retire_block(&mut self, acc: &mut BlockAcc) -> RetireInfo {
        let cycles = self.current_centi() / 100 - acc.start_centi / 100;
        let instructions;
        let overflow = if acc.complex {
            acc.deltas.cycles = cycles;
            acc.deltas.instructions += acc.instructions;
            instructions = acc.deltas.instructions;
            self.pmu.tick_batched(&acc.deltas, self.mode)
        } else {
            instructions = acc.instructions;
            self.pmu
                .tick_batched_simple(cycles, instructions, self.mode)
        };
        debug_assert_eq!(overflow, 0, "guard retire_block with block_ready");
        RetireInfo {
            cycles,
            instructions,
            overflow,
        }
    }

    /// Upper bound on the per-line DRAM channel occupancy in cycles.
    fn dram_occupancy_bound(caches: &crate::cache::CacheConfig) -> u64 {
        (crate::cache::LINE_BYTES as f64 / caches.dram_bytes_per_cycle) as u64 + 1
    }

    /// Advance the clock without retiring an instruction (idle cycles,
    /// e.g. while firmware "executes" conceptually).
    pub fn idle(&mut self, cycles: u64) -> u32 {
        let before = self.current_centi();
        if self.spec.out_of_order {
            let target = before + cycles * 100;
            self.centi = self.centi.max(target);
        } else {
            self.centi += cycles * 100;
        }
        let after = self.current_centi();
        let deltas = EventDeltas {
            cycles: after / 100 - before / 100,
            ..EventDeltas::default()
        };
        self.pmu.tick_batched(&deltas, self.mode)
    }
}

/// Conservative upper bound on the total PMU events (sum of every
/// [`EventDeltas`] field) one fused batch can generate, excluding the
/// dynamic DRAM queue backlog. Sound for the batch shapes the fusion
/// pass emits: ≤ [`MAX_FUSED_BATCH`] ops, ≤ 1 scalar (≤ 2-line) memory
/// reference, ≤ 1 branch, no vector ops, ≤ 1 architectural FLOP.
/// Overestimating only costs an occasional unnecessary per-op fallback
/// near a counter wrap — exactly where the unfused watermark path
/// degrades too.
fn fused_ub_static(spec: &PlatformSpec, isa: &IsaModel, slot_unit: u64, with_mem: bool) -> u64 {
    let max_ops = MAX_FUSED_BATCH as u64;
    let max_exp = isa.max_expansion();
    // Per-op base cycle cost: worst-class inverse throughput plus issue
    // slots, rounded up.
    let per_op_cycles = (spec.timing.max_inv_tp() + slot_unit * max_exp) / 100 + 1;
    // Branch worst case: taken-fetch bubble plus the mispredict penalty,
    // counted twice to cover both the in-order stall and the
    // out-of-order pipeline-restart floor jump.
    let branch_cycles = spec.taken_branch_bubble as u64 + 2 * spec.branch_mispredict_penalty as u64;
    // Scalar memory worst case: 2 lines (an 8-byte scalar straddling a
    // boundary), each missing all the way to DRAM.
    let caches = &spec.caches;
    let line_cycles = caches.l1d.latency as u64
        + caches.l2.latency as u64
        + caches.dram_latency as u64
        + Core::dram_occupancy_bound(caches)
        + 1;
    let mem_cycles = if with_mem {
        2 * line_cycles + spec.load_use_penalty as u64
    } else {
        0
    };
    // Non-cycle events: instructions (MAX_FUSED_BATCH ops at max
    // expansion), branch + miss, FLOP events (1 architectural FLOP,
    // overcount < 4x), and per line one access/miss/L2-miss plus
    // LINE_BYTES of DRAM traffic.
    let mem_events = if with_mem {
        2 * (3 + crate::cache::LINE_BYTES)
    } else {
        0
    };
    let events = max_ops * max_exp + 2 + 4 + mem_events;
    max_ops * per_op_cycles + branch_cycles + mem_cycles + events + 16
}

/// Conservative per-machine-op event bound for superblock retire:
/// worst-case whole cycles plus instruction *and* vector-instruction
/// events at maximum ISA expansion. FLOP, branch, and memory events are
/// bounded separately per unit by [`Core::block_ready`].
fn block_op_ub(spec: &PlatformSpec, isa: &IsaModel, slot_unit: u64) -> u64 {
    let max_exp = isa.max_expansion();
    let per_op_cycles = (spec.timing.max_inv_tp() + slot_unit * max_exp) / 100 + 1;
    per_op_cycles + 2 * max_exp
}

/// Conservative extra events per scalar (≤ 2-line) memory reference in a
/// superblock, excluding the dynamic DRAM queue backlog: per line the
/// full hit/miss latency chain plus an access/miss/L2-miss event and
/// `LINE_BYTES` of DRAM traffic.
fn block_mem_ub(spec: &PlatformSpec) -> u64 {
    let caches = &spec.caches;
    let line_cycles = caches.l1d.latency as u64
        + caches.l2.latency as u64
        + caches.dram_latency as u64
        + Core::dram_occupancy_bound(caches)
        + 1;
    2 * (line_cycles + 3 + crate::cache::LINE_BYTES) + spec.load_use_penalty as u64
}

/// Conservative extra events per branch in a superblock: taken-fetch
/// bubble plus the mispredict penalty (twice, covering both the in-order
/// stall and the out-of-order pipeline-restart floor) plus the branch
/// and branch-miss events.
fn block_branch_ub(spec: &PlatformSpec) -> u64 {
    spec.taken_branch_bubble as u64 + 2 * spec.branch_mispredict_penalty as u64 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_op::MemRef;
    use crate::platform::PlatformSpec;

    fn x60() -> Core {
        Core::new(PlatformSpec::x60())
    }

    fn i5() -> Core {
        Core::new(PlatformSpec::i5_1135g7())
    }

    #[test]
    fn retiring_advances_cycles_and_instret() {
        let mut c = x60();
        for i in 0..100 {
            c.retire(&MachineOp::simple(OpClass::IntAlu, i));
        }
        assert_eq!(c.instructions(), 100);
        // Dual-issue: 100 ALU ops ≈ 50 cycles.
        assert!(c.cycles() >= 50 && c.cycles() <= 60, "{}", c.cycles());
        assert_eq!(c.pmu().read(crate::pmu::COUNTER_INSTRET), 100);
        assert_eq!(c.pmu().read(crate::pmu::COUNTER_CYCLE), c.cycles());
    }

    #[test]
    fn ooo_overlaps_int_and_fp_work() {
        let mut c = i5();
        // Interleave 1000 int + 1000 fp ops: with separate units the total
        // should be far less than the sum of both streams serialized.
        for i in 0..1000 {
            c.retire(&MachineOp::simple(OpClass::IntAlu, i));
            c.retire(&MachineOp::simple(OpClass::FpFma, i).with_flops(2));
        }
        // Int: 1000*0.25c = 250c; Fp: 1000*0.5c = 500c; slots: 2000*?/5.
        // x86 IntAlu expands 2.5x -> slots dominate: ~(2500+1000)*20 = 700c.
        let cyc = c.cycles();
        assert!(cyc < 900, "OoO should overlap units: {cyc}");
        assert!(cyc >= 500, "bounded below by the FP stream: {cyc}");
    }

    #[test]
    fn in_order_serializes() {
        let mut c = x60();
        for i in 0..1000 {
            c.retire(&MachineOp::simple(OpClass::IntAlu, i));
            c.retire(&MachineOp::simple(OpClass::FpFma, i).with_flops(2));
        }
        // In-order: 1000*(0.5) + 1000*(1.0) = 1500 cycles.
        let cyc = c.cycles();
        assert!((1480..=1550).contains(&cyc), "{cyc}");
    }

    #[test]
    fn branch_misses_cost_cycles() {
        let mut c = x60();
        let mut x: u64 = 12345;
        for i in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            let op = MachineOp::simple(OpClass::Branch, 0x40).with_taken(x & 1 == 0);
            c.retire(&op);
            let _ = i;
        }
        let cycles_random = c.cycles();

        let mut c2 = x60();
        for _ in 0..2000 {
            c2.retire(&MachineOp::simple(OpClass::Branch, 0x40).with_taken(true));
        }
        let cycles_predictable = c2.cycles();
        assert!(
            cycles_random > cycles_predictable * 3,
            "mispredicts must hurt: {cycles_random} vs {cycles_predictable}"
        );
        assert!(c.pmu().read(3) == 0, "hpm3 unprogrammed stays 0");
    }

    #[test]
    fn memory_misses_count_and_stall() {
        let mut c = x60();
        // Stream over 1 MiB: mostly misses.
        for i in 0..4096u64 {
            let op =
                MachineOp::simple(OpClass::Load, i).with_mem(MemRef::scalar(i * 256, 8, false));
            c.retire(&op);
        }
        let (acc, miss) = c.mem().l1d_stats();
        assert_eq!(acc, 4096);
        assert!(miss > 4000, "strided stream misses: {miss}");
        // Cycles dominated by memory stalls, far above 4096 * 1c.
        assert!(c.cycles() > 100_000, "{}", c.cycles());
    }

    #[test]
    fn mode_cycles_accumulate_by_mode() {
        let mut c = x60();
        let ev = crate::events::HwEvent::UModeCycles;
        c.pmu_mut().set_event(3, Some(ev));
        c.retire(&MachineOp::simple(OpClass::IntAlu, 0));
        c.retire(&MachineOp::simple(OpClass::IntAlu, 1));
        let u_cycles = c.pmu().read(3);
        c.set_mode(PrivMode::Machine);
        c.idle(100);
        assert_eq!(c.pmu().read(3), u_cycles, "frozen while in M-mode");
        assert_eq!(c.pmu().read(0), u_cycles + 100, "mcycle keeps counting");
    }

    #[test]
    fn overflow_interrupt_plumbs_through_retire() {
        let mut c = x60();
        c.pmu_mut()
            .set_event(3, Some(crate::events::HwEvent::UModeCycles));
        c.pmu_mut().set_irq_enable(3, true);
        c.pmu_mut().write(3, (-50i64) as u64);
        let mut fired = false;
        for i in 0..200 {
            let info = c.retire(&MachineOp::simple(OpClass::IntAlu, i));
            if info.overflow & (1 << 3) != 0 {
                fired = true;
                break;
            }
        }
        assert!(fired, "u_mode_cycle overflow must fire");
    }

    #[test]
    fn isa_expansion_differs_between_platforms() {
        let mut rv = x60();
        let mut x86 = i5();
        for i in 0..800 {
            rv.retire(&MachineOp::simple(OpClass::IntAlu, i));
            x86.retire(&MachineOp::simple(OpClass::IntAlu, i));
            rv.retire(&MachineOp::simple(OpClass::AddrCalc, i));
            x86.retire(&MachineOp::simple(OpClass::AddrCalc, i));
        }
        // RISC-V: 1600 instructions. x86: 800*2.5 + 0 = 2000.
        assert_eq!(rv.instructions(), 1600);
        assert_eq!(x86.instructions(), 2000);
    }

    /// Regression test: flop-less vector ops (integer VecAlu, Splat and
    /// integer Reduce via VecShuffle) must still count vec-instruction
    /// events — the scalar retire fast path once swallowed them.
    #[test]
    fn flopless_vector_ops_count_vec_instructions() {
        let mut c = x60();
        c.pmu_mut()
            .set_event(3, Some(crate::events::HwEvent::VecInstructions));
        for i in 0..10 {
            c.retire(&MachineOp::simple(OpClass::VecShuffle, i));
            c.retire(&MachineOp::simple(OpClass::VecAlu, i));
        }
        assert_eq!(c.pmu().read(3), 20, "vector ops without flops must count");
    }

    /// `retire_fused` must be arithmetic-identical to retiring the same
    /// ops one by one: cycles, instructions, PMU counters, cache stats,
    /// and branch-predictor state all agree on every platform model.
    #[test]
    fn fused_retire_matches_per_op_retire() {
        for spec in [
            PlatformSpec::x60(),
            PlatformSpec::c910(),
            PlatformSpec::u74(),
            PlatformSpec::i5_1135g7(),
        ] {
            let mut fused = Core::new(spec.clone());
            let mut serial = Core::new(spec.clone());
            for c in [&mut fused, &mut serial] {
                c.pmu_mut()
                    .set_event(3, Some(crate::events::HwEvent::L1dMiss));
            }
            let mut x: u64 = 0x9e37_79b9;
            for i in 0..4_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                // A mix of the batch shapes the fusion pass emits:
                // addr+load, cmp+branch, and bin+move pairs/triples.
                let batch: Vec<MachineOp> = match x % 3 {
                    0 => vec![
                        MachineOp::simple(OpClass::AddrCalc, i % 64),
                        MachineOp::simple(OpClass::Load, i % 64 + 1).with_mem(MemRef::scalar(
                            0x2000 + (x % 4096) * 8,
                            8,
                            false,
                        )),
                    ],
                    1 => vec![
                        MachineOp::simple(OpClass::IntAlu, i % 64),
                        MachineOp::simple(OpClass::IntAlu, i % 64 + 1),
                        MachineOp::simple(OpClass::Branch, i % 64 + 2).with_taken(x & 2 == 0),
                    ],
                    _ => vec![
                        MachineOp::simple(OpClass::FpAdd, i % 64).with_flops(1),
                        MachineOp::simple(OpClass::Move, i % 64 + 1),
                    ],
                };
                assert!(fused.fused_ready(), "no counter is armed near wrap");
                let info = fused.retire_fused(&batch);
                assert_eq!(info.overflow, 0);
                for op in &batch {
                    serial.retire(op);
                }
                assert_eq!(fused.cycles(), serial.cycles(), "{} step {i}", spec.name);
            }
            assert_eq!(fused.instructions(), serial.instructions(), "{}", spec.name);
            for idx in 0..crate::pmu::NUM_COUNTERS {
                assert_eq!(
                    fused.pmu().read(idx),
                    serial.pmu().read(idx),
                    "{} counter {idx}",
                    spec.name
                );
            }
            assert_eq!(fused.mem().l1d_stats(), serial.mem().l1d_stats());
            assert_eq!(fused.mem().l2_stats(), serial.mem().l2_stats());
            assert_eq!(
                fused.mem().dram_bytes_total(),
                serial.mem().dram_bytes_total()
            );
        }
    }

    /// The specialized fused entry points (`retire_fused_simple`,
    /// `retire_fused_branch`) must also be arithmetic-identical to
    /// per-op retire — including predictor state, which the serial core
    /// trains identically over randomized branch outcomes.
    #[test]
    fn specialized_fused_retires_match_per_op() {
        for spec in [
            PlatformSpec::x60(),
            PlatformSpec::c910(),
            PlatformSpec::u74(),
            PlatformSpec::i5_1135g7(),
        ] {
            let mut fused = Core::new(spec.clone());
            let mut serial = Core::new(spec.clone());
            let mut x: u64 = 0x1234_5678;
            for i in 0..6_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                match x % 4 {
                    0 => {
                        assert!(fused.fused_ready_nomem());
                        fused.retire_fused_simple(&[OpClass::IntMul, OpClass::Move]);
                        serial.retire(&MachineOp::simple(OpClass::IntMul, i % 64));
                        serial.retire(&MachineOp::simple(OpClass::Move, i % 64 + 1));
                    }
                    1 => {
                        let pc = i % 32;
                        let taken = x & 2 == 0;
                        assert!(fused.fused_ready_nomem());
                        fused.retire_fused_branch(&[OpClass::IntAlu], pc, taken);
                        serial.retire(&MachineOp::simple(OpClass::IntAlu, pc + 64));
                        serial.retire(&MachineOp::simple(OpClass::Branch, pc).with_taken(taken));
                    }
                    2 => {
                        let pc = i % 32;
                        let taken = x & 4 == 0;
                        assert!(fused.fused_ready_nomem());
                        fused.retire_fused_branch(&[OpClass::IntAlu, OpClass::IntAlu], pc, taken);
                        for k in 0..2 {
                            serial.retire(&MachineOp::simple(OpClass::IntAlu, pc + k));
                        }
                        serial.retire(&MachineOp::simple(OpClass::Branch, pc).with_taken(taken));
                    }
                    _ => {
                        // A coalesced back edge: inc + elided-copy Move +
                        // cmp + branch, as the regalloc'd decode emits.
                        let pc = i % 32;
                        let taken = x & 8 == 0;
                        assert!(fused.fused_ready_nomem());
                        fused.retire_fused_branch(
                            &[OpClass::IntAlu, OpClass::Move, OpClass::IntAlu],
                            pc,
                            taken,
                        );
                        serial.retire(&MachineOp::simple(OpClass::IntAlu, pc + 64));
                        serial.retire(&MachineOp::simple(OpClass::Move, pc + 65));
                        serial.retire(&MachineOp::simple(OpClass::IntAlu, pc + 66));
                        serial.retire(&MachineOp::simple(OpClass::Branch, pc).with_taken(taken));
                    }
                }
                assert_eq!(fused.cycles(), serial.cycles(), "{} step {i}", spec.name);
            }
            assert_eq!(fused.instructions(), serial.instructions(), "{}", spec.name);
            for idx in 0..crate::pmu::NUM_COUNTERS {
                assert_eq!(
                    fused.pmu().read(idx),
                    serial.pmu().read(idx),
                    "{} counter {idx}",
                    spec.name
                );
            }
        }
    }

    /// Superblock retire (`block_begin`/`block_apply*`/`retire_block`)
    /// must be arithmetic-identical to per-op retire: cycles,
    /// instructions, PMU counters, cache stats, and predictor state all
    /// agree on every platform model, for blocks mixing ALU, memory,
    /// FLOP, and branch ops applied through every lane of the API.
    #[test]
    fn block_retire_matches_per_op_retire() {
        for spec in [
            PlatformSpec::x60(),
            PlatformSpec::c910(),
            PlatformSpec::u74(),
            PlatformSpec::i5_1135g7(),
        ] {
            let mut blocked = Core::new(spec.clone());
            let mut serial = Core::new(spec.clone());
            for c in [&mut blocked, &mut serial] {
                c.pmu_mut()
                    .set_event(3, Some(crate::events::HwEvent::L1dMiss));
            }
            let mut x: u64 = 0xdead_beef;
            let mut acc = BlockAcc::default();
            for i in 0..3_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                let ops: Vec<MachineOp> = match x % 3 {
                    0 => vec![
                        MachineOp::simple(OpClass::IntAlu, i % 64),
                        MachineOp::simple(OpClass::AddrCalc, i % 64 + 1),
                        MachineOp::simple(OpClass::Load, i % 64 + 2).with_mem(MemRef::scalar(
                            0x4000 + (x % 2048) * 8,
                            8,
                            false,
                        )),
                        MachineOp::simple(OpClass::Move, i % 64 + 3),
                    ],
                    1 => vec![
                        MachineOp::simple(OpClass::FpFma, i % 64).with_flops(2),
                        MachineOp::simple(OpClass::IntMul, i % 64 + 1),
                        MachineOp::simple(OpClass::Branch, i % 64 + 2).with_taken(x & 2 == 0),
                    ],
                    _ => vec![
                        MachineOp::simple(OpClass::IntAlu, i % 64),
                        MachineOp::simple(OpClass::IntAlu, i % 64 + 1),
                        MachineOp::simple(OpClass::Move, i % 64 + 2),
                    ],
                };
                let mem_refs = ops.iter().filter(|o| o.mem.is_some()).count() as u32;
                let branches = ops
                    .iter()
                    .filter(|o| matches!(o.class, OpClass::Branch))
                    .count() as u32;
                let flops: u32 = ops.iter().map(|o| o.flops).sum();
                assert!(blocked.block_ready(ops.len() as u32, mem_refs, branches, flops));
                blocked.block_begin_in(&mut acc);
                for op in &ops {
                    // Exercise all three apply lanes.
                    if matches!(op.class, OpClass::Branch) {
                        blocked.block_apply_branch(op.pc, op.taken, &mut acc);
                    } else if op.mem.is_none() && op.flops == 0 && x.is_multiple_of(2) {
                        blocked.block_apply_class(op.class, &mut acc);
                    } else {
                        blocked.block_apply(op, &mut acc);
                    }
                }
                let info = blocked.retire_block(&mut acc);
                assert_eq!(info.overflow, 0);
                for op in &ops {
                    serial.retire(op);
                }
                assert_eq!(blocked.cycles(), serial.cycles(), "{} step {i}", spec.name);
                // PMU counters must agree after *every* block commit —
                // an instruction-event leak between the simple and
                // complex tick lanes once cancelled out across blocks
                // and survived the end-of-run comparison below.
                for idx in [0usize, 2, 3] {
                    assert_eq!(
                        blocked.pmu().read(idx),
                        serial.pmu().read(idx),
                        "{} counter {idx} at step {i}",
                        spec.name
                    );
                }
            }
            assert_eq!(
                blocked.instructions(),
                serial.instructions(),
                "{}",
                spec.name
            );
            for idx in 0..crate::pmu::NUM_COUNTERS {
                assert_eq!(
                    blocked.pmu().read(idx),
                    serial.pmu().read(idx),
                    "{} counter {idx}",
                    spec.name
                );
            }
            assert_eq!(blocked.mem().l1d_stats(), serial.mem().l1d_stats());
            assert_eq!(blocked.mem().l2_stats(), serial.mem().l2_stats());
        }
    }

    /// Near a programmed overflow, `block_ready` must refuse the block
    /// (same degradation rule as `fused_ready`), and a partial commit
    /// after a hypothetical mid-block trap stays exact.
    #[test]
    fn block_ready_refuses_near_overflow() {
        let mut c = x60();
        c.pmu_mut()
            .set_event(3, Some(crate::events::HwEvent::CpuCycles));
        c.pmu_mut().set_irq_enable(3, true);
        c.pmu_mut().write(3, (-8i64) as u64);
        assert!(!c.block_ready(6, 1, 1, 2));
        c.pmu_mut().write(3, (-10_000_000i64) as u64);
        assert!(c.block_ready(6, 1, 1, 2));
        c.set_pmu_batching(false);
        assert!(!c.block_ready(6, 1, 1, 2));
    }

    /// Near a programmed overflow, `fused_ready` must refuse the batch so
    /// the caller degrades to per-op retire (exact overflow attribution).
    #[test]
    fn fused_ready_refuses_near_overflow() {
        let mut c = x60();
        c.pmu_mut()
            .set_event(3, Some(crate::events::HwEvent::CpuCycles));
        c.pmu_mut().set_irq_enable(3, true);
        c.pmu_mut().write(3, (-8i64) as u64); // 8 events from wrapping
        assert!(!c.fused_ready(), "8 events of headroom is inside the bound");
        // With a huge period the batch is safe again.
        c.pmu_mut().write(3, (-10_000_000i64) as u64);
        assert!(c.fused_ready());
        // And with PMU batching disabled (the seed configuration) fused
        // retire must always fall back.
        c.set_pmu_batching(false);
        assert!(!c.fused_ready());
    }

    /// Regression test: a block containing only *simple* ops applied
    /// through the general `block_apply` lane (not the class lane) must
    /// still tick their instruction events — `apply_op` records them in
    /// the delta bundle, and `block_apply` has to move them to the
    /// scalar lane the simple commit path reads, or they are silently
    /// dropped (and the stale bundle later double-ticks in a complex
    /// block).
    #[test]
    fn block_apply_simple_ops_keep_instruction_events() {
        let mut blocked = x60();
        let mut serial = x60();
        let mut acc = BlockAcc::default();
        blocked.block_begin_in(&mut acc);
        for pc in 0..2u64 {
            blocked.block_apply(&MachineOp::simple(OpClass::IntAlu, pc), &mut acc);
            serial.retire(&MachineOp::simple(OpClass::IntAlu, pc));
        }
        blocked.retire_block(&mut acc);
        assert_eq!(blocked.pmu().read(2), serial.pmu().read(2), "instret");
        assert_eq!(blocked.pmu().read(0), serial.pmu().read(0), "cycles");
    }

    #[test]
    fn idle_advances_clock_only() {
        let mut c = x60();
        c.idle(500);
        assert_eq!(c.cycles(), 500);
        assert_eq!(c.instructions(), 0);
    }
}
