//! The simulated core: retires machine ops, advances the timing model,
//! drives caches/branch prediction, and ticks the PMU.

use crate::branch::BranchPredictor;
use crate::cache::MemorySystem;
use crate::csr::{Csr, CsrError};
use crate::events::EventDeltas;
use crate::isa::IsaModel;
use crate::machine_op::{MachineOp, OpClass};
use crate::platform::{PlatformSpec, Unit};
use crate::pmu::Pmu;

/// RISC-V privilege modes (the x86 model reuses User/Supervisor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivMode {
    User,
    Supervisor,
    Machine,
}

/// Result of retiring one machine op.
#[derive(Debug, Clone, Default)]
pub struct RetireInfo {
    /// Whole cycles the core advanced.
    pub cycles: u64,
    /// Instructions retired (ISA expansion applied).
    pub instructions: u64,
    /// Bitmask of PMU counters whose overflow interrupt fired.
    pub overflow: u32,
}

/// One simulated hart.
#[derive(Debug, Clone)]
pub struct Core {
    pub spec: PlatformSpec,
    pub csr: Csr,
    pmu: Pmu,
    mem: MemorySystem,
    bp: BranchPredictor,
    isa: IsaModel,
    mode: PrivMode,
    /// Committed time in centi-cycles (in-order accumulator).
    centi: u64,
    /// Out-of-order per-unit occupancy accumulators (centi-cycles).
    unit_busy: [u64; Unit::COUNT],
    /// Issue-slot accumulator (centi-cycles).
    slots: u64,
    retired: u64,
    /// Centi-cycles one issue slot costs (`100 / issue_width`, floored at
    /// 1) — precomputed off the retire path.
    slot_unit: u64,
}

impl Core {
    /// Power on a core for `spec`.
    pub fn new(spec: PlatformSpec) -> Core {
        Core {
            csr: Csr::new(spec.cpu_id),
            pmu: Pmu::new(spec.num_hpm_counters),
            mem: MemorySystem::new(spec.caches),
            bp: BranchPredictor::new(spec.predictor_index_bits),
            isa: spec.isa_model(),
            mode: PrivMode::User,
            centi: 0,
            unit_busy: [0; Unit::COUNT],
            slots: 0,
            retired: 0,
            slot_unit: (100 / spec.issue_width as u64).max(1),
            spec,
        }
    }

    /// Current privilege mode.
    pub fn mode(&self) -> PrivMode {
        self.mode
    }

    /// Switch privilege mode (ecall/sret boundaries in the SBI layer).
    pub fn set_mode(&mut self, mode: PrivMode) {
        self.mode = mode;
    }

    /// Committed whole cycles since power-on.
    pub fn cycles(&self) -> u64 {
        self.current_centi() / 100
    }

    /// Instructions retired since power-on.
    pub fn instructions(&self) -> u64 {
        self.retired
    }

    /// Shared PMU access (the SBI layer programs it through CSRs; tools
    /// read it through this for assertions).
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// Mutable PMU access for the firmware layer.
    pub fn pmu_mut(&mut self) -> &mut Pmu {
        &mut self.pmu
    }

    /// Toggle the PMU's batched tick path (on by default; identical
    /// observable behaviour — see [`Pmu::set_batched`]).
    pub fn set_pmu_batching(&mut self, on: bool) {
        self.pmu.set_batched(on);
    }

    /// Memory-hierarchy statistics access.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Flush caches and reset the branch predictor (between benchmark
    /// phases; the PMU and clocks are *not* reset).
    pub fn reset_microarch(&mut self) {
        self.mem.flush();
        self.bp.reset();
    }

    /// Read a CSR at the current privilege mode.
    ///
    /// # Errors
    /// Propagates [`CsrError`] (illegal instruction) on privilege or
    /// decode failures.
    pub fn csr_read(&self, addr: u16) -> Result<u64, CsrError> {
        self.csr.read(addr, self.mode, &self.pmu)
    }

    /// Read a CSR as if in `mode` (the firmware runs in M-mode while the
    /// core state says otherwise during a trap; this keeps the model
    /// simple without a full trap unit).
    pub fn csr_read_as(&self, addr: u16, mode: PrivMode) -> Result<u64, CsrError> {
        self.csr.read(addr, mode, &self.pmu)
    }

    /// Write a CSR as if in `mode`.
    ///
    /// # Errors
    /// Propagates [`CsrError`] on privilege or decode failures.
    pub fn csr_write_as(&mut self, addr: u16, value: u64, mode: PrivMode) -> Result<(), CsrError> {
        self.csr.write(addr, value, mode, &mut self.pmu)
    }

    fn current_centi(&self) -> u64 {
        if self.spec.out_of_order {
            let unit_max = self.unit_busy.iter().copied().max().unwrap_or(0);
            self.centi.max(unit_max).max(self.slots)
        } else {
            self.centi
        }
    }

    /// Retire one machine op: advance time, count events, tick the PMU.
    #[inline]
    pub fn retire(&mut self, op: &MachineOp) -> RetireInfo {
        // The dominant op shape (scalar ALU/move/addr/call classes: no
        // memory reference, no branch bookkeeping, no FLOPs, no
        // vec-instruction event) takes a slimmer path that skips the
        // full event bundle; identical arithmetic.
        if op.mem.is_none()
            && op.flops == 0
            && !matches!(op.class, OpClass::Branch)
            && !op.is_vector()
        {
            return self.retire_simple(op);
        }
        self.retire_full(op)
    }

    /// Fast path for non-memory, non-branch, non-FP ops.
    fn retire_simple(&mut self, op: &MachineOp) -> RetireInfo {
        let before = self.current_centi();
        let expansion = self.isa.expand(op.class);
        let inv_tp = self.spec.timing.inv_tp(op.class);
        let slot_cost = self.slot_unit * expansion.max(1) as u64;

        if self.spec.out_of_order {
            let unit = Unit::of(op.class);
            self.unit_busy[unit.index()] += inv_tp;
            self.slots += slot_cost;
        } else {
            self.centi += inv_tp.max(slot_cost);
        }

        let after = self.current_centi();
        let cycles = after / 100 - before / 100;
        self.retired += expansion as u64;

        let overflow = self
            .pmu
            .tick_batched_simple(cycles, expansion as u64, self.mode);
        RetireInfo {
            cycles,
            instructions: expansion as u64,
            overflow,
        }
    }

    fn retire_full(&mut self, op: &MachineOp) -> RetireInfo {
        let before = self.current_centi();
        let expansion = self.isa.expand(op.class);
        let inv_tp = self.spec.timing.inv_tp(op.class);
        let slot_cost = self.slot_unit * expansion.max(1) as u64;

        let mut deltas = EventDeltas {
            instructions: expansion as u64,
            ..EventDeltas::default()
        };
        if op.flops != 0 {
            // The PMU event applies the platform's overcount model
            // (speculation, masked lanes); see `fp_event_percent`.
            deltas.fp_ops = op.flops as u64 * self.spec.fp_event_percent as u64 / 100;
        }
        if op.is_vector() && expansion > 0 {
            deltas.vec_instructions = expansion as u64;
        }

        // Branch handling. A mispredict serializes the whole pipeline:
        // on the out-of-order model it becomes a floor on commit time
        // rather than occupancy on one unit.
        let mut stall_centi = 0u64;
        let mut mispredicted = false;
        if matches!(op.class, OpClass::Branch) {
            deltas.branches = 1;
            if op.taken {
                stall_centi += self.spec.taken_branch_bubble as u64 * 100;
            }
            if !self.bp.predict_and_update(op.pc, op.taken) {
                deltas.branch_misses = 1;
                mispredicted = true;
                if !self.spec.out_of_order {
                    stall_centi += self.spec.branch_mispredict_penalty as u64 * 100;
                }
            }
        }

        // Memory handling.
        if let Some(mem) = &op.mem {
            let ev = self.mem.access(mem, before);
            deltas.l1d_access += ev.l1_accesses;
            deltas.l1d_miss += ev.l1_misses;
            deltas.l2_miss += ev.l2_misses;
            deltas.dram_bytes += ev.dram_bytes;
            let miss_raw = ev.stall_cycles * 100;
            stall_centi += if self.spec.out_of_order {
                // L1-hit latency is fully hidden by the scheduler; miss
                // latency partially overlaps.
                miss_raw / self.spec.ooo_mem_overlap as u64
            } else {
                miss_raw
                    + ev.hit_cycles * 100
                    + self.spec.load_use_penalty as u64 * 100
            };
            // Strided vector memory ops occupy the memory unit longer.
            if mem.lanes > 1 && !mem.is_unit_stride() {
                stall_centi += self.spec.strided_lane_penalty_centi as u64 * mem.lanes as u64;
            }
        }

        // Advance the clock model.
        if self.spec.out_of_order {
            let unit = Unit::of(op.class);
            self.unit_busy[unit.index()] += inv_tp + stall_centi;
            self.slots += slot_cost;
            if mispredicted {
                // Pipeline restart: every accumulator jumps to the
                // mispredict resolution point.
                let floor =
                    self.current_centi() + self.spec.branch_mispredict_penalty as u64 * 100;
                self.centi = self.centi.max(floor);
                for u in &mut self.unit_busy {
                    *u = (*u).max(floor);
                }
                self.slots = self.slots.max(floor);
            }
        } else {
            self.centi += inv_tp.max(slot_cost) + stall_centi;
        }

        let after = self.current_centi();
        deltas.cycles = after / 100 - before / 100;
        self.retired += expansion as u64;

        let overflow = self.pmu.tick_batched(&deltas, self.mode);
        RetireInfo {
            cycles: deltas.cycles,
            instructions: expansion as u64,
            overflow,
        }
    }

    /// Advance the clock without retiring an instruction (idle cycles,
    /// e.g. while firmware "executes" conceptually).
    pub fn idle(&mut self, cycles: u64) -> u32 {
        let before = self.current_centi();
        if self.spec.out_of_order {
            let target = before + cycles * 100;
            self.centi = self.centi.max(target);
        } else {
            self.centi += cycles * 100;
        }
        let after = self.current_centi();
        let deltas = EventDeltas {
            cycles: after / 100 - before / 100,
            ..EventDeltas::default()
        };
        self.pmu.tick_batched(&deltas, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_op::MemRef;
    use crate::platform::PlatformSpec;

    fn x60() -> Core {
        Core::new(PlatformSpec::x60())
    }

    fn i5() -> Core {
        Core::new(PlatformSpec::i5_1135g7())
    }

    #[test]
    fn retiring_advances_cycles_and_instret() {
        let mut c = x60();
        for i in 0..100 {
            c.retire(&MachineOp::simple(OpClass::IntAlu, i));
        }
        assert_eq!(c.instructions(), 100);
        // Dual-issue: 100 ALU ops ≈ 50 cycles.
        assert!(c.cycles() >= 50 && c.cycles() <= 60, "{}", c.cycles());
        assert_eq!(c.pmu().read(crate::pmu::COUNTER_INSTRET), 100);
        assert_eq!(c.pmu().read(crate::pmu::COUNTER_CYCLE), c.cycles());
    }

    #[test]
    fn ooo_overlaps_int_and_fp_work() {
        let mut c = i5();
        // Interleave 1000 int + 1000 fp ops: with separate units the total
        // should be far less than the sum of both streams serialized.
        for i in 0..1000 {
            c.retire(&MachineOp::simple(OpClass::IntAlu, i));
            c.retire(&MachineOp::simple(OpClass::FpFma, i).with_flops(2));
        }
        // Int: 1000*0.25c = 250c; Fp: 1000*0.5c = 500c; slots: 2000*?/5.
        // x86 IntAlu expands 2.5x -> slots dominate: ~(2500+1000)*20 = 700c.
        let cyc = c.cycles();
        assert!(cyc < 900, "OoO should overlap units: {cyc}");
        assert!(cyc >= 500, "bounded below by the FP stream: {cyc}");
    }

    #[test]
    fn in_order_serializes() {
        let mut c = x60();
        for i in 0..1000 {
            c.retire(&MachineOp::simple(OpClass::IntAlu, i));
            c.retire(&MachineOp::simple(OpClass::FpFma, i).with_flops(2));
        }
        // In-order: 1000*(0.5) + 1000*(1.0) = 1500 cycles.
        let cyc = c.cycles();
        assert!((1480..=1550).contains(&cyc), "{cyc}");
    }

    #[test]
    fn branch_misses_cost_cycles() {
        let mut c = x60();
        let mut x: u64 = 12345;
        for i in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            let op = MachineOp::simple(OpClass::Branch, 0x40).with_taken(x & 1 == 0);
            c.retire(&op);
            let _ = i;
        }
        let cycles_random = c.cycles();

        let mut c2 = x60();
        for _ in 0..2000 {
            c2.retire(&MachineOp::simple(OpClass::Branch, 0x40).with_taken(true));
        }
        let cycles_predictable = c2.cycles();
        assert!(
            cycles_random > cycles_predictable * 3,
            "mispredicts must hurt: {cycles_random} vs {cycles_predictable}"
        );
        assert!(c.pmu().read(3) == 0, "hpm3 unprogrammed stays 0");
    }

    #[test]
    fn memory_misses_count_and_stall() {
        let mut c = x60();
        // Stream over 1 MiB: mostly misses.
        for i in 0..4096u64 {
            let op = MachineOp::simple(OpClass::Load, i)
                .with_mem(MemRef::scalar(i * 256, 8, false));
            c.retire(&op);
        }
        let (acc, miss) = c.mem().l1d_stats();
        assert_eq!(acc, 4096);
        assert!(miss > 4000, "strided stream misses: {miss}");
        // Cycles dominated by memory stalls, far above 4096 * 1c.
        assert!(c.cycles() > 100_000, "{}", c.cycles());
    }

    #[test]
    fn mode_cycles_accumulate_by_mode() {
        let mut c = x60();
        let ev = crate::events::HwEvent::UModeCycles;
        c.pmu_mut().set_event(3, Some(ev));
        c.retire(&MachineOp::simple(OpClass::IntAlu, 0));
        c.retire(&MachineOp::simple(OpClass::IntAlu, 1));
        let u_cycles = c.pmu().read(3);
        c.set_mode(PrivMode::Machine);
        c.idle(100);
        assert_eq!(c.pmu().read(3), u_cycles, "frozen while in M-mode");
        assert_eq!(c.pmu().read(0), u_cycles + 100, "mcycle keeps counting");
    }

    #[test]
    fn overflow_interrupt_plumbs_through_retire() {
        let mut c = x60();
        c.pmu_mut().set_event(3, Some(crate::events::HwEvent::UModeCycles));
        c.pmu_mut().set_irq_enable(3, true);
        c.pmu_mut().write(3, (-50i64) as u64);
        let mut fired = false;
        for i in 0..200 {
            let info = c.retire(&MachineOp::simple(OpClass::IntAlu, i));
            if info.overflow & (1 << 3) != 0 {
                fired = true;
                break;
            }
        }
        assert!(fired, "u_mode_cycle overflow must fire");
    }

    #[test]
    fn isa_expansion_differs_between_platforms() {
        let mut rv = x60();
        let mut x86 = i5();
        for i in 0..800 {
            rv.retire(&MachineOp::simple(OpClass::IntAlu, i));
            x86.retire(&MachineOp::simple(OpClass::IntAlu, i));
            rv.retire(&MachineOp::simple(OpClass::AddrCalc, i));
            x86.retire(&MachineOp::simple(OpClass::AddrCalc, i));
        }
        // RISC-V: 1600 instructions. x86: 800*2.5 + 0 = 2000.
        assert_eq!(rv.instructions(), 1600);
        assert_eq!(x86.instructions(), 2000);
    }

    /// Regression test: flop-less vector ops (integer VecAlu, Splat and
    /// integer Reduce via VecShuffle) must still count vec-instruction
    /// events — the scalar retire fast path once swallowed them.
    #[test]
    fn flopless_vector_ops_count_vec_instructions() {
        let mut c = x60();
        c.pmu_mut().set_event(3, Some(crate::events::HwEvent::VecInstructions));
        for i in 0..10 {
            c.retire(&MachineOp::simple(OpClass::VecShuffle, i));
            c.retire(&MachineOp::simple(OpClass::VecAlu, i));
        }
        assert_eq!(c.pmu().read(3), 20, "vector ops without flops must count");
    }

    #[test]
    fn idle_advances_clock_only() {
        let mut c = x60();
        c.idle(500);
        assert_eq!(c.cycles(), 500);
        assert_eq!(c.instructions(), 0);
    }
}
