//! Fault-injection acceptance suite (`cargo test --features failpoints`).
//!
//! Arms deterministic [`mperf_fault::FaultPlan`]s against the
//! `sweep.cell` and `sweep.journal` failpoints and checks the ISSUE 6
//! acceptance scenario end to end: with faults in ≥ 3 distinct cells of
//! the 4-platform sweep, every healthy cell completes bit-identically
//! to a fault-free serial run, and a subsequent resume re-executes only
//! the failed cells to a byte-identical final report.

#![cfg(feature = "failpoints")]

use miniperf::sweep_supervisor::encode_run;
use miniperf::{run_roofline_sweep, RooflineJob, RooflineRequest};
use mperf_fault::{arm_scoped, drain_log, FaultKind, FaultPlan, PANIC_PREFIX};
use mperf_sim::Platform;
use mperf_sweep::{CellError, RetryPolicy};
use mperf_vm::Vm;
use mperf_workloads::stream::StreamBench;
use std::path::PathBuf;

/// Silence the default panic printout for the unwinds this suite
/// injects on purpose (recognised by [`PANIC_PREFIX`], so no
/// test-specific text is matched). Installed once; everything else is
/// forwarded.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let msg = p
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| p.downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.starts_with(PANIC_PREFIX)) {
                return;
            }
            default(info);
        }));
    });
}

/// The 4-platform triad sweep (one cell per platform model).
fn triad_cells(elems: u64) -> Vec<RooflineJob<'static>> {
    Platform::ALL
        .iter()
        .map(|&p| {
            let module = Box::leak(Box::new(
                mperf_workloads::compile_for(
                    "stream-triad",
                    mperf_workloads::stream::SOURCE,
                    p,
                    true,
                )
                .expect("stream compiles"),
            ));
            let bench = StreamBench { elems };
            RooflineJob {
                module: &*module,
                decoded: None,
                spec: p.spec(),
                entry: "triad".into(),
                setup: Box::new(move |vm: &mut Vm| bench.setup_triad(vm)),
            }
        })
        .collect()
}

fn tmp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mperf-fp-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The acceptance scenario: panic, trap, and transient-I/O faults in
/// three distinct cells of the 4-platform sweep. The panic cell
/// exhausts its retries (quarantined), the trap cell fails permanently,
/// the transient cell recovers on retry — and every completed cell is
/// bit-identical to the fault-free serial sweep. A resume run then
/// re-executes only the two failed cells to a byte-identical report.
#[test]
fn faults_in_three_cells_spare_healthy_cells_and_resume_completes() {
    quiet_injected_panics();
    let cells = triad_cells(1024);
    let serial: Vec<_> = run_roofline_sweep(&cells, 1)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let serial_bytes: Vec<Vec<u8>> = serial.iter().map(encode_run).collect();
    let path = tmp_journal("acceptance");

    let request = RooflineRequest::new()
        .jobs(2)
        .policy(RetryPolicy {
            max_attempts: 3,
            retry_panics: true,
        })
        .journal(path.clone());
    {
        let _armed = arm_scoped(
            FaultPlan::new(7)
                .inject("sweep.cell", 0, FaultKind::Panic, 3)
                .inject("sweep.cell", 1, FaultKind::Trap, 1)
                .inject("sweep.cell", 2, FaultKind::TransientIo, 1),
        );
        let sweep = request.run_supervised(&cells).unwrap();
        let fired = drain_log();
        assert!(
            fired.len() >= 5,
            "3 panics + 1 trap + 1 transient: {fired:?}"
        );

        // Cells 0 and 1 fail; 2 recovers on retry; 3 is untouched.
        assert_eq!(sweep.report.failed.len(), 2);
        let by_index = |i: usize| sweep.report.failed.iter().find(|f| f.index == i).unwrap();
        let panicked = by_index(0);
        assert!(panicked.quarantined, "panic cell exhausted its retries");
        assert_eq!(panicked.attempts, 3);
        assert!(matches!(&panicked.error, CellError::Panicked { payload }
            if payload.starts_with(PANIC_PREFIX)));
        let trapped = by_index(1);
        assert_eq!(trapped.attempts, 1, "deterministic trap: no retries");
        assert!(trapped.error.to_string().contains("injected trap"));
        assert!(sweep.report.retried.iter().any(|&(i, _)| i == 2));
        assert!(sweep.report.skipped.is_empty());
        for i in [2, 3] {
            assert_eq!(
                sweep.report.results[i].as_ref(),
                Some(&serial[i]),
                "healthy cell {i} must be bit-identical to the serial sweep"
            );
        }
    }

    // Disarmed resume: only the two failed cells re-execute; the final
    // report is byte-identical to a clean run. An *empty* armed scope
    // still serialises against the other fault tests, so their plans
    // cannot fire into this sweep.
    let _armed = arm_scoped(FaultPlan::default());
    let request = RooflineRequest::new()
        .jobs(1)
        .journal(path.clone())
        .resume(true);
    let sweep = request.run_supervised(&cells).unwrap();
    let mut resumed = sweep.resumed.clone();
    resumed.sort_unstable();
    assert_eq!(resumed, vec![2, 3], "only failed cells re-execute");
    assert!(sweep.report.all_ok());
    for (i, run) in sweep.report.results.iter().enumerate() {
        assert_eq!(
            encode_run(run.as_ref().unwrap()),
            serial_bytes[i],
            "cell {i} not byte-identical after resume"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Injected fuel exhaustion traps the guest mid-run; the supervisor
/// classifies it transient and the cell recovers on retry once the
/// failpoint is spent, bit-identical to the fault-free run.
#[test]
fn fuel_exhaustion_is_transient_and_recovers() {
    quiet_injected_panics();
    let cells = triad_cells(512);
    let serial: Vec<_> = run_roofline_sweep(&cells, 1)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let _armed =
        arm_scoped(FaultPlan::new(11).inject("sweep.cell", 2, FaultKind::FuelExhaustion, 1));
    let sweep = RooflineRequest::new().run_supervised(&cells).unwrap();
    assert!(sweep.report.all_ok());
    assert!(
        sweep.report.retried.iter().any(|&(i, _)| i == 2),
        "fuel-starved cell retried: {:?}",
        sweep.report.retried
    );
    for (i, serial_run) in serial.iter().enumerate() {
        assert_eq!(sweep.report.results[i].as_ref(), Some(serial_run));
    }
    let fired = drain_log();
    assert!(fired
        .iter()
        .any(|e| e.site == "sweep.cell" && e.kind == FaultKind::FuelExhaustion));
}

/// Scattered single-shot faults (the seeded pseudo-random layer) across
/// the sweep recover via retries: same completed results as serial.
#[test]
fn scattered_faults_are_deterministic_and_recoverable() {
    quiet_injected_panics();
    let cells = triad_cells(512);
    let serial: Vec<_> = run_roofline_sweep(&cells, 1)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let mut plan = FaultPlan::new(42);
    let keys = plan.scatter("sweep.cell", FaultKind::TransientIo, 3, cells.len() as u64);
    assert_eq!(keys.len(), 3, "three distinct faulty cells");
    let mut plan2 = FaultPlan::new(42);
    let keys2 = plan2.scatter("sweep.cell", FaultKind::TransientIo, 3, cells.len() as u64);
    assert_eq!(keys, keys2, "scatter is seed-deterministic");

    let _armed = arm_scoped(plan);
    let sweep = RooflineRequest::new().run_supervised(&cells).unwrap();
    assert!(sweep.report.all_ok(), "single-shot transients all recover");
    let retried: Vec<u64> = sweep
        .report
        .retried
        .iter()
        .map(|&(i, _)| i as u64)
        .collect();
    let mut expected = keys.clone();
    expected.sort_unstable();
    let mut got = retried.clone();
    got.sort_unstable();
    got.dedup();
    assert_eq!(got, expected, "exactly the scattered cells retried");
    for (i, serial_run) in serial.iter().enumerate() {
        assert_eq!(sweep.report.results[i].as_ref(), Some(serial_run));
    }
}

/// A journal append failure is fatal: the failing cell reports it and
/// still-queued cells are cancelled rather than executed against a
/// journal that is silently losing checkpoints.
#[test]
fn journal_append_failure_cancels_the_sweep() {
    quiet_injected_panics();
    let cells = triad_cells(512);
    let path = tmp_journal("fatal");
    let request = RooflineRequest::new().jobs(1).journal(path.clone());
    let _armed =
        arm_scoped(FaultPlan::new(3).inject_all("sweep.journal", FaultKind::TransientIo, 1));
    let sweep = request.run_supervised(&cells).unwrap();
    assert_eq!(sweep.report.failed.len(), 1, "first cell's append fails");
    let f = &sweep.report.failed[0];
    assert_eq!(f.index, 0);
    assert!(
        f.error.to_string().contains("journal failure"),
        "{}",
        f.error
    );
    assert_eq!(
        sweep.report.skipped,
        vec![1, 2, 3],
        "fatal failure cancels the still-queued cells"
    );
    assert_eq!(sweep.report.completed(), 0);
    let _ = std::fs::remove_file(&path);
}
