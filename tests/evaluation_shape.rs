//! Shape assertions for the paper's evaluation: the relationships Tables
//! 1–2 and Figures 3–4 report must hold on the reproduction, at test
//! scale (EXPERIMENTS.md records the bench-scale numbers).

use miniperf::flamegraph::{fold_stacks, Metric};
use miniperf::{hotspot_table, record, RecordConfig};
use mperf_sim::{Core, Platform};
use mperf_vm::Vm;
use mperf_workloads::sqlite_mini::{SqliteBench, ENTRY, SOURCE};

fn profile(platform: Platform, bench: SqliteBench) -> miniperf::Profile {
    let module = mperf_workloads::compile_for("sq", SOURCE, platform, false).unwrap();
    let mut vm = Vm::new(&module, Core::new(platform.spec()));
    let args = bench.setup(&mut vm).unwrap();
    record(&mut vm, ENTRY, &args, RecordConfig { period: 2_003 }).unwrap()
}

fn bench() -> SqliteBench {
    SqliteBench {
        rows: 384,
        queries: 10,
        seed: 0x005e_ed1e,
    }
}

#[test]
fn table2_shape_same_top3_functions_on_both_platforms() {
    let top3 = |p: Platform| -> Vec<String> {
        hotspot_table(&profile(p, bench()))
            .into_iter()
            .take(3)
            .map(|r| r.function)
            .collect()
    };
    let x60 = top3(Platform::SpacemitX60);
    let i5 = top3(Platform::IntelI5_1135G7);
    let expected = [
        "sqlite3VdbeExec",
        "patternCompare",
        "sqlite3BtreeParseCellPtr",
    ];
    for f in expected {
        assert!(x60.iter().any(|g| g == f), "X60 top3 {x60:?} missing {f}");
        assert!(i5.iter().any(|g| g == f), "i5 top3 {i5:?} missing {f}");
    }
    // The interpreter leads on both, as in the paper.
    assert_eq!(x60[0], "sqlite3VdbeExec", "{x60:?}");
}

#[test]
fn table2_shape_ipc_gap_and_instruction_ratio() {
    let p_x60 = profile(Platform::SpacemitX60, bench());
    let p_i5 = profile(Platform::IntelI5_1135G7, bench());
    let (ipc_x60, ipc_i5) = (p_x60.ipc(), p_i5.ipc());
    // Paper: 0.86 vs 3.38 (×3.9). Allow a band around it.
    assert!((0.6..1.3).contains(&ipc_x60), "{ipc_x60}");
    assert!((2.5..4.5).contains(&ipc_i5), "{ipc_i5}");
    assert!(ipc_i5 / ipc_x60 > 2.5, "gap {}", ipc_i5 / ipc_x60);
    // Paper: the x86 build retires ~1.85x the instructions.
    let ratio = p_i5.total_instructions as f64 / p_x60.total_instructions as f64;
    assert!((1.5..2.3).contains(&ratio), "{ratio}");
}

#[test]
fn fig3_shape_flamegraphs_share_dominant_stacks_across_metrics() {
    let p = profile(Platform::SpacemitX60, bench());
    let by_cycles = fold_stacks(&p, Metric::Cycles);
    let by_instr = fold_stacks(&p, Metric::Instructions);
    assert!(!by_cycles.is_empty());
    assert!(!by_instr.is_empty());
    let top = |f: &miniperf::flamegraph::FoldedStacks| {
        f.weights
            .iter()
            .max_by_key(|(_, w)| **w)
            .map(|(s, _)| s.clone())
            .expect("nonempty")
    };
    // On an in-order scalar platform both metrics agree on the hottest
    // stack (IPC is flat across these functions).
    assert_eq!(top(&by_cycles), top(&by_instr));
    // Stacks go through the interpreter.
    assert!(top(&by_cycles).contains("sqlite3VdbeExec"));
}

#[test]
fn deterministic_results_across_platforms() {
    // The guest computation itself is platform-independent (determinism
    // assumption behind the two-phase methodology, §4.4).
    let run = |p: Platform| -> i64 {
        let module = mperf_workloads::compile_for("sq", SOURCE, p, false).unwrap();
        let mut vm = Vm::new(&module, Core::new(p.spec()));
        let args = bench().setup(&mut vm).unwrap();
        vm.call(ENTRY, &args).unwrap()[0].as_i64()
    };
    let r1 = run(Platform::SpacemitX60);
    let r2 = run(Platform::IntelI5_1135G7);
    let r3 = run(Platform::SifiveU74);
    assert_eq!(r1, r2);
    assert_eq!(r1, r3);
}

#[test]
fn scaling_preserves_shares() {
    // The --scale story: per-function shares are scale-invariant, which
    // is what justifies running the evaluation at reduced size.
    // Scale the query count over the *same* table (different row counts
    // would change the data distribution, not just the scale).
    let small = hotspot_table(&profile(
        Platform::SpacemitX60,
        SqliteBench {
            rows: 256,
            queries: 4,
            seed: 1,
        },
    ));
    let large = hotspot_table(&profile(
        Platform::SpacemitX60,
        SqliteBench {
            rows: 256,
            queries: 16,
            seed: 1,
        },
    ));
    let share = |rows: &[miniperf::HotspotRow], f: &str| {
        rows.iter()
            .find(|r| r.function == f)
            .map(|r| r.total_percent)
            .unwrap_or(0.0)
    };
    for f in ["sqlite3VdbeExec", "patternCompare"] {
        let a = share(&small, f);
        let b = share(&large, f);
        assert!(
            (a - b).abs() < 12.0,
            "{f}: {a:.1}% vs {b:.1}% across scales (sampling noise band)"
        );
    }
}
