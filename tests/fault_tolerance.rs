//! Fault-tolerance integration tests (tier-1, no `failpoints` feature):
//! the supervised sweep isolates panicking/trapping cells, keeps every
//! surviving cell bit-identical to the serial sweep, reports trap sites
//! actionably, and resumes from a checkpoint journal — including a
//! torn-tail journal — to a byte-identical final report.

use miniperf::sweep_supervisor::encode_run;
use miniperf::{run_roofline_sweep, RooflineJob, RooflineRequest};
use mperf_sim::Platform;
use mperf_sweep::{run_jobs_supervised, FailureClass, RetryPolicy};
use mperf_vm::{Value, Vm};
use mperf_workloads::stream::StreamBench;
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;

/// Silence the default panic printout for panics this suite injects on
/// purpose (they are caught by the supervisor; the noise is misleading
/// in test logs). Installed once, forwards everything else.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let msg = p
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| p.downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.contains("injected panic")) {
                return;
            }
            default(info);
        }));
    });
}

/// The 4-platform triad sweep used throughout (modules leaked: tests).
fn triad_cells(elems: u64) -> Vec<RooflineJob<'static>> {
    Platform::ALL
        .iter()
        .map(|&p| {
            let module = Box::leak(Box::new(
                mperf_workloads::compile_for(
                    "stream-triad",
                    mperf_workloads::stream::SOURCE,
                    p,
                    true,
                )
                .expect("stream compiles"),
            ));
            let bench = StreamBench { elems };
            RooflineJob {
                module: &*module,
                decoded: None,
                spec: p.spec(),
                entry: "triad".into(),
                setup: Box::new(move |vm: &mut Vm| bench.setup_triad(vm)),
            }
        })
        .collect()
}

fn tmp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mperf-ft-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Byte offset of the end of each journal frame (after the magic).
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 8;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 16 + len;
        ends.push(pos);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Panics and traps injected at arbitrary job subsets never disturb
    /// the survivors: every healthy slot is bit-identical to the serial
    /// computation, every faulty slot is reported (panics as
    /// `Panicked`, errors as `Failed`), and nothing is skipped.
    #[test]
    fn injected_failures_leave_survivors_bit_identical(
        faults in proptest::collection::vec(0usize..16, 0..6),
        workers in 1usize..5,
    ) {
        quiet_injected_panics();
        let faults: HashSet<usize> = faults.into_iter().collect();
        let jobs: Vec<u64> = (0..16u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        let compute = |x: u64| x.wrapping_mul(31).rotate_left(7);
        let report = run_jobs_supervised(
            &jobs,
            workers,
            &RetryPolicy { max_attempts: 1, retry_panics: false },
            |i, &x, _ctx| {
                if faults.contains(&i) {
                    if i % 2 == 0 {
                        panic!("injected panic at {i}");
                    }
                    return Err(format!("injected trap at {i}"));
                }
                Ok(compute(x))
            },
            |_e| FailureClass::Permanent,
        );
        prop_assert!(report.skipped.is_empty());
        for (i, &x) in jobs.iter().enumerate() {
            if faults.contains(&i) {
                prop_assert!(report.results[i].is_none());
                prop_assert!(report.failed.iter().any(|f| f.index == i), "missing failure {i}");
            } else {
                prop_assert_eq!(report.results[i], Some(compute(x)), "slot {}", i);
            }
        }
        prop_assert_eq!(report.failed.len(), faults.len());
    }

    /// Transient failures retry to success: jobs that fail on their
    /// first attempt still land bit-identical results, and every retry
    /// is accounted for.
    #[test]
    fn transient_failures_recover_on_retry(
        flaky in proptest::collection::vec(0usize..12, 0..5),
        workers in 1usize..4,
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let flaky: HashSet<usize> = flaky.into_iter().collect();
        let first_attempts: Vec<AtomicU32> = (0..12).map(|_| AtomicU32::new(0)).collect();
        let jobs: Vec<u64> = (0..12u64).collect();
        let report = run_jobs_supervised(
            &jobs,
            workers,
            &RetryPolicy { max_attempts: 3, retry_panics: false },
            |i, &x, _ctx| {
                if flaky.contains(&i) && first_attempts[i].fetch_add(1, Ordering::Relaxed) == 0 {
                    return Err("transient".to_string());
                }
                Ok(x * x)
            },
            |_e| FailureClass::Transient,
        );
        prop_assert!(report.all_ok());
        for (i, &x) in jobs.iter().enumerate() {
            prop_assert_eq!(report.results[i], Some(x * x));
        }
        let retried: HashSet<usize> = report.retried.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(retried, flaky);
    }
}

/// The supervised sweep (parallel, journaling) is bit-identical to the
/// plain serial sweep; a journal torn mid-frame resumes to a
/// byte-identical final report, re-executing only the missing cells.
#[test]
fn supervised_sweep_matches_serial_and_resumes_byte_identically() {
    let cells = triad_cells(1024);
    let serial: Vec<_> = run_roofline_sweep(&cells, 1)
        .into_iter()
        .map(|r| r.expect("serial cell runs"))
        .collect();
    let serial_bytes: Vec<Vec<u8>> = serial.iter().map(encode_run).collect();

    let path = tmp_journal("resume");
    let request = RooflineRequest::new().jobs(3).journal(path.clone());
    let sweep = request.run_supervised(&cells).unwrap();
    assert!(sweep.report.all_ok());
    assert!(sweep.resumed.is_empty());
    for (i, run) in sweep.report.results.iter().enumerate() {
        let run = run.as_ref().expect("cell completed");
        assert_eq!(run, &serial[i], "cell {i} diverged from serial");
        assert_eq!(encode_run(run), serial_bytes[i], "cell {i} bytes");
    }

    // Interrupt: keep two complete frames plus a torn slice of the
    // third. Resume must satisfy exactly the two journaled cells and
    // re-execute the rest to a byte-identical report.
    let full = std::fs::read(&path).unwrap();
    let ends = frame_ends(&full);
    assert_eq!(ends.len(), cells.len(), "one frame per cell");
    std::fs::write(&path, &full[..ends[1] + 5]).unwrap();
    let request = RooflineRequest::new()
        .jobs(2)
        .journal(path.clone())
        .resume(true);
    let sweep = request.run_supervised(&cells).unwrap();
    assert_eq!(sweep.resumed.len(), 2, "two cells survived the tear");
    assert!(sweep.report.all_ok());
    for (i, run) in sweep.report.results.iter().enumerate() {
        assert_eq!(
            encode_run(run.as_ref().unwrap()),
            serial_bytes[i],
            "cell {i} not byte-identical after resume"
        );
    }

    // The journal is complete again: a third pass resumes everything.
    let request = RooflineRequest::new()
        .jobs(1)
        .journal(path.clone())
        .resume(true);
    let sweep = request.run_supervised(&cells).unwrap();
    assert_eq!(sweep.resumed.len(), cells.len());
    assert!(sweep.report.all_ok());
    let _ = std::fs::remove_file(&path);
}

/// A guest trap in one cell is reported with its faulting pc and
/// function name, classified permanent (no useless retries), and the
/// healthy cells still complete bit-identically.
#[test]
fn trapping_cell_reports_trap_site_and_spares_healthy_cells() {
    let mut cells = triad_cells(512);
    let healthy = cells.len();
    let serial: Vec<_> = run_roofline_sweep(&cells, 1)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let src = "fn boom(a: i64, b: i64) -> i64 { return a / b; }";
    let module = Box::leak(Box::new(
        mperf_workloads::compile_for("boom", src, Platform::SifiveU74, true).unwrap(),
    ));
    cells.push(RooflineJob {
        module: &*module,
        decoded: None,
        spec: Platform::SifiveU74.spec(),
        entry: "boom".into(),
        setup: Box::new(|_vm: &mut Vm| Ok(vec![Value::I64(7), Value::I64(0)])),
    });

    let sweep = RooflineRequest::new().run_supervised(&cells).unwrap();
    assert_eq!(sweep.report.failed.len(), 1);
    let f = &sweep.report.failed[0];
    assert_eq!(f.index, healthy);
    assert_eq!(f.attempts, 1, "deterministic traps are not retried");
    assert!(!f.quarantined);
    let msg = f.error.to_string();
    assert!(msg.contains("phase trapped"), "{msg}");
    assert!(
        msg.contains("in `boom`"),
        "trap site names the function: {msg}"
    );
    assert!(msg.contains("pc 0x"), "trap site names the pc: {msg}");
    for (i, serial_run) in serial.iter().enumerate() {
        assert_eq!(
            sweep.report.results[i].as_ref(),
            Some(serial_run),
            "healthy cell {i} diverged"
        );
    }
}
