//! Integration tests for the hardware-agnostic roofline pipeline (§4):
//! instrumentation metrics must match analytically known kernel counts,
//! remain identical across platforms (the "consistent metrics" claim),
//! and compose with the machine characterization into sane models.

use miniperf::RooflineRequest;
use mperf_roofline::microbench::characterize_with;
use mperf_roofline::model::{Bound, Point};
use mperf_roofline::plot;
use mperf_sim::Platform;
use mperf_vm::{Value, Vm, VmError};
use mperf_workloads::matmul::{MatmulBench, ENTRY as MM_ENTRY, SOURCE as MM_SOURCE};

fn mm_setup(bench: MatmulBench) -> impl Fn(&mut Vm) -> Result<Vec<Value>, VmError> {
    move |vm: &mut Vm| bench.setup(vm)
}

#[test]
fn matmul_metrics_match_analytic_counts() {
    let bench = MatmulBench {
        n: 32,
        tile: 16,
        seed: 5,
    };
    // Scalar platform: per inner iteration 2 flops (fma), 8 bytes loaded
    // (A + B), plus per-(i,j): 4 bytes load + 4 bytes store of C.
    let module = mperf_workloads::compile_for("mm", MM_SOURCE, Platform::SifiveU74, true).unwrap();
    let spec = Platform::SifiveU74.spec();
    let run = RooflineRequest::new()
        .run(&module, &spec, MM_ENTRY, &mm_setup(bench))
        .unwrap();
    let r = &run.regions[0];
    let n = bench.n as u64;
    let kk_tiles = n / bench.tile as u64;
    assert_eq!(r.flops, 2 * n * n * n, "FMA counted as 2 flops per lane");
    assert_eq!(
        r.loaded_bytes,
        8 * n * n * n + 4 * n * n * kk_tiles,
        "A+B per-k plus C reloaded once per kk tile"
    );
    assert_eq!(r.stored_bytes, 4 * n * n * kk_tiles);
}

#[test]
fn metrics_are_platform_consistent_even_when_codegen_differs() {
    // The paper's "Consistent Metrics" claim (§4.4): the same source
    // yields the same IR-derived metrics on every platform, even though
    // the X60 build is scalar and the i5 build is vectorized.
    let bench = MatmulBench {
        n: 32,
        tile: 8,
        seed: 2,
    };
    let mut all = Vec::new();
    for p in [
        Platform::SifiveU74,
        Platform::SpacemitX60,
        Platform::IntelI5_1135G7,
    ] {
        let module = mperf_workloads::compile_for("mm", MM_SOURCE, p, true).unwrap();
        let run = RooflineRequest::new()
            .run(&module, &p.spec(), MM_ENTRY, &mm_setup(bench))
            .unwrap();
        let r = &run.regions[0];
        all.push((p, r.flops, r.loaded_bytes + r.stored_bytes));
    }
    // Bytes are exactly equal. FLOPs may differ by the vector reduction
    // epilogue: ~2 extra counted flops per inner-loop entry against
    // 2*tile in-loop flops, i.e. a relative bound of ~1/tile.
    let (_, f0, b0) = all[0];
    let bound = 1.5 / 8.0; // tile = 8 in this test
    for (p, f, b) in &all {
        assert_eq!(*b, b0, "{p:?} bytes");
        let rel = (*f as f64 - f0 as f64).abs() / f0 as f64;
        assert!(rel < bound, "{p:?} flops {f} vs {f0} (rel {rel:.3})");
    }
}

#[test]
fn x60_matmul_point_sits_far_below_both_roofs() {
    // Fig. 4's X60 conclusion: the kernel achieves a small fraction of
    // the theoretical compute roof and the memory roof.
    let bench = MatmulBench {
        n: 64,
        tile: 32,
        seed: 1,
    };
    let module =
        mperf_workloads::compile_for("mm", MM_SOURCE, Platform::SpacemitX60, true).unwrap();
    let spec = Platform::SpacemitX60.spec();
    let run = RooflineRequest::new()
        .run(&module, &spec, MM_ENTRY, &mm_setup(bench))
        .unwrap();
    let r = &run.regions[0];
    let gflops = r.gflops(spec.freq_hz);
    let ch = characterize_with(Platform::SpacemitX60, 1 << 20);
    let model = ch.to_model();
    let attainable = model.attainable(r.ai());
    assert!(
        gflops < attainable / 3.0,
        "point {gflops} vs attainable {attainable}: substantial headroom is the finding"
    );
    assert!(gflops > 0.0);
    // And at this AI the kernel is memory-bound on the model.
    assert_eq!(model.bound_at(r.ai()), Bound::MemoryBound);
}

#[test]
fn i5_beats_x60_by_an_order_of_magnitude_on_matmul() {
    let bench = MatmulBench {
        n: 64,
        tile: 32,
        seed: 1,
    };
    let mut gf = Vec::new();
    for p in [Platform::SpacemitX60, Platform::IntelI5_1135G7] {
        let module = mperf_workloads::compile_for("mm", MM_SOURCE, p, true).unwrap();
        let spec = p.spec();
        let run = RooflineRequest::new()
            .run(&module, &spec, MM_ENTRY, &mm_setup(bench))
            .unwrap();
        gf.push(run.regions[0].gflops(spec.freq_hz));
    }
    assert!(
        gf[1] > 10.0 * gf[0],
        "vectorized wide OoO vs scalar in-order: {gf:?}"
    );
}

#[test]
fn advisor_style_reads_higher_than_miniperf_on_ooo_hardware() {
    // Fig. 4's methodology gap: the PMU FP event overcounts on the OoO
    // x86 part relative to IR-derived counts.
    let bench = MatmulBench {
        n: 48,
        tile: 16,
        seed: 3,
    };
    let platform = Platform::IntelI5_1135G7;
    let spec = platform.spec();
    let module = mperf_workloads::compile_for("mm", MM_SOURCE, platform, true).unwrap();
    let run = RooflineRequest::new()
        .run(&module, &spec, MM_ENTRY, &mm_setup(bench))
        .unwrap();
    let r = &run.regions[0];
    let ir_flops = r.flops;

    // PMU-counted flops over the same (un-instrumented) kernel.
    let plain = mperf_workloads::compile_for("mm", MM_SOURCE, platform, false).unwrap();
    let mut vm = Vm::new(&plain, mperf_sim::Core::new(spec.clone()));
    let mut kernel = mperf_event::PerfKernel::new(&mut vm.core);
    let fp = kernel
        .open(
            &mut vm.core,
            mperf_event::PerfEventAttr::counting(mperf_event::EventKind::Raw(
                spec.event_code(mperf_sim::HwEvent::FpOps),
            )),
            None,
        )
        .unwrap();
    kernel.enable(&mut vm.core, fp).unwrap();
    vm.attach_kernel(kernel);
    let args = bench.setup(&mut vm).unwrap();
    vm.call(MM_ENTRY, &args).unwrap();
    let pmu_flops = vm.kernel.as_ref().unwrap().read(&vm.core, fp).unwrap()[0].1;
    let ratio = pmu_flops as f64 / ir_flops as f64;
    assert!(
        (1.2..1.7).contains(&ratio),
        "paper's Advisor/miniperf gap is ~1.4x: {ratio}"
    );
}

#[test]
fn roofline_plots_render_from_real_measurements() {
    let ch = characterize_with(Platform::SpacemitX60, 1 << 20);
    let mut model = ch.to_model();
    model.add_point(Point {
        name: "probe".into(),
        ai: 0.25,
        gflops: 0.2,
    });
    let a = plot::ascii(&model, 60, 14);
    assert!(a.contains("probe"));
    let svg = plot::svg(&model, 640, 480);
    assert!(svg.contains("</svg>"));
    let csv = plot::csv(&model);
    assert!(csv.lines().count() >= 4);
}
