//! Integration test for the paper's §3.3 contribution: the full
//! perf-stack behavior across platforms — stock sampling failure on the
//! X60, miniperf's workaround success, direct sampling on the C910, and
//! graceful failure on the U74.

use miniperf::{probe_sampling, record, RecordConfig, SamplingStrategy, SamplingSupport};
use mperf_event::{Errno, EventKind, HwCounter, PerfEventAttr, PerfKernel};
use mperf_sim::{Core, Platform};
use mperf_vm::{Value, Vm};

const WORK: &str = r#"
    fn spin_work(n: i64) -> i64 {
        var acc: i64 = 0;
        for (var i: i64 = 0; i < n; i = i + 1) {
            acc = (acc ^ i) * 31 + (i >> 3);
        }
        return acc;
    }
"#;

#[test]
fn stock_perf_sampling_fails_only_where_the_paper_says() {
    let expectations = [
        (Platform::SifiveU74, SamplingSupport::None),
        (Platform::TheadC910, SamplingSupport::Full),
        (Platform::SpacemitX60, SamplingSupport::Limited),
        (Platform::IntelI5_1135G7, SamplingSupport::Full),
    ];
    for (p, want) in expectations {
        let mut core = Core::new(p.spec());
        let mut kernel = PerfKernel::new(&mut core);
        assert_eq!(probe_sampling(&mut core, &mut kernel), want, "{p:?}");
    }
}

#[test]
fn x60_direct_sampling_is_eopnotsupp_but_miniperf_recovers_ipc() {
    let platform = Platform::SpacemitX60;
    let module = mperf_workloads::compile_for("w", WORK, platform, false).unwrap();
    let mut vm = Vm::new(&module, Core::new(platform.spec()));

    // Stock perf path.
    let mut kernel = PerfKernel::new(&mut vm.core);
    let err = kernel
        .open(
            &mut vm.core,
            PerfEventAttr::sampling(EventKind::Hardware(HwCounter::Cycles), 4_000),
            None,
        )
        .unwrap_err();
    assert_eq!(err, Errno::EOPNOTSUPP);
    vm.attach_kernel(kernel);

    // miniperf path.
    let profile = record(
        &mut vm,
        "spin_work",
        &[Value::I64(200_000)],
        RecordConfig { period: 4_001 },
    )
    .unwrap();
    assert_eq!(profile.strategy, SamplingStrategy::ModeCycleLeaderGroup);
    assert!(profile.samples.len() > 50, "{}", profile.samples.len());
    let ipc = profile.ipc();
    assert!(ipc > 0.3 && ipc < 2.0, "plausible in-order IPC: {ipc}");
    // Each sample must carry group-read counter values.
    assert!(profile.samples.iter().all(|s| s.cycles > 0));
}

#[test]
fn c910_uses_direct_strategy() {
    let platform = Platform::TheadC910;
    let module = mperf_workloads::compile_for("w", WORK, platform, false).unwrap();
    let mut vm = Vm::new(&module, Core::new(platform.spec()));
    let profile = record(
        &mut vm,
        "spin_work",
        &[Value::I64(100_000)],
        RecordConfig { period: 4_001 },
    )
    .unwrap();
    assert_eq!(profile.strategy, SamplingStrategy::Direct);
    assert!(profile.samples.len() > 30);
}

#[test]
fn u74_record_fails_with_clear_error_but_stat_works() {
    let platform = Platform::SifiveU74;
    let module = mperf_workloads::compile_for("w", WORK, platform, false).unwrap();
    let mut vm = Vm::new(&module, Core::new(platform.spec()));
    let err = record(
        &mut vm,
        "spin_work",
        &[Value::I64(1_000)],
        RecordConfig::default(),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no sampling-capable"), "{msg}");

    // Counting still works (Table 1's nuance).
    let mut vm = Vm::new(&module, Core::new(platform.spec()));
    let rep = miniperf::stat(&mut vm, "spin_work", &[Value::I64(10_000)], &[]).unwrap();
    assert!(rep.instructions > 10_000);
}

#[test]
fn sampling_overhead_shows_up_in_supervisor_mode_cycles() {
    // The overflow handler costs supervisor-mode cycles: u_mode + s_mode
    // cycles both advance during a sampled run on the X60.
    let platform = Platform::SpacemitX60;
    let module = mperf_workloads::compile_for("w", WORK, platform, false).unwrap();
    let mut vm = Vm::new(&module, Core::new(platform.spec()));
    let profile = record(
        &mut vm,
        "spin_work",
        &[Value::I64(300_000)],
        RecordConfig { period: 2_003 },
    )
    .unwrap();
    // total cycles (mcycle) > sum of sampled u-mode leader periods:
    // the S-mode handler time is visible in the gap.
    let leader_cycles: u64 = profile.samples.len() as u64 * 2_003;
    assert!(
        profile.total_cycles > leader_cycles,
        "{} vs {leader_cycles}",
        profile.total_cycles
    );
}
