//! Property-based tests over the cross-crate invariants: compiled MiniC
//! arithmetic matches Rust semantics on random inputs, the perf ring
//! buffer round-trips arbitrary samples, and PMU counting is exact.

use mperf_event::{Record, RingBuffer, SampleRecord, SampleType};
use mperf_ir::transform::PassManager;
use mperf_sim::{Core, PlatformSpec};
use mperf_vm::{Value, Vm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled integer expressions agree with Rust's wrapping semantics,
    /// including after constant folding and strength reduction.
    #[test]
    fn compiled_arithmetic_matches_host(a in -1_000_000i64..1_000_000, b in 1i64..4096) {
        let src = r#"
            fn f(a: i64, b: i64) -> i64 {
                return (a + b) * 3 - a / b + a % b + (a << 2) - (a >> 1) + (a & b) + (a | b) + (a ^ b);
            }
        "#;
        let mut module = mperf_ir::compile("p", src).unwrap();
        PassManager::standard().run(&mut module);
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::u74()));
        let out = vm.call("f", &[Value::I64(a), Value::I64(b)]).unwrap();
        let expected = (a.wrapping_add(b)).wrapping_mul(3)
            .wrapping_sub(a / b)
            .wrapping_add(a % b)
            .wrapping_add(a << 2)
            .wrapping_sub(a >> 1)
            .wrapping_add(a & b)
            .wrapping_add(a | b)
            .wrapping_add(a ^ b);
        prop_assert_eq!(out, vec![Value::I64(expected)]);
    }

    /// The fixed instruction counter is exact: a counted loop retires an
    /// exactly predictable instruction count on the 1:1 RISC-V model.
    #[test]
    fn instret_is_deterministic(n in 1i64..500) {
        let src = "fn f(n: i64) -> i64 { var s: i64 = 0; for (var i: i64 = 0; i < n; i = i + 1) { s = s + i; } return s; }";
        let module = mperf_ir::compile("p", src).unwrap();
        let run = || {
            let mut vm = Vm::new(&module, Core::new(PlatformSpec::u74()));
            vm.call("f", &[Value::I64(n)]).unwrap();
            vm.core.instructions()
        };
        prop_assert_eq!(run(), run(), "same program, same instret");
    }

    /// Ring buffers round-trip arbitrary sample batches (drop-free when
    /// sized generously).
    #[test]
    fn ring_roundtrip(ips in proptest::collection::vec(0u64..u64::MAX, 1..40)) {
        let st = SampleType::full();
        let mut ring = RingBuffer::new(64 * 1024, st);
        for (i, ip) in ips.iter().enumerate() {
            let s = SampleRecord {
                ip: Some(*ip),
                tid: Some(i as u32),
                time: Some(i as u64 * 7),
                period: Some(1000),
                read_group: vec![(1, *ip ^ 0xffff), (2, i as u64)],
                callchain: vec![*ip, ip.wrapping_add(1)],
            };
            prop_assert!(ring.push_sample(&s));
        }
        let records = ring.drain();
        prop_assert_eq!(records.len(), ips.len());
        for (r, ip) in records.iter().zip(&ips) {
            match r {
                Record::Sample(s) => prop_assert_eq!(s.ip, Some(*ip)),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    /// Guest float kernels match host computation bit-for-bit for fused
    /// shapes that avoid reassociation.
    #[test]
    fn float_store_load_roundtrip(vals in proptest::collection::vec(-1e6f32..1e6, 1..64)) {
        let src = r#"
            fn scale(p: *f32, n: i64, k: f32) {
                for (var i: i64 = 0; i < n; i = i + 1) {
                    p[i] = p[i] * k;
                }
            }
        "#;
        let mut module = mperf_ir::compile("p", src).unwrap();
        PassManager::standard().run(&mut module);
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let p = vm.mem.alloc(vals.len() as u64 * 4, 8).unwrap();
        for (i, v) in vals.iter().enumerate() {
            vm.mem.write_f32(p + i as u64 * 4, *v).unwrap();
        }
        vm.call("scale", &[Value::I64(p as i64), Value::I64(vals.len() as i64), Value::F32(1.5)]).unwrap();
        for (i, v) in vals.iter().enumerate() {
            let got = vm.mem.read_f32(p + i as u64 * 4).unwrap();
            prop_assert_eq!(got, v * 1.5);
        }
    }
}
