//! Property-based tests over the cross-crate invariants: compiled MiniC
//! arithmetic matches Rust semantics on random inputs, the perf ring
//! buffer round-trips arbitrary samples, PMU counting is exact, and the
//! thread-parallel roofline sweep is bit-identical to the serial sweep.

use miniperf::{run_roofline_sweep, RooflineJob, RooflineRequest};
use mperf_event::{Record, RingBuffer, SampleRecord, SampleType};
use mperf_ir::transform::instrument::{InstrumentOptions, InstrumentPass};
use mperf_ir::transform::PassManager;
use mperf_sim::{Core, PlatformSpec};
use mperf_vm::{Engine, Value, Vm, VmError};
use proptest::prelude::*;

/// Program templates for the decoded/reference equivalence property.
/// Together they exercise arithmetic, control flow, memory traffic,
/// guest-to-guest calls (recursion), floats, casts, and traps.
const EQUIV_TEMPLATES: &[&str] = &[
    // Mixed integer arithmetic with data-dependent branches.
    r#"
        fn main(p: *i64, n: i64) -> i64 {
            var acc: i64 = 0;
            for (var i: i64 = 0; i < n; i = i + 1) {
                var op: i64 = p[i % 32] % 4;
                if (op == 0) { acc = acc + i * 3; }
                else if (op == 1) { acc = acc ^ (i << 2); }
                else if (op == 2) { acc = acc + p[(acc % 16 + 16) % 32]; }
                else { acc = acc - (i % 7); }
            }
            return acc;
        }
    "#,
    // Memory-heavy: strided loads and stores, plus a flop-free unary
    // negation in straight-line code (a superblock shape whose
    // instruction events once leaked between the block tick lanes).
    r#"
        fn main(p: *i64, n: i64) -> i64 {
            for (var i: i64 = 0; i < n; i = i + 1) {
                p[i % 32] = -p[(i * 7) % 32] + i;
            }
            var s: i64 = 0;
            for (var j: i64 = 0; j < 32; j = j + 1) { s = s + (-s ^ p[j]); }
            return s;
        }
    "#,
    // Call-heavy: recursion plus a helper call per iteration.
    r#"
        fn helper(x: i64) -> i64 { return x * 2 + 1; }
        fn fib(n: i64) -> i64 {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main(p: *i64, n: i64) -> i64 {
            var acc: i64 = fib(n % 12);
            for (var i: i64 = 0; i < n; i = i + 1) {
                acc = acc + helper(p[i % 32]);
            }
            return acc;
        }
    "#,
    // Floats, casts, and FP compare chains.
    r#"
        fn main(p: *i64, n: i64) -> i64 {
            var s: f64 = 0.0;
            for (var i: i64 = 0; i < n; i = i + 1) {
                var x: f64 = (i * 13 % 97) as f64;
                if (x > 48.0) { s = s + x * 1.5; } else { s = s - x / 3.0; }
            }
            return (s as i64) + p[0];
        }
    "#,
];

/// Every decoded-engine pass combination the equivalence properties
/// pin against the reference engine, with display labels.
const DECODED_CONFIGS: [(&str, bool, bool); 4] = [
    ("fused+regalloc", true, true),
    ("fused", true, false),
    ("regalloc", false, true),
    ("bare", false, false),
];

/// The full engine × pass matrix pinned against the reference engine:
/// the decoded (match-dispatch) and threaded (template + superblock)
/// engines, each across the fusion × regalloc combinations.
fn engine_matrix() -> Vec<(String, Engine, bool, bool)> {
    let mut m = Vec::new();
    for (engine, ename) in [(Engine::Decoded, "decoded"), (Engine::Threaded, "threaded")] {
        for (label, fuse, regalloc) in DECODED_CONFIGS {
            m.push((format!("{ename}/{label}"), engine, fuse, regalloc));
        }
    }
    m
}

/// Run one template on one platform/engine; returns every observable:
/// (ret, stats, cycles, instructions, pmu counters).
fn run_equiv(
    module: &mperf_ir::Module,
    spec: PlatformSpec,
    engine: Engine,
    fuse: bool,
    regalloc: bool,
    data: &[i64],
    n: i64,
) -> (Vec<Value>, mperf_vm::ExecStats, u64, u64, Vec<u64>) {
    let mut vm = Vm::with_memory(module, Core::new(spec), 1 << 20);
    vm.set_engine(engine);
    vm.set_fusion(fuse);
    vm.set_regalloc(regalloc);
    let base = vm.mem.alloc(8 * data.len() as u64, 8).unwrap();
    for (i, v) in data.iter().enumerate() {
        vm.mem.write_u64(base + i as u64 * 8, *v as u64).unwrap();
    }
    let ret = vm
        .call("main", &[Value::I64(base as i64), Value::I64(n)])
        .unwrap();
    let pmu: Vec<u64> = (0..mperf_sim::pmu::NUM_COUNTERS)
        .map(|i| vm.core.pmu().read(i))
        .collect();
    (
        ret,
        vm.stats(),
        vm.core.cycles(),
        vm.core.instructions(),
        pmu,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled integer expressions agree with Rust's wrapping semantics,
    /// including after constant folding and strength reduction.
    #[test]
    fn compiled_arithmetic_matches_host(a in -1_000_000i64..1_000_000, b in 1i64..4096) {
        let src = r#"
            fn f(a: i64, b: i64) -> i64 {
                return (a + b) * 3 - a / b + a % b + (a << 2) - (a >> 1) + (a & b) + (a | b) + (a ^ b);
            }
        "#;
        let mut module = mperf_ir::compile("p", src).unwrap();
        PassManager::standard().run(&mut module);
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::u74()));
        let out = vm.call("f", &[Value::I64(a), Value::I64(b)]).unwrap();
        let expected = (a.wrapping_add(b)).wrapping_mul(3)
            .wrapping_sub(a / b)
            .wrapping_add(a % b)
            .wrapping_add(a << 2)
            .wrapping_sub(a >> 1)
            .wrapping_add(a & b)
            .wrapping_add(a | b)
            .wrapping_add(a ^ b);
        prop_assert_eq!(out, vec![Value::I64(expected)]);
    }

    /// The fixed instruction counter is exact: a counted loop retires an
    /// exactly predictable instruction count on the 1:1 RISC-V model.
    #[test]
    fn instret_is_deterministic(n in 1i64..500) {
        let src = "fn f(n: i64) -> i64 { var s: i64 = 0; for (var i: i64 = 0; i < n; i = i + 1) { s = s + i; } return s; }";
        let module = mperf_ir::compile("p", src).unwrap();
        let run = || {
            let mut vm = Vm::new(&module, Core::new(PlatformSpec::u74()));
            vm.call("f", &[Value::I64(n)]).unwrap();
            vm.core.instructions()
        };
        prop_assert_eq!(run(), run(), "same program, same instret");
    }

    /// Ring buffers round-trip arbitrary sample batches (drop-free when
    /// sized generously).
    #[test]
    fn ring_roundtrip(ips in proptest::collection::vec(0u64..u64::MAX, 1..40)) {
        let st = SampleType::full();
        let mut ring = RingBuffer::new(64 * 1024, st);
        for (i, ip) in ips.iter().enumerate() {
            let s = SampleRecord {
                ip: Some(*ip),
                tid: Some(i as u32),
                time: Some(i as u64 * 7),
                period: Some(1000),
                read_group: vec![(1, *ip ^ 0xffff), (2, i as u64)],
                callchain: vec![*ip, ip.wrapping_add(1)],
            };
            prop_assert!(ring.push_sample(&s));
        }
        let records = ring.drain();
        prop_assert_eq!(records.len(), ips.len());
        for (r, ip) in records.iter().zip(&ips) {
            match r {
                Record::Sample(s) => prop_assert_eq!(s.ip, Some(*ip)),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    /// Guest float kernels match host computation bit-for-bit for fused
    /// shapes that avoid reassociation.
    #[test]
    fn float_store_load_roundtrip(vals in proptest::collection::vec(-1e6f32..1e6, 1..64)) {
        let src = r#"
            fn scale(p: *f32, n: i64, k: f32) {
                for (var i: i64 = 0; i < n; i = i + 1) {
                    p[i] = p[i] * k;
                }
            }
        "#;
        let mut module = mperf_ir::compile("p", src).unwrap();
        PassManager::standard().run(&mut module);
        let mut vm = Vm::new(&module, Core::new(PlatformSpec::x60()));
        let p = vm.mem.alloc(vals.len() as u64 * 4, 8).unwrap();
        for (i, v) in vals.iter().enumerate() {
            vm.mem.write_f32(p + i as u64 * 4, *v).unwrap();
        }
        vm.call("scale", &[Value::I64(p as i64), Value::I64(vals.len() as i64), Value::F32(1.5)]).unwrap();
        for (i, v) in vals.iter().enumerate() {
            let got = vm.mem.read_f32(p + i as u64 * 4).unwrap();
            prop_assert_eq!(got, v * 1.5);
        }
    }

    /// The decoded engine — across the full register-allocation ×
    /// fusion matrix — is observably identical to the reference
    /// interpreter: for generated programs (random template, input
    /// data, and trip count, with and without the optimization
    /// pipeline) every configuration returns the same values and leaves
    /// bit-identical `ExecStats`, cycle counts, instruction counts, and
    /// PMU counter files on every platform model. Decode-time passes
    /// change speed, never observables.
    #[test]
    fn decoded_engine_matches_reference(
        tpl in 0usize..4,
        optimize in 0u64..2,
        n in 1i64..120,
        data in proptest::collection::vec(-1_000i64..1_000, 32..33),
    ) {
        let mut module = mperf_ir::compile("equiv", EQUIV_TEMPLATES[tpl]).unwrap();
        if optimize == 1 {
            PassManager::standard().run(&mut module);
        }
        for spec in [
            PlatformSpec::x60(),
            PlatformSpec::c910(),
            PlatformSpec::u74(),
            PlatformSpec::i5_1135g7(),
        ] {
            let reference =
                run_equiv(&module, spec.clone(), Engine::Reference, true, true, &data, n);
            for (label, engine, fuse, regalloc) in engine_matrix() {
                let decoded = run_equiv(
                    &module, spec.clone(), engine, fuse, regalloc, &data, n,
                );
                prop_assert_eq!(
                    &reference.0, &decoded.0,
                    "return values ({}, {})", spec.name, label
                );
                prop_assert_eq!(reference.1, decoded.1, "ExecStats ({}, {})", spec.name, label);
                prop_assert_eq!(reference.2, decoded.2, "cycles ({}, {})", spec.name, label);
                prop_assert_eq!(
                    reference.3, decoded.3,
                    "instructions ({}, {})", spec.name, label
                );
                prop_assert_eq!(
                    &reference.4, &decoded.4,
                    "PMU counters ({}, {})", spec.name, label
                );
            }
        }
    }

    /// The thread-parallel roofline sweep is bit-identical to the
    /// serial sweep: for generated instrumented workloads, running the
    /// two-phase protocol at `jobs ∈ {2, 4}` produces the same
    /// `RegionMeasurement`s, `ExecStats`, cycle counts, instruction
    /// counts, and PMU counter files as `jobs = 1` on every platform
    /// model — and the batched `run_roofline_sweep` over all four
    /// platforms at once agrees cell for cell. The sweep runs the
    /// *fused* decoded engine (the default decode), so this also pins
    /// fused execution under the worker pool ≡ serial fused execution.
    #[test]
    fn parallel_sweep_matches_serial_sweep(
        kernel in 0usize..2,
        n in 16i64..96,
        reps in 1i64..4,
    ) {
        const SWEEP_KERNELS: &[(&str, &str)] = &[
            ("saxpy", r#"
                fn saxpy(a: *f32, b: *f32, n: i64, reps: i64, k: f32) {
                    for (var r: i64 = 0; r < reps; r = r + 1) {
                        for (var i: i64 = 0; i < n; i = i + 1) {
                            a[i] = a[i] + k * b[i];
                        }
                    }
                }
            "#),
            ("saxpy", r#"
                fn inner(a: *f32, b: *f32, n: i64) {
                    for (var i: i64 = 0; i < n; i = i + 1) {
                        a[i] = a[i] * 0.5 + b[i];
                    }
                }
                fn saxpy(a: *f32, b: *f32, n: i64, reps: i64, k: f32) {
                    for (var r: i64 = 0; r < reps; r = r + 1) {
                        inner(a, b, n);
                    }
                }
            "#),
        ];
        let mut module = mperf_ir::compile("sweep", SWEEP_KERNELS[kernel].1).unwrap();
        PassManager::standard().run(&mut module);
        InstrumentPass::new(InstrumentOptions::default()).run(&mut module);
        let entry = SWEEP_KERNELS[kernel].0;
        let setup = move |vm: &mut Vm| -> Result<Vec<Value>, VmError> {
            let a = vm.mem.alloc(n as u64 * 4, 64)?;
            let b = vm.mem.alloc(n as u64 * 4, 64)?;
            for i in 0..n as u64 {
                vm.mem.write_f32(a + i * 4, i as f32)?;
                vm.mem.write_f32(b + i * 4, 1.0 + i as f32 / 7.0)?;
            }
            Ok(vec![
                Value::I64(a as i64),
                Value::I64(b as i64),
                Value::I64(n),
                Value::I64(reps),
                Value::F32(1.5),
            ])
        };
        let specs = [
            PlatformSpec::x60(),
            PlatformSpec::c910(),
            PlatformSpec::u74(),
            PlatformSpec::i5_1135g7(),
        ];
        let mut serial_runs = Vec::new();
        for spec in &specs {
            let serial = RooflineRequest::new().run(&module, spec, entry, &setup).unwrap();
            // The sweep defaults to the threaded engine; the decoded
            // engine must produce the identical run (cross-engine sweep
            // identity), so parallel threaded ≡ serial decoded too.
            let decoded_cfg = mperf_vm::ExecConfig {
                engine: Engine::Decoded,
                fuse: true,
                regalloc: true,
            };
            let decoded = RooflineRequest::new()
                .config(decoded_cfg)
                .run(&module, spec, entry, &setup)
                .unwrap();
            prop_assert_eq!(
                &serial, &decoded,
                "threaded sweep diverges from decoded sweep ({})", spec.name
            );
            for jobs in [2usize, 4] {
                let parallel = RooflineRequest::new()
                    .jobs(jobs)
                    .run(&module, spec, entry, &setup)
                    .unwrap();
                // Field-by-field on the named observables first (sharper
                // failure messages), then whole-run equality.
                prop_assert_eq!(
                    &serial.regions, &parallel.regions,
                    "RegionMeasurements ({}, jobs={})", spec.name, jobs
                );
                for (s, p) in [(&serial.baseline, &parallel.baseline),
                               (&serial.instrumented, &parallel.instrumented)] {
                    prop_assert_eq!(s.exec, p.exec, "ExecStats ({}, jobs={})", spec.name, jobs);
                    prop_assert_eq!(
                        s.total_cycles, p.total_cycles,
                        "cycles ({}, jobs={})", spec.name, jobs
                    );
                    prop_assert_eq!(
                        s.instructions, p.instructions,
                        "instructions ({}, jobs={})", spec.name, jobs
                    );
                    prop_assert_eq!(&s.pmu, &p.pmu, "PMU counters ({}, jobs={})", spec.name, jobs);
                }
                prop_assert_eq!(&serial, &parallel, "whole run ({}, jobs={})", spec.name, jobs);
            }
            serial_runs.push(serial);
        }
        // The batched matrix sweep (all four platforms as cells in one
        // worker pool) agrees with the per-platform serial runs, in
        // cell order.
        let cells: Vec<RooflineJob> = specs
            .iter()
            .map(|spec| RooflineJob {
                module: &module,
                decoded: None,
                spec: spec.clone(),
                entry: entry.to_string(),
                setup: Box::new(setup),
            })
            .collect();
        for jobs in [2usize, 4] {
            let swept = run_roofline_sweep(&cells, jobs);
            for (serial, cell) in serial_runs.iter().zip(&swept) {
                let cell = cell.as_ref().unwrap();
                prop_assert_eq!(serial, cell, "sweep cell (jobs={})", jobs);
            }
        }
    }

    /// Traps are engine-equivalent too: every configuration stops at
    /// the same op with the same error and the same partial statistics.
    /// Random fuel values land the exhaustion point *inside* fused
    /// patterns and *on* elided-copy slots (the loop body's `s = ...`
    /// copy coalesces away under regalloc), exercising both the
    /// superinstruction bail paths and the retire-only elided-copy
    /// dispatch at the trap boundary.
    #[test]
    fn decoded_engine_matches_reference_on_traps(fuel in 50u64..400) {
        let src = "fn main(n: i64) -> i64 { var s: i64 = 0; while (true) { s = s + n; } return s; }";
        let module = mperf_ir::compile("trap", src).unwrap();
        let run = |engine: Engine, fuse: bool, regalloc: bool| {
            let mut vm = Vm::with_memory(&module, Core::new(PlatformSpec::x60()), 1 << 20);
            vm.set_engine(engine);
            vm.set_fusion(fuse);
            vm.set_regalloc(regalloc);
            vm.set_fuel(fuel);
            let err = vm.call("main", &[Value::I64(3)]).unwrap_err();
            (format!("{err:?}"), vm.stats(), vm.core.cycles())
        };
        let reference = run(Engine::Reference, true, true);
        for (label, engine, fuse, regalloc) in engine_matrix() {
            prop_assert_eq!(&reference, &run(engine, fuse, regalloc), "{}", label);
        }
    }

    /// Guest traps land identically mid-pattern: an out-of-bounds access
    /// whose `ptradd`+`load` pair is fused must fault at the same op
    /// with the same partial state as every other configuration (the
    /// fused fast path pre-checks bounds and bails), with and without
    /// the copy-coalescing pass rewriting the surrounding stream.
    #[test]
    fn fused_memory_traps_match_unfused(n in 1i64..64, oob_at in 0i64..64) {
        let src = r#"
            fn main(p: *i64, n: i64, bad: *i64, bad_at: i64) -> i64 {
                var s: i64 = 0;
                for (var i: i64 = 0; i < n; i = i + 1) {
                    if (i == bad_at) { s = s + bad[0]; }
                    s = s + p[i % 16];
                }
                return s;
            }
        "#;
        let module = mperf_ir::compile("memtrap", src).unwrap();
        let run = |engine: Engine, fuse: bool, regalloc: bool| {
            let mut vm = Vm::with_memory(&module, Core::new(PlatformSpec::x60()), 1 << 20);
            vm.set_engine(engine);
            vm.set_fusion(fuse);
            vm.set_regalloc(regalloc);
            let base = vm.mem.alloc(8 * 16, 8).unwrap();
            for i in 0..16u64 {
                vm.mem.write_u64(base + i * 8, i * 3).unwrap();
            }
            let r = vm.call(
                "main",
                &[
                    Value::I64(base as i64),
                    Value::I64(n),
                    Value::I64(-8), // out-of-bounds pointer
                    Value::I64(oob_at),
                ],
            );
            (format!("{r:?}"), vm.stats(), vm.core.cycles())
        };
        let reference = run(Engine::Reference, true, true);
        for (label, engine, fuse, regalloc) in engine_matrix() {
            prop_assert_eq!(&reference, &run(engine, fuse, regalloc), "{}", label);
        }
    }
}

/// Overflow sampling is engine-exact: driving identical sampling setups
/// through every engine configuration (reference, and the decoded
/// engine across the regalloc × fusion matrix) produces the same number
/// of samples with the same IPs and callchains — overflow interrupts
/// fire on the same ops, including samples landing on elided-copy slots
/// (which retire the same `Move` at the same pc as the original copy).
/// Near a counter wrap the fused engine's `fused_ready` guard degrades
/// to per-op retire, which is what keeps the overflow attribution
/// exact.
#[test]
fn decoded_engine_sampling_matches_reference() {
    use mperf_event::{EventKind, PerfEventAttr, PerfKernel, ReadFormat};

    let src = r#"
        fn inner(p: *i64, n: i64) -> i64 {
            var h: i64 = 0;
            for (var i: i64 = 0; i < n; i = i + 1) {
                h = (h ^ p[i % 32]) * 31 + (i >> 2);
            }
            return h;
        }
        fn main(p: *i64, n: i64) -> i64 {
            var acc: i64 = 0;
            for (var r: i64 = 0; r < 40; r = r + 1) {
                acc = acc + inner(p, n);
            }
            return acc;
        }
    "#;
    let module = mperf_ir::compile("sampling", src).unwrap();

    let run = |engine: Engine, fuse: bool, regalloc: bool| {
        let mut core = Core::new(PlatformSpec::x60());
        let mut kernel = PerfKernel::new(&mut core);
        let umc = core.spec.event_code(mperf_sim::HwEvent::UModeCycles);
        let attr = PerfEventAttr {
            kind: EventKind::Raw(umc),
            sample_period: 700,
            sample_type: SampleType::full(),
            read_format: ReadFormat {
                group: true,
                id: true,
            },
            disabled: true,
        };
        let fd = kernel.open(&mut core, attr, None).unwrap();
        kernel.enable(&mut core, fd).unwrap();
        let mut vm = Vm::with_memory(&module, Core::new(PlatformSpec::x60()), 1 << 20);
        vm.core = core;
        vm.set_engine(engine);
        vm.set_fusion(fuse);
        vm.set_regalloc(regalloc);
        vm.attach_kernel(kernel);
        let base = vm.mem.alloc(8 * 32, 8).unwrap();
        for i in 0..32u64 {
            vm.mem
                .write_u64(base + i * 8, i.wrapping_mul(2_654_435_761))
                .unwrap();
        }
        vm.call("main", &[Value::I64(base as i64), Value::I64(150)])
            .unwrap();
        let mut kernel = vm.kernel.take().unwrap();
        let records = kernel.drain_records(fd).unwrap();
        let samples: Vec<(u64, Vec<u64>)> = records
            .iter()
            .filter_map(|r| match r {
                Record::Sample(s) => Some((s.ip.unwrap(), s.callchain.clone())),
                _ => None,
            })
            .collect();
        (samples, kernel.samples_taken())
    };

    let (ref_samples, ref_taken) = run(Engine::Reference, true, true);
    assert!(
        ref_taken > 5,
        "expected a healthy sample stream: {ref_taken}"
    );
    for (label, engine, fuse, regalloc) in engine_matrix() {
        let (samples, taken) = run(engine, fuse, regalloc);
        assert_eq!(ref_taken, taken, "sample counts diverge ({label})");
        assert_eq!(
            ref_samples, samples,
            "sample IPs/callchains diverge ({label})"
        );
    }
}
