//! # miniperf-suite
//!
//! Facade crate re-exporting the whole reproduction stack of
//! *Dissecting RISC-V Performance* (PACT 2025): the `miniperf` tool, the
//! compiler substrate, the simulated RISC-V platforms, and the roofline
//! machinery. See `README.md` for a tour and `DESIGN.md` for the system
//! inventory.

pub use miniperf;
pub use mperf_event;
pub use mperf_ir;
pub use mperf_roofline;
pub use mperf_sbi;
pub use mperf_sim;
pub use mperf_sweep;
pub use mperf_vm;
pub use mperf_workloads;
